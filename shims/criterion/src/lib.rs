//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's microbenchmarks use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`) with a simple
//! measure-median harness instead of criterion's full statistics: each
//! benchmark is warmed up briefly, then timed over batches until a time
//! budget is spent, and the best batch mean is reported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("find_dep", 100)` → label `find_dep/100`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    best_ns_per_iter: f64,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the fastest observed batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: grow the batch until one batch takes
        // ≥ ~200µs so Instant overhead stays negligible.
        let mut batch = 1u64;
        let batch_time = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_micros(200) || batch >= 1 << 24 {
                break dt;
            }
            batch *= 4;
        };
        let mut best = batch_time.as_secs_f64() * 1e9 / batch as f64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            if per < best {
                best = per;
            }
        }
        self.best_ns_per_iter = best;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count (accepted for API compatibility; the
    /// shim's time-budget harness does not use it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { best_ns_per_iter: f64::NAN, budget: Duration::from_millis(30) };
        routine(&mut b, input);
        println!("{}/{:<40} {:>12.1} ns/iter", self.name, id, b.best_ns_per_iter);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { best_ns_per_iter: f64::NAN, budget: Duration::from_millis(30) };
        routine(&mut b);
        println!("{}/{:<40} {:>12.1} ns/iter", self.name, id, b.best_ns_per_iter);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup { name, _criterion: self }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { best_ns_per_iter: f64::NAN, budget: Duration::from_millis(30) };
        routine(&mut b);
        println!("{:<48} {:>12.1} ns/iter", name, b.best_ns_per_iter);
        self
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { best_ns_per_iter: f64::NAN, budget: Duration::from_millis(2) };
        b.iter(|| black_box(3u64).wrapping_mul(5));
        assert!(b.best_ns_per_iter.is_finite());
        assert!(b.best_ns_per_iter >= 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| b.iter(|| x + 1));
        g.finish();
    }
}
