//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The real crate's locks return guards directly (no `Result`); this shim
//! preserves that API by treating poisoning as unrecoverable — a poisoned
//! lock means a thread already panicked while holding it, and the standard
//! library would surface the same panic at the original site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_guards_read_and_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
