//! Offline stand-in for `crossbeam`, backed by the standard library.
//!
//! Two API subsets are provided — exactly what this workspace uses:
//!
//! - [`channel`]: the unbounded MPSC surface, over `std::sync::mpsc`.
//!   Unlike the real crate the receiver is not cloneable, which is fine
//!   for the single-consumer worker pattern here.
//! - [`thread`]: scoped threads (`crossbeam::thread::scope`), over
//!   `std::thread::scope` (stable since 1.63). One deviation: a panic in
//!   an unjoined scoped thread propagates as a panic at scope exit rather
//!   than surfacing as the scope's `Err` — callers here always join.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (the crossbeam-channel API subset).
pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a queued message without blocking, if there is one.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives, all senders are dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9u32).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(100)), Ok(9));
        }

        #[test]
        fn clone_sender_feeds_same_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx2.send(1u8).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert!(rx.recv().is_err());
        }
    }
}

/// Scoped threads (the `crossbeam::thread` API subset).
pub mod thread {
    use std::thread as std_thread;

    /// Outcome of a scope or a joined scoped thread.
    pub type Result<T> = std_thread::Result<T>;

    /// Spawns threads that may borrow from the caller's stack; all are
    /// joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope again so
        /// it can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reborrow = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&reborrow)) }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u32, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> =
                    data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u32>())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2).join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}
