//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module's unbounded MPSC surface is provided — the
//! subset this workspace uses. Unlike the real crate the receiver is not
//! cloneable, which is fine for the single-consumer worker pattern here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (the crossbeam-channel API subset).
pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a queued message without blocking, if there is one.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn clone_sender_feeds_same_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx2.send(1u8).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert!(rx.recv().is_err());
        }
    }
}
