//! Offline stub of the `calamine` workbook-reading API.
//!
//! Parsing real `.xlsx` files requires zip + XML machinery that is not
//! available in this build environment, so [`open_workbook_auto`] always
//! returns [`Error::Unsupported`]. The rest of the API exists so that
//! `taco_workload::xlsx` compiles unchanged; callers already treat a load
//! failure as "fall back to the synthetic corpus".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::Path;

/// Errors reported while opening or reading a workbook.
#[derive(Debug)]
pub enum Error {
    /// Workbook parsing is not available in this offline build.
    Unsupported(String),
    /// An I/O problem (file missing, unreadable, …).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unsupported(path) => {
                write!(f, "xlsx parsing unavailable in offline build: {path}")
            }
            Error::Io(e) => write!(f, "workbook I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// A rectangular block of formulae from one worksheet.
#[derive(Debug, Default, Clone)]
pub struct FormulaRange {
    start: Option<(u32, u32)>,
    rows: Vec<Vec<String>>,
}

impl FormulaRange {
    /// Top-left (row, column) of the block, 0-based; `None` when empty.
    pub fn start(&self) -> Option<(u32, u32)> {
        self.start
    }

    /// Iterates the block's rows.
    pub fn rows(&self) -> std::slice::Iter<'_, Vec<String>> {
        self.rows.iter()
    }
}

/// Common operations over any workbook flavour (the calamine `Reader`
/// trait, reduced to the subset this workspace calls).
pub trait Reader {
    /// Names of the worksheets, in file order.
    fn sheet_names(&self) -> &[String];

    /// The formula block of one worksheet.
    fn worksheet_formula(&mut self, name: &str) -> Result<FormulaRange, Error>;
}

/// A workbook of any supported format (`Sheets` in the real crate).
#[derive(Debug, Default)]
pub struct Sheets {
    names: Vec<String>,
}

impl Reader for Sheets {
    fn sheet_names(&self) -> &[String] {
        &self.names
    }

    fn worksheet_formula(&mut self, name: &str) -> Result<FormulaRange, Error> {
        Err(Error::Unsupported(name.to_string()))
    }
}

/// Opens a workbook, auto-detecting the format. In this offline stub the
/// call always fails: with [`Error::Io`] if the file does not exist, and
/// [`Error::Unsupported`] otherwise.
pub fn open_workbook_auto<P: AsRef<Path>>(path: P) -> Result<Sheets, Error> {
    let path = path.as_ref();
    match std::fs::metadata(path) {
        Err(e) => Err(Error::Io(e)),
        Ok(_) => Err(Error::Unsupported(path.display().to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(open_workbook_auto("/nonexistent/file.xlsx"), Err(Error::Io(_))));
    }

    #[test]
    fn existing_file_is_unsupported() {
        let path = std::env::temp_dir().join("calamine_stub_probe.xlsx");
        std::fs::write(&path, b"zip-ish").unwrap();
        assert!(matches!(open_workbook_auto(&path), Err(Error::Unsupported(_))));
        let _ = std::fs::remove_file(&path);
    }
}
