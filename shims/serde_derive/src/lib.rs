//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Supports the shapes this workspace actually derives on: non-generic
//! structs with named fields, and non-generic enums whose variants are
//! unit or struct-like. The macros parse the item with a small hand-rolled
//! token walk (no `syn`/`quote` available offline) and emit impls of the
//! shim's `Serialize`/`Deserialize` traits over its `Value` tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed variant: its name, plus field names if struct-like.
struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

/// The parsed item: its name and either struct fields or enum variants.
struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

/// Derives the shim `Serialize` trait (renders into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let (vname, ty) = (&v.name, &item.name);
                    match &v.fields {
                        None => format!(
                            "{ty}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{ty}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

/// Derives the shim `Deserialize` trait (rebuilds from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let takes = fields.iter().map(|f| field_take(f)).collect::<Vec<_>>().join("\n");
            let inits =
                fields.iter().map(|f| format!("{f}: __field_{f},")).collect::<Vec<_>>().join(" ");
            format!(
                "let mut __map = match ::serde::__private::into_map(__value) {{\n\
                     Ok(m) => m,\n\
                     Err(e) => return Err(<D::Error as ::serde::de::Error>::custom(e)),\n\
                 }};\n\
                 {takes}\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!("\"{vname}\" => Ok({name}::{vname}),"),
                        Some(fields) => {
                            let takes = fields
                                .iter()
                                .map(|f| field_take(f))
                                .collect::<Vec<_>>()
                                .join("\n");
                            let inits = fields
                                .iter()
                                .map(|f| format!("{f}: __field_{f},"))
                                .collect::<Vec<_>>()
                                .join(" ");
                            format!(
                                "\"{vname}\" => {{\n\
                                     let mut __map = match \
                                     ::serde::__private::variant_fields(\"{vname}\", __payload) {{\n\
                                         Ok(m) => m,\n\
                                         Err(e) => return Err(\
                                         <D::Error as ::serde::de::Error>::custom(e)),\n\
                                     }};\n\
                                     {takes}\n\
                                     Ok({name}::{vname} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let (__tag, __payload) = match ::serde::__private::enum_parts(__value) {{\n\
                     Ok(parts) => parts,\n\
                     Err(e) => return Err(<D::Error as ::serde::de::Error>::custom(e)),\n\
                 }};\n\
                 let _ = &__payload;\n\
                 match __tag.as_str() {{\n\
                     {arms}\n\
                     other => Err(<D::Error as ::serde::de::Error>::custom(\
                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(__d: D) \
             -> ::std::result::Result<Self, D::Error> {{\n\
                 let __value = ::serde::Deserializer::take_value(__d)?;\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize): generated impl must parse")
}

/// Emits the statement extracting field `f` from `__map` into `__field_f`.
fn field_take(f: &str) -> String {
    format!(
        "let __field_{f} = match ::serde::__private::take_field(&mut __map, \"{f}\") {{\n\
             Ok(v) => v,\n\
             Err(e) => return Err(<D::Error as ::serde::de::Error>::custom(e)),\n\
         }};"
    )
}

/// Parses `[attrs] [vis] (struct|enum) Name { ... }` from the derive input.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic types are not supported")
            }
            Some(_) => continue,
            None => panic!("serde shim derive: `{name}` has no braced body"),
        }
    };
    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_field_names(body.stream())),
        "enum" => ItemKind::Enum(parse_variants(body.stream())),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

/// Skips leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from `name: Type, ...` (types skipped with
/// angle-bracket awareness so `Vec<(A, B)>` does not split a field).
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde shim derive: expected `:` after field `{name}`, got {other:?} \
                 (tuple structs are not supported)"
            ),
        }
        fields.push(name);
        let mut angle_depth = 0u32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Extracts variants from an enum body: `Name`, or `Name { fields }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let mut fields = None;
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_field_names(g.stream()));
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == ',' {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple variant `{name}` is not supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            other => panic!("serde shim derive: unexpected token after `{name}`: {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}
