//! Offline stand-in for `serde_json`: renders the serde shim's `Value`
//! tree to JSON text and parses JSON text back.
//!
//! Supports everything the shim data model can express — objects, arrays,
//! strings (with `\uXXXX` escapes), integers, floats (printed with `{:?}`
//! so they round-trip), booleans, and null.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{de, Deserialize, Deserializer, Serialize, Value};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes any `Serialize` type to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into any owned `Deserialize` type.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", parser.pos)));
    }
    T::deserialize(JsonDeserializer(value))
}

/// A [`Deserializer`] over an already-parsed JSON value.
struct JsonDeserializer(Value);

impl<'de> Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64.
                out.push_str(&format!("{x:?}"))
            } else {
                // JSON has no NaN/inf; serde_json emits null.
                out.push_str("null")
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("eof in escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // shim's writer; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error(format!("bad \\u{hex} escape")))?;
                            out.push(c);
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::F64(0.5)])),
            ("s".into(), Value::Str("he said \"hi\"\n".into())),
            ("b".into(), Value::Bool(true)),
            ("n".into(), Value::Null),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Raw(v.clone())).unwrap();
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn parses_primitives() {
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert!(from_str::<u32>("[1]").is_err());
        assert!(from_str::<u32>("1 x").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1e-300, -3.75, 987_654_321.123_456_7] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), x);
        }
    }
}
