//! Offline stand-in for `serde`.
//!
//! Real serde abstracts serialization over a visitor-based data model; this
//! shim collapses that model to one self-describing [`Value`] tree, which
//! is all the workspace needs (JSON snapshots via `serde_json`). The
//! public trait names match serde's so `#[derive(Serialize, Deserialize)]`
//! and hand-written `impl<'de> Deserialize<'de>` blocks compile unchanged:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserializer`] is anything that can yield a [`Value`];
//! - [`Deserialize`] builds `Self` from any [`Deserializer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Deserialization error plumbing, mirroring `serde::de`.
pub mod de {
    use super::Display;

    /// Errors a [`super::Deserializer`] can produce.
    pub trait Error: Sized + Display {
        /// Wraps an arbitrary message into the error type.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A source of one [`Value`] tree (serde's input-format abstraction).
pub trait Deserializer<'de>: Sized {
    /// The error type reported by this input format.
    type Error: de::Error;

    /// Consumes the deserializer, yielding its value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types that can be rebuilt from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from any input format.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `Deserialize` with no borrowed data — every type in this shim.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let wide = match v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(de::Error::custom)
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let wide = match v {
                    Value::I64(x) => x,
                    Value::U64(x) => {
                        i64::try_from(x).map_err(de::Error::custom)?
                    }
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(de::Error::custom)
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format_args!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            other => Err(de::Error::custom(format_args!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format_args!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|item| {
                    T::deserialize(__private::ValueDeserializer(item)).map_err(de::Error::custom)
                })
                .collect(),
            other => Err(de::Error::custom(format_args!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => {
                T::deserialize(__private::ValueDeserializer(v)).map(Some).map_err(de::Error::custom)
            }
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Support machinery for derive-generated code. Not part of the public
/// API contract.
pub mod __private {
    use super::{de, DeserializeOwned, Deserializer, Value};
    use std::fmt;

    /// The concrete error produced while picking a [`Value`] tree apart.
    #[derive(Debug)]
    pub struct DeError(String);

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl de::Error for DeError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    /// Deserializer over an in-memory [`Value`] (used for nested fields).
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = DeError;

        fn take_value(self) -> Result<Value, DeError> {
            Ok(self.0)
        }
    }

    /// Unwraps a map value into its entries.
    pub fn into_map(v: Value) -> Result<Vec<(String, Value)>, DeError> {
        match v {
            Value::Map(m) => Ok(m),
            other => Err(DeError(format!("expected map, got {other:?}"))),
        }
    }

    /// Removes and deserializes one named struct field.
    pub fn take_field<T: DeserializeOwned>(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, DeError> {
        let idx = map
            .iter()
            .position(|(k, _)| k == name)
            .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
        let (_, v) = map.swap_remove(idx);
        T::deserialize(ValueDeserializer(v))
    }

    /// Splits an externally tagged enum value into `(variant, payload)`:
    /// a bare string is a unit variant; a single-entry map is a variant
    /// with data.
    pub fn enum_parts(v: Value) -> Result<(String, Option<Value>), DeError> {
        match v {
            Value::Str(tag) => Ok((tag, None)),
            Value::Map(mut m) if m.len() == 1 => {
                let (tag, payload) = m.pop().expect("len checked");
                Ok((tag, Some(payload)))
            }
            other => Err(DeError(format!("expected enum representation, got {other:?}"))),
        }
    }

    /// Payload accessor for data-carrying enum variants.
    pub fn variant_fields(
        tag: &str,
        payload: Option<Value>,
    ) -> Result<Vec<(String, Value)>, DeError> {
        match payload {
            Some(v) => into_map(v),
            None => Err(DeError(format!("variant `{tag}` expects fields"))),
        }
    }
}
