//! Offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer ranges. The generator is SplitMix64 —
//! statistically fine for synthetic-workload generation, not for
//! cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with uniform sampling over an interval — the anchor that lets
/// type inference flow from `x + rng.gen_range(0..2)` back into the range
/// literal, exactly like rand's `SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; panics if the interval is empty.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics if the interval is empty.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Random number generators bundled with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(8u32..=20);
            assert!((8..=20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
