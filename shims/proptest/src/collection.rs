//! Collection strategies (`proptest::collection` subset).

use crate::strategy::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
