//! Strategy core: deterministic RNG, the [`Strategy`] trait, and the
//! combinators the workspace's property tests use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every test gets a fixed,
    /// reproducible stream independent of execution order.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy just generates.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one more layer. `depth` bounds the
    /// nesting; the size-tuning parameters of real proptest are accepted
    /// but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut layered = self.clone().boxed();
        for _ in 0..depth {
            // 1-in-3 leaf keeps generated trees varied in depth rather
            // than always bottoming out at `depth`.
            layered =
                Union::weighted(vec![(1, self.clone().boxed()), (2, recurse(layered).boxed())])
                    .boxed();
        }
        layered
    }
}

/// Object-safe core so strategies can be type-erased.
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: 'static,
    {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Chooses among several strategies for the same value type
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total_weight: self.total_weight }
    }
}

impl<T> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice among `arms`.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("pick < total_weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy over empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &str {
    type Value = String;

    /// A bare string literal is a generation regex, as in real proptest.
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .gen_value(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}
