//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, macros, and config surface this
//! workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Strategy::prop_map` /
//! `prop_recursive`, `collection::vec`, `string::string_regex`, `Just`,
//! `any::<bool>()` — on top of a deterministic seeded generator. Compared
//! to the real crate there is **no shrinking**: a failing case panics with
//! the generated inputs' `Debug` form (tests here keep inputs small), and
//! the per-test seed is fixed so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;

pub use strategy::{BoxedStrategy, Just, Strategy, TestRng, Union};

/// Per-`proptest!` block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The `Arbitrary`-driven entry point behind [`any`](arbitrary::any).
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};

    /// Types with a canonical strategy over all their values.
    pub trait Arbitrary: Sized {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (like `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $name:ident),*) => {$(
            /// Strategy over the full range of the integer type.
            #[derive(Debug, Clone, Copy)]
            pub struct $name;

            impl Strategy for $name {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name {
                    $name
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64);
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                $(let $arg = $strategy;)*
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&$arg, &mut __rng);)*
                    let __debug = format!(
                        concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($arg), "={:?}",)*),
                        __case, $(&$arg),*
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let ::std::result::Result::Err(payload) = __outcome {
                        eprintln!("proptest shim failure: {__debug}");
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks among several strategies for the same value type — uniformly,
/// or by `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        (1u32..10).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_values_in_range(x in small(), flag in any::<bool>()) {
            prop_assert!((2..20).contains(&x));
            prop_assert_eq!(x % 2, 0);
            let _ = flag;
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(9)], 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 9));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..7).prop_map(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::from_name("recursion_terminates");
        let mut saw_node = false;
        for _ in 0..256 {
            if matches!(strat.gen_value(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursive arm must be reachable");
    }

    #[test]
    fn string_regex_shapes_strings() {
        let strat = crate::string::string_regex("[a-c0-1 \"]{0,8}").unwrap();
        let mut rng = crate::TestRng::from_name("string_regex_shapes_strings");
        for _ in 0..256 {
            let s = strat.gen_value(&mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| "abc01 \"".contains(c)));
        }
    }
}
