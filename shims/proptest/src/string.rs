//! String strategies (`proptest::string` subset).
//!
//! Supports the regex shapes the workspace actually generates from:
//! a sequence of atoms, where an atom is a character class `[...]` (with
//! ranges and `\`-escapes) or a literal character, optionally followed by
//! a `{min,max}` repetition.

use crate::strategy::{Strategy, TestRng};
use std::fmt;

/// A regex this shim cannot generate from.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported generation regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Debug, Clone)]
struct Atom {
    /// The alphabet this atom draws from.
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Generates strings matching (the supported subset of) `pattern`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut atoms = Vec::new();
    let mut rest = pattern.chars().peekable();
    while let Some(c) = rest.next() {
        let chars = match c {
            '[' => {
                let mut class = Vec::new();
                loop {
                    let c = rest
                        .next()
                        .ok_or_else(|| Error(format!("{pattern}: unterminated class")))?;
                    match c {
                        ']' => break,
                        '\\' => class.push(
                            rest.next()
                                .ok_or_else(|| Error(format!("{pattern}: trailing escape")))?,
                        ),
                        c => {
                            // `a-z` range (a trailing `-` is a literal).
                            if rest.peek() == Some(&'-') {
                                let mut ahead = rest.clone();
                                ahead.next(); // the '-'
                                match ahead.peek() {
                                    Some(&end) if end != ']' => {
                                        rest = ahead;
                                        let end = rest.next().expect("peeked");
                                        if (end as u32) < (c as u32) {
                                            return Err(Error(format!(
                                                "{pattern}: inverted range {c}-{end}"
                                            )));
                                        }
                                        class.extend((c..=end).collect::<Vec<_>>());
                                        continue;
                                    }
                                    _ => class.push(c),
                                }
                            } else {
                                class.push(c);
                            }
                        }
                    }
                }
                if class.is_empty() {
                    return Err(Error(format!("{pattern}: empty class")));
                }
                class
            }
            '\\' => {
                vec![rest.next().ok_or_else(|| Error(format!("{pattern}: trailing escape")))?]
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' => {
                return Err(Error(format!("{pattern}: unsupported metachar `{c}`")))
            }
            c => vec![c],
        };
        // Optional {min,max} / {n} quantifier.
        let (min, max) = if rest.peek() == Some(&'{') {
            rest.next();
            let mut spec = String::new();
            loop {
                match rest.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return Err(Error(format!("{pattern}: unterminated quantifier"))),
                }
            }
            let parse = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| Error(format!("{pattern}: bad quantifier {{{spec}}}")))
            };
            match spec.split_once(',') {
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                None => {
                    let n = parse(&spec)?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if min > max {
            return Err(Error(format!("{pattern}: quantifier min > max")));
        }
        atoms.push(Atom { chars, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

/// The strategy returned by [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let span = u64::from(atom.max - atom.min);
            let reps = atom.min + rng.below(span + 1) as u32;
            for _ in 0..reps {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}
