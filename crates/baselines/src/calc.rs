//! NoComp-Calc (§VI-E): the formula-graph design described in the
//! OpenOffice Calc implementation notes. No compression, and — unlike
//! NoComp — no R-tree: the spreadsheet space is pre-partitioned into
//! fixed-size *containers*; each container stores the ranges overlapping
//! it, and overlap lookups scan the containers the probe touches.
//!
//! Containers are cheap to maintain but degrade when ranges span many
//! containers (every spanned container holds a copy of the entry) or when
//! many ranges pile into one container — which is what the paper's Fig. 16
//! shows against TACO.

use std::collections::HashMap;
use taco_core::{Dependency, DependencyBackend, Edge};
use taco_grid::{Cell, Range};

/// Side length (cells) of one spatial container.
pub const CONTAINER_SIZE: u32 = 256;

/// Identifier of an edge in the arena.
type EdgeId = usize;

/// Container-partitioned overlap index.
#[derive(Debug, Default, Clone)]
struct ContainerIndex {
    buckets: HashMap<(u32, u32), Vec<(Range, EdgeId)>>,
}

impl ContainerIndex {
    fn keys_of(r: Range) -> impl Iterator<Item = (u32, u32)> {
        let c0 = (r.head().col - 1) / CONTAINER_SIZE;
        let c1 = (r.tail().col - 1) / CONTAINER_SIZE;
        let r0 = (r.head().row - 1) / CONTAINER_SIZE;
        let r1 = (r.tail().row - 1) / CONTAINER_SIZE;
        (c0..=c1).flat_map(move |c| (r0..=r1).map(move |row| (c, row)))
    }

    fn insert(&mut self, r: Range, id: EdgeId) {
        for key in Self::keys_of(r) {
            self.buckets.entry(key).or_default().push((r, id));
        }
    }

    fn remove(&mut self, r: Range, id: EdgeId) {
        for key in Self::keys_of(r) {
            if let Some(v) = self.buckets.get_mut(&key) {
                if let Some(pos) = v.iter().position(|&(vr, vid)| vr == r && vid == id) {
                    v.swap_remove(pos);
                }
            }
        }
    }

    /// Collects `(range, id)` entries overlapping `probe`. May yield
    /// duplicates when an entry spans several probed containers; the caller
    /// dedups by id.
    fn overlapping(&self, probe: Range, out: &mut Vec<(Range, EdgeId)>) {
        for key in Self::keys_of(probe) {
            if let Some(v) = self.buckets.get(&key) {
                out.extend(v.iter().filter(|(r, _)| r.overlaps(&probe)));
            }
        }
    }
}

/// The NoComp-Calc baseline backend.
#[derive(Debug, Default, Clone)]
pub struct NoCompCalc {
    edges: Vec<Option<Edge>>,
    free: Vec<usize>,
    live: usize,
    prec_index: ContainerIndex,
    dep_index: ContainerIndex,
}

impl NoCompCalc {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a dependency list.
    pub fn build<I: IntoIterator<Item = Dependency>>(deps: I) -> Self {
        let mut g = Self::new();
        for d in deps {
            g.add_dependency(&d);
        }
        g
    }

    fn insert_edge(&mut self, e: Edge) {
        let id = match self.free.pop() {
            Some(id) => {
                self.edges[id] = Some(e);
                id
            }
            None => {
                self.edges.push(Some(e));
                self.edges.len() - 1
            }
        };
        let e = self.edges[id].as_ref().expect("just inserted");
        let (prec, dep) = (e.prec, e.dep);
        self.prec_index.insert(prec, id);
        self.dep_index.insert(dep, id);
        self.live += 1;
    }

    fn remove_edge(&mut self, id: EdgeId) -> Edge {
        let e = self.edges[id].take().expect("live edge");
        self.prec_index.remove(e.prec, id);
        self.dep_index.remove(e.dep, id);
        self.free.push(id);
        self.live -= 1;
        e
    }

    fn bfs(&self, r: Range, dependents: bool) -> Vec<Range> {
        let mut result: Vec<Range> = Vec::new();
        let mut queue: std::collections::VecDeque<Range> = [r].into();
        let mut hits: Vec<(Range, EdgeId)> = Vec::new();
        while let Some(cur) = queue.pop_front() {
            hits.clear();
            let index = if dependents { &self.prec_index } else { &self.dep_index };
            index.overlapping(cur, &mut hits);
            hits.sort_unstable_by_key(|&(_, id)| id);
            hits.dedup_by_key(|&mut (_, id)| id);
            for &(_, id) in &hits {
                let e = self.edges[id].as_ref().expect("indexed edge is live");
                let found = if dependents { e.dep } else { e.prec };
                // Uncompressed edges: the direct dependent/precedent is the
                // full vertex. Subtract what we've already visited.
                let new_parts = found.subtract_all(result.iter().filter(|v| v.overlaps(&found)));
                for p in new_parts {
                    result.push(p);
                    queue.push_back(p);
                }
            }
        }
        result
    }
}

impl DependencyBackend for NoCompCalc {
    fn name(&self) -> &'static str {
        "NoComp-Calc"
    }

    fn add_dependency(&mut self, d: &Dependency) {
        self.insert_edge(Edge::single(d));
    }

    fn find_dependents(&mut self, r: Range) -> Vec<Range> {
        self.bfs(r, true)
    }

    fn find_precedents(&mut self, r: Range) -> Vec<Range> {
        self.bfs(r, false)
    }

    fn clear_cells(&mut self, s: Range) {
        let mut hits = Vec::new();
        self.dep_index.overlapping(s, &mut hits);
        let mut ids: Vec<EdgeId> = hits.into_iter().map(|(_, id)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            // Single edges: dependent is one cell, so overlap = removal.
            self.remove_edge(id);
        }
    }

    fn num_edges(&self) -> usize {
        self.live
    }
}

/// Convenience: dependents of a single cell.
pub fn dependents_of_cell(g: &mut NoCompCalc, c: Cell) -> Vec<Range> {
    g.find_dependents(Range::cell(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    fn cells(v: &[Range]) -> std::collections::BTreeSet<Cell> {
        v.iter().flat_map(|x| x.cells()).collect()
    }

    #[test]
    fn agrees_with_nocomp() {
        let deps =
            [d("A1:A3", "B1"), d("A1:A3", "B2"), d("B1", "C1"), d("B3", "C1"), d("B2:B3", "C2")];
        let mut calc = NoCompCalc::build(deps.iter().copied());
        let mut nocomp = taco_core::FormulaGraph::nocomp();
        for dep in &deps {
            taco_core::DependencyBackend::add_dependency(&mut nocomp, dep);
        }
        for probe in ["A1", "B2", "B1:B3", "C1"] {
            assert_eq!(
                cells(&calc.find_dependents(r(probe))),
                cells(&taco_core::DependencyBackend::find_dependents(&mut nocomp, r(probe))),
                "probe {probe}"
            );
        }
        assert_eq!(
            cells(&calc.find_precedents(r("C2"))),
            cells(&taco_core::DependencyBackend::find_precedents(&mut nocomp, r("C2")))
        );
    }

    #[test]
    fn container_spanning_ranges_found_once() {
        // A range spanning several containers must not duplicate results.
        let mut g = NoCompCalc::new();
        let big = Range::from_coords(1, 1, 1, CONTAINER_SIZE * 3);
        g.add_dependency(&Dependency::new(big, Cell::new(5, 1)));
        let found = g.find_dependents(Range::from_coords(1, 1, 1, CONTAINER_SIZE * 3));
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn clear_cells_removes_edges() {
        let mut g = NoCompCalc::build([d("A1", "B1"), d("A1", "B2"), d("A1", "C5")]);
        assert_eq!(g.num_edges(), 3);
        g.clear_cells(r("B1:B2"));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(cells(&g.find_dependents(r("A1"))).len(), 1);
    }

    #[test]
    fn empty_graph_queries() {
        let mut g = NoCompCalc::new();
        assert!(g.find_dependents(r("A1")).is_empty());
        assert!(g.find_precedents(r("A1")).is_empty());
        assert_eq!(g.num_edges(), 0);
    }
}
