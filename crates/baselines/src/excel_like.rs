//! ExcelLike: the stand-in for the commercial system in Fig. 16.
//!
//! §VI-E conjectures why Excel loses to even NoComp on finding dependents:
//! "Excel compresses formula graphs to reduce memory consumption, which
//! introduces the overhead of decompression when the formula graphs are
//! used for finding dependents." Excel's documented behaviour is to store
//! duplicate formulae as pointers to the first formula (shared formulae) —
//! compact storage without pattern-aware querying.
//!
//! `ExcelLike` reproduces that code path: it stores the graph compressed
//! (reusing TACO's compressor, so memory matches TACO), but serves every
//! query by **decompressing each visited edge** into its underlying
//! cell-level dependencies and traversing those — paying O(count) per edge
//! per query instead of TACO's O(1) `findDep`.

use std::collections::{BTreeSet, HashSet, VecDeque};
use taco_core::{Dependency, DependencyBackend, FormulaGraph};
use taco_grid::{Cell, Range};

/// The decompress-to-traverse baseline.
#[derive(Debug, Clone)]
pub struct ExcelLike {
    inner: FormulaGraph,
}

impl Default for ExcelLike {
    fn default() -> Self {
        Self::new()
    }
}

impl ExcelLike {
    /// Creates an empty instance.
    pub fn new() -> Self {
        ExcelLike { inner: FormulaGraph::taco() }
    }

    /// Builds from a dependency list.
    pub fn build<I: IntoIterator<Item = Dependency>>(deps: I) -> Self {
        let mut g = Self::new();
        for d in deps {
            DependencyBackend::add_dependency(&mut g, &d);
        }
        g
    }

    /// Number of compressed edges stored (memory footprint ≈ TACO's).
    pub fn compressed_edges(&self) -> usize {
        self.inner.num_edges()
    }

    fn bfs(&self, r: Range, forward: bool) -> Vec<Range> {
        // Traversal state is cell-level, like a shared-formula engine that
        // materializes per-cell dependencies on demand.
        let mut visited: HashSet<Cell> = HashSet::new();
        let mut out: BTreeSet<Cell> = BTreeSet::new();
        let mut queue: VecDeque<Range> = [r].into();
        while let Some(cur) = queue.pop_front() {
            // Find candidate edges via the same vertex overlap the engine
            // would do...
            let edges: Vec<&taco_core::Edge> = self
                .inner
                .edges()
                .filter(|e| if forward { e.prec.overlaps(&cur) } else { e.dep.overlaps(&cur) })
                .collect();
            for e in edges {
                // ...then DECOMPRESS the edge and scan its raw
                // dependencies (this is the conjectured Excel overhead).
                for dep in e.decompress() {
                    let (hit, next) = if forward {
                        (dep.prec.overlaps(&cur), dep.dep)
                    } else {
                        (Range::cell(dep.dep).overlaps(&cur), dep.prec.head())
                    };
                    if !hit {
                        continue;
                    }
                    if forward {
                        if visited.insert(next) {
                            out.insert(next);
                            queue.push_back(Range::cell(next));
                        }
                    } else {
                        // Precedents: enqueue the whole referenced range,
                        // recording its cells.
                        for c in dep.prec.cells() {
                            if visited.insert(c) {
                                out.insert(c);
                                queue.push_back(Range::cell(c));
                            }
                        }
                    }
                }
            }
        }
        out.into_iter().map(Range::cell).collect()
    }
}

impl DependencyBackend for ExcelLike {
    fn name(&self) -> &'static str {
        "ExcelLike"
    }

    fn add_dependency(&mut self, d: &Dependency) {
        DependencyBackend::add_dependency(&mut self.inner, d);
    }

    fn find_dependents(&mut self, r: Range) -> Vec<Range> {
        self.bfs(r, true)
    }

    fn find_precedents(&mut self, r: Range) -> Vec<Range> {
        self.bfs(r, false)
    }

    fn clear_cells(&mut self, s: Range) {
        DependencyBackend::clear_cells(&mut self.inner, s);
    }

    fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    fn cells(v: &[Range]) -> std::collections::BTreeSet<Cell> {
        v.iter().flat_map(|x| x.cells()).collect()
    }

    #[test]
    fn memory_matches_taco_but_answers_match_nocomp() {
        let deps =
            [d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3"), d("C1:C3", "D1"), d("D1", "E1")];
        let mut ex = ExcelLike::build(deps.iter().copied());
        let taco = FormulaGraph::build(taco_core::Config::taco_full(), deps.iter().copied());
        assert_eq!(ex.compressed_edges(), taco.num_edges());

        let mut nocomp = FormulaGraph::nocomp();
        for dep in &deps {
            DependencyBackend::add_dependency(&mut nocomp, dep);
        }
        for probe in ["A1", "B4", "C2", "A1:B5"] {
            assert_eq!(
                cells(&ex.find_dependents(r(probe))),
                cells(&DependencyBackend::find_dependents(&mut nocomp, r(probe))),
                "probe {probe}"
            );
        }
        assert_eq!(
            cells(&ex.find_precedents(r("E1"))),
            cells(&DependencyBackend::find_precedents(&mut nocomp, r("E1")))
        );
    }

    #[test]
    fn clear_cells_propagates() {
        let mut ex = ExcelLike::build([d("A1", "B1"), d("B1", "C1")]);
        ex.clear_cells(r("B1"));
        assert!(ex.find_dependents(r("A1")).is_empty());
    }

    #[test]
    fn empty_graph() {
        let mut ex = ExcelLike::new();
        assert!(ex.find_dependents(r("A1")).is_empty());
        assert_eq!(ex.num_edges(), 0);
    }
}
