//! Comparison systems from the paper's evaluation (§VI), reimplemented so
//! every experiment runs in-process:
//!
//! - [`calc::NoCompCalc`] — the OpenOffice-Calc-derived baseline
//!   (§VI-E): an uncompressed graph that replaces the R-tree with
//!   pre-partitioned spatial *containers* for overlap lookup;
//! - [`antifreeze::Antifreeze`] — the prior formula-graph-compression
//!   system (§VI-D): precompute each cell's transitive dependents,
//!   compress them to at most `K = 20` bounding ranges, serve queries from
//!   the lookup table, rebuild the table from scratch on modification.
//!   Bounding ranges introduce false positives, and builds are expensive —
//!   both effects the paper reports;
//! - [`cellgraph::CellGraph`] — the RedisGraph stand-in (§VI-D): graph
//!   databases have no spatial vertices, so every range edge is decomposed
//!   into cell→cell edges and bulk-loaded into a generic adjacency-list
//!   store. Reproduces the memory/time blow-up that made RedisGraph DNF;
//! - [`excel_like::ExcelLike`] — the Excel conjecture (§VI-E): store the
//!   graph compressed (memory-efficient, like Excel's shared formulae) but
//!   decompress each edge while traversing, paying per-dependency cost on
//!   every query.
//!
//! All implement [`taco_core::DependencyBackend`], so the engine and the
//! bench harness treat them interchangeably with TACO/NoComp.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antifreeze;
pub mod calc;
pub mod cellgraph;
pub mod excel_like;

pub use antifreeze::Antifreeze;
pub use calc::NoCompCalc;
pub use cellgraph::CellGraph;
pub use excel_like::ExcelLike;
