//! The Antifreeze comparison system (§VI-D), reimplemented from the
//! paper's description:
//!
//! > "Antifreeze builds an uncompressed formula graph for the input
//! > dependencies, precomputes the dependents for each cell, compresses
//! > the dependents for each cell via bounding ranges, and stores each
//! > cell along with the compressed dependents in a look-up table. If
//! > formula cells are changed, it modifies the uncompressed graph and
//! > builds the look-up table from scratch. The number of bounding ranges
//! > is set to 20."
//!
//! Queries are O(1) table lookups — as fast as TACO — but:
//!
//! - building is expensive (one transitive traversal per distinct
//!   precedent cell), which is why Antifreeze DNFs on large sheets in
//!   Fig. 13;
//! - capping each dependent set at `K` bounding ranges introduces **false
//!   positives**: merged ranges may cover cells that are not dependents;
//! - any modification pays a full table rebuild (Fig. 15).

use std::collections::HashMap;
use taco_core::{Dependency, DependencyBackend, FormulaGraph};
use taco_grid::{Cell, Range};

/// Maximum bounding ranges stored per cell (paper setting).
pub const DEFAULT_K: usize = 20;

/// The Antifreeze backend.
#[derive(Debug, Clone)]
pub struct Antifreeze {
    /// The uncompressed formula graph Antifreeze maintains internally.
    graph: FormulaGraph,
    /// cell → (≤ K bounding ranges covering all its dependents).
    table: HashMap<Cell, Vec<Range>>,
    k: usize,
    dirty: bool,
    /// Build budget: a table rebuild touching more than this many
    /// (cell, traversal) steps aborts — the harness reports it as DNF.
    pub build_budget: u64,
    /// Set when the last rebuild exceeded `build_budget`.
    pub did_not_finish: bool,
}

impl Default for Antifreeze {
    fn default() -> Self {
        Self::new()
    }
}

impl Antifreeze {
    /// Creates an empty instance with `K = 20` and a large default budget.
    pub fn new() -> Self {
        Self::with_k(DEFAULT_K)
    }

    /// Creates an empty instance with a custom bounding-range cap.
    pub fn with_k(k: usize) -> Self {
        Antifreeze {
            graph: FormulaGraph::nocomp(),
            table: HashMap::new(),
            k,
            dirty: false,
            build_budget: u64::MAX,
            did_not_finish: false,
        }
    }

    /// Builds from a dependency list and precomputes the lookup table.
    pub fn build<I: IntoIterator<Item = Dependency>>(deps: I) -> Self {
        let mut g = Self::new();
        for d in deps {
            DependencyBackend::add_dependency(&mut g, &d);
        }
        g.rebuild_table();
        g
    }

    /// `true` when the lookup table is stale.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Rebuilds the lookup table from scratch: one transitive-dependents
    /// traversal per distinct cell covered by any precedent vertex.
    pub fn rebuild_table(&mut self) {
        self.table.clear();
        self.did_not_finish = false;
        let mut steps: u64 = 0;

        // Every cell covered by a precedent vertex can have dependents.
        let mut seen = std::collections::HashSet::new();
        let precs: Vec<Range> = self.graph.edges().map(|e| e.prec).collect();
        for prec in precs {
            for cell in prec.cells() {
                if !seen.insert(cell) {
                    continue;
                }
                let deps = self.graph.find_dependents(Range::cell(cell));
                steps += 1 + deps.len() as u64;
                if steps > self.build_budget {
                    self.did_not_finish = true;
                    self.table.clear();
                    return;
                }
                if !deps.is_empty() {
                    self.table.insert(cell, bound_to_k(deps, self.k));
                }
            }
        }
        self.dirty = false;
    }

    /// The number of cells with table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

/// Greedily merges a set of ranges down to at most `k` bounding ranges,
/// always merging the pair of (sorted-adjacent) ranges whose bounding union
/// wastes the least area. The result *covers* the input but may cover more
/// (false positives).
pub fn bound_to_k(mut ranges: Vec<Range>, k: usize) -> Vec<Range> {
    debug_assert!(k >= 1);
    ranges.sort();
    while ranges.len() > k {
        // Find the adjacent pair (in sorted order) with minimal waste.
        let mut best = 0;
        let mut best_waste = u64::MAX;
        for i in 0..ranges.len() - 1 {
            let u = ranges[i].bounding_union(&ranges[i + 1]);
            let waste = u.area() - ranges[i].area().min(u.area()); // monotone proxy
            if waste < best_waste {
                best_waste = waste;
                best = i;
            }
        }
        let merged = ranges[best].bounding_union(&ranges[best + 1]);
        ranges[best] = merged;
        ranges.remove(best + 1);
    }
    ranges
}

impl DependencyBackend for Antifreeze {
    fn name(&self) -> &'static str {
        "Antifreeze"
    }

    fn add_dependency(&mut self, d: &Dependency) {
        DependencyBackend::add_dependency(&mut self.graph, d);
        self.dirty = true;
    }

    fn find_dependents(&mut self, r: Range) -> Vec<Range> {
        if self.dirty {
            // Modifications force a full rebuild before the next query.
            self.rebuild_table();
        }
        // Union the table entries of every probed cell.
        let mut out: Vec<Range> = Vec::new();
        for cell in r.cells() {
            if let Some(ranges) = self.table.get(&cell) {
                for &b in ranges {
                    // Cheap dedup: skip if an existing result contains it.
                    if !out.iter().any(|o| o.contains(&b)) {
                        out.push(b);
                    }
                }
            }
        }
        out
    }

    fn find_precedents(&mut self, r: Range) -> Vec<Range> {
        // Antifreeze only precomputes dependents; precedents fall back to
        // the inner uncompressed graph.
        DependencyBackend::find_precedents(&mut self.graph, r)
    }

    fn clear_cells(&mut self, s: Range) {
        DependencyBackend::clear_cells(&mut self.graph, s);
        self.dirty = true;
    }

    fn num_edges(&self) -> usize {
        DependencyBackend::num_edges(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    #[test]
    fn lookups_cover_true_dependents() {
        let mut af =
            Antifreeze::build([d("A1", "B1"), d("B1", "C1"), d("C1", "D1"), d("A1", "B5")]);
        let found = af.find_dependents(r("A1"));
        // Every true dependent must be covered (no false negatives).
        for cell in ["B1", "C1", "D1", "B5"] {
            assert!(found.iter().any(|x| x.contains(&r(cell))), "missing true dependent {cell}");
        }
    }

    #[test]
    fn bounding_introduces_false_positives() {
        // 25 scattered dependents forced into K=2 bounding ranges must
        // cover extra cells.
        let mut deps = Vec::new();
        for i in 0..25u32 {
            deps.push(Dependency::new(r("A1"), Cell::new(3 + 2 * i, 1 + 3 * i)));
        }
        let mut af = Antifreeze::with_k(2);
        for dd in &deps {
            DependencyBackend::add_dependency(&mut af, dd);
        }
        af.rebuild_table();
        let found = af.find_dependents(r("A1"));
        assert!(found.len() <= 2);
        let covered: u64 = found.iter().map(Range::area).sum();
        assert!(covered > 25, "bounded cover should exceed the 25 true dependents");
    }

    #[test]
    fn bound_to_k_always_covers() {
        let input = vec![r("A1"), r("C3"), r("E5"), r("B9:C12")];
        let out = bound_to_k(input.clone(), 2);
        assert_eq!(out.len(), 2);
        for i in &input {
            assert!(out.iter().any(|o| o.contains(i)), "{i} uncovered");
        }
        // k >= n is identity (sorted).
        let out = bound_to_k(input.clone(), 10);
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn modification_marks_dirty_and_rebuilds() {
        let mut af = Antifreeze::build([d("A1", "B1")]);
        assert!(!af.is_dirty());
        DependencyBackend::add_dependency(&mut af, &d("B1", "C1"));
        assert!(af.is_dirty());
        // Query triggers rebuild.
        let found = af.find_dependents(r("A1"));
        assert!(!af.is_dirty());
        assert!(found.iter().any(|x| x.contains(&r("C1"))));
    }

    #[test]
    fn clear_cells_updates_answers() {
        let mut af = Antifreeze::build([d("A1", "B1"), d("B1", "C1")]);
        af.clear_cells(r("B1"));
        let found = af.find_dependents(r("A1"));
        assert!(found.is_empty());
    }

    #[test]
    fn build_budget_dnf() {
        let mut af = Antifreeze::new();
        af.build_budget = 2;
        for i in 0..50u32 {
            DependencyBackend::add_dependency(
                &mut af,
                &Dependency::new(Range::from_coords(1, 1, 1, 50), Cell::new(2, i + 1)),
            );
        }
        af.rebuild_table();
        assert!(af.did_not_finish);
    }

    #[test]
    fn precedents_fall_back_to_graph() {
        let mut af = Antifreeze::build([d("A1", "B1"), d("B1", "C1")]);
        let precs = af.find_precedents(r("C1"));
        assert!(precs.iter().any(|x| x.contains(&r("A1"))));
        assert!(precs.iter().any(|x| x.contains(&r("B1"))));
    }
}
