//! CellGraph: the RedisGraph stand-in (§VI-D).
//!
//! Graph databases have no notion of spatial vertices, so the paper stores
//! formula graphs in RedisGraph by decomposing every range edge into plain
//! cell→cell edges (`A1:A2 → B1` becomes `A1 → B1` and `A2 → B1`), writing
//! them to CSV, and bulk-loading. This module reproduces that pipeline
//! in-process: a generic adjacency-list store over cell vertices with a
//! bulk loader, no spatial index, and BFS over cell-level edges.
//!
//! The decomposition is exactly what blows up on real sheets — a single
//! `SUM(A1:A100000)` becomes 100 000 edges — which is why RedisGraph DNFs
//! in Figs. 13–15. [`CellGraph::EDGE_LIMIT_DEFAULT`] caps the blow-up so a
//! bench can report DNF instead of exhausting memory.

use std::collections::{HashMap, HashSet, VecDeque};
use taco_core::{Dependency, DependencyBackend};
use taco_grid::{Cell, Range};

/// The RedisGraph-style cell-level adjacency store.
#[derive(Debug, Clone)]
pub struct CellGraph {
    /// Out-edges: cell → dependent formula cells.
    out: HashMap<Cell, Vec<Cell>>,
    /// In-edges: formula cell → referenced cells.
    inc: HashMap<Cell, Vec<Cell>>,
    edges: usize,
    /// Decomposed-edge cap; exceeding it marks the store DNF.
    pub edge_limit: usize,
    /// Set when a bulk load or insert hit `edge_limit`.
    pub did_not_finish: bool,
}

impl Default for CellGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl CellGraph {
    /// Default cap on decomposed cell-level edges (≈ what fits comfortably
    /// in laptop memory; the paper's DNF threshold was time-based).
    pub const EDGE_LIMIT_DEFAULT: usize = 20_000_000;

    /// Creates an empty store.
    pub fn new() -> Self {
        CellGraph {
            out: HashMap::new(),
            inc: HashMap::new(),
            edges: 0,
            edge_limit: Self::EDGE_LIMIT_DEFAULT,
            did_not_finish: false,
        }
    }

    /// Bulk-loads a dependency list (the `redisgraph-bulk-loader` path):
    /// decompose everything first, then build the adjacency lists in one
    /// pass with pre-sized buckets.
    pub fn bulk_load<I: IntoIterator<Item = Dependency>>(deps: I) -> Self {
        let mut g = Self::new();
        // Phase 1: decompose to a flat edge list (the CSV file).
        let mut csv: Vec<(Cell, Cell)> = Vec::new();
        for d in deps {
            if csv.len() + d.prec.area() as usize > g.edge_limit {
                g.did_not_finish = true;
                return g;
            }
            for src in d.prec.cells() {
                csv.push((src, d.dep));
            }
        }
        // Phase 2: load.
        for (src, dst) in csv {
            g.push_edge(src, dst);
        }
        g
    }

    fn push_edge(&mut self, src: Cell, dst: Cell) {
        self.out.entry(src).or_default().push(dst);
        self.inc.entry(dst).or_default().push(src);
        self.edges += 1;
    }

    /// Number of decomposed cell-level edges.
    pub fn cell_edges(&self) -> usize {
        self.edges
    }

    fn bfs(&self, start: impl Iterator<Item = Cell>, forward: bool) -> Vec<Range> {
        let adj = if forward { &self.out } else { &self.inc };
        let mut visited: HashSet<Cell> = HashSet::new();
        let mut queue: VecDeque<Cell> = start.collect();
        let mut result: Vec<Cell> = Vec::new();
        while let Some(c) = queue.pop_front() {
            if let Some(nexts) = adj.get(&c) {
                for &n in nexts {
                    // A probe cell reached through an edge IS a dependent
                    // (self-referential formulae make this possible), so no
                    // root exclusion — only visited-dedup.
                    if visited.insert(n) {
                        result.push(n);
                        queue.push_back(n);
                    }
                }
            }
        }
        result.into_iter().map(Range::cell).collect()
    }
}

impl DependencyBackend for CellGraph {
    fn name(&self) -> &'static str {
        "CellGraph(RedisGraph)"
    }

    fn add_dependency(&mut self, d: &Dependency) {
        if self.edges + d.prec.area() as usize > self.edge_limit {
            self.did_not_finish = true;
            return;
        }
        for src in d.prec.cells() {
            self.push_edge(src, d.dep);
        }
    }

    fn find_dependents(&mut self, r: Range) -> Vec<Range> {
        self.bfs(r.cells(), true)
    }

    fn find_precedents(&mut self, r: Range) -> Vec<Range> {
        self.bfs(r.cells(), false)
    }

    fn clear_cells(&mut self, s: Range) {
        // Remove all in-edges of formula cells inside `s` (and the matching
        // out-edge entries). Without a spatial index this scans the in-map
        // keys covered by `s`.
        for dst in s.cells() {
            if let Some(srcs) = self.inc.remove(&dst) {
                self.edges -= srcs.len();
                for src in srcs {
                    if let Some(v) = self.out.get_mut(&src) {
                        v.retain(|&x| x != dst);
                        if v.is_empty() {
                            self.out.remove(&src);
                        }
                    }
                }
            }
        }
    }

    fn num_edges(&self) -> usize {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    fn cells(v: &[Range]) -> std::collections::BTreeSet<Cell> {
        v.iter().flat_map(|x| x.cells()).collect()
    }

    #[test]
    fn range_edges_are_decomposed() {
        let g = CellGraph::bulk_load([d("A1:A3", "B1")]);
        assert_eq!(g.cell_edges(), 3);
    }

    #[test]
    fn agrees_with_nocomp_on_cells() {
        let deps =
            [d("A1:A3", "B1"), d("A1:A3", "B2"), d("B1", "C1"), d("B3", "C1"), d("B2:B3", "C2")];
        let mut g = CellGraph::bulk_load(deps.iter().copied());
        let mut nocomp = taco_core::FormulaGraph::nocomp();
        for dep in &deps {
            DependencyBackend::add_dependency(&mut nocomp, dep);
        }
        for probe in ["A1", "B2", "C1", "A2:A3"] {
            assert_eq!(
                cells(&g.find_dependents(r(probe))),
                cells(&DependencyBackend::find_dependents(&mut nocomp, r(probe))),
                "probe {probe}"
            );
        }
        assert_eq!(
            cells(&g.find_precedents(r("C2"))),
            cells(&DependencyBackend::find_precedents(&mut nocomp, r("C2")))
        );
    }

    #[test]
    fn edge_limit_marks_dnf() {
        let mut g = CellGraph::new();
        g.edge_limit = 10;
        DependencyBackend::add_dependency(&mut g, &d("A1:A100", "B1"));
        assert!(g.did_not_finish);
        assert_eq!(g.cell_edges(), 0);
    }

    #[test]
    fn clear_cells_removes_both_directions() {
        let mut g = CellGraph::bulk_load([d("A1:A2", "B1"), d("B1", "C1")]);
        g.clear_cells(r("B1"));
        assert!(g.find_dependents(r("A1")).is_empty());
        // B1 no longer has precedents; C1 still depends on B1's cell.
        assert!(g.find_precedents(r("B1")).is_empty());
        assert_eq!(cells(&g.find_dependents(r("B1"))).len(), 1);
    }

    #[test]
    fn bulk_load_dnf_on_oversized_input() {
        let deps = vec![Dependency::new(Range::from_coords(1, 1, 100, 100), Cell::new(200, 1))];
        let mut g = CellGraph::new();
        g.edge_limit = 100;
        // Rebuild with the limit via manual load.
        for dep in &deps {
            DependencyBackend::add_dependency(&mut g, dep);
        }
        assert!(g.did_not_finish);
    }
}
