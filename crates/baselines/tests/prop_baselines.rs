//! Every exact baseline must agree with NoComp on arbitrary workloads;
//! Antifreeze must at least cover the truth (false positives allowed,
//! false negatives not).

use proptest::prelude::*;
use std::collections::BTreeSet;
use taco_baselines::{Antifreeze, CellGraph, ExcelLike, NoCompCalc};
use taco_core::{Dependency, DependencyBackend, FormulaGraph};
use taco_grid::{Cell, Range};

const W: u32 = 10;
const H: u32 = 16;

fn arb_dep() -> impl Strategy<Value = Dependency> {
    (1u32..=W, 1u32..=H, 1u32..=W, 1u32..=H, 0u32..2, 0u32..4).prop_map(|(pc, pr, dc, dr, w, h)| {
        let prec = Range::from_coords(pc, pr, (pc + w).min(W), (pr + h).min(H));
        Dependency::new(prec, Cell::new(dc, dr))
    })
}

fn arb_deps() -> impl Strategy<Value = Vec<Dependency>> {
    prop::collection::vec(arb_dep(), 1..40).prop_map(|mut v| {
        v.sort_by_key(|d| (d.prec, d.dep));
        v.dedup_by_key(|d| (d.prec, d.dep));
        v
    })
}

fn arb_probe() -> impl Strategy<Value = Range> {
    (1u32..=W, 1u32..=H).prop_map(|(c, r)| Range::cell(Cell::new(c, r)))
}

fn cells(v: &[Range]) -> BTreeSet<Cell> {
    v.iter().flat_map(|x| x.cells()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_baselines_agree_with_nocomp(deps in arb_deps(), probe in arb_probe()) {
        let mut nocomp = FormulaGraph::nocomp();
        let mut calc = NoCompCalc::new();
        let mut cg = CellGraph::new();
        let mut ex = ExcelLike::new();
        for d in &deps {
            DependencyBackend::add_dependency(&mut nocomp, d);
            calc.add_dependency(d);
            DependencyBackend::add_dependency(&mut cg, d);
            DependencyBackend::add_dependency(&mut ex, d);
        }
        let truth_dep = cells(&DependencyBackend::find_dependents(&mut nocomp, probe));
        prop_assert_eq!(&cells(&calc.find_dependents(probe)), &truth_dep, "calc");
        prop_assert_eq!(&cells(&cg.find_dependents(probe)), &truth_dep, "cellgraph");
        prop_assert_eq!(&cells(&ex.find_dependents(probe)), &truth_dep, "excel-like");

        let truth_prec = cells(&DependencyBackend::find_precedents(&mut nocomp, probe));
        prop_assert_eq!(&cells(&calc.find_precedents(probe)), &truth_prec, "calc prec");
        prop_assert_eq!(&cells(&cg.find_precedents(probe)), &truth_prec, "cellgraph prec");
        prop_assert_eq!(&cells(&ex.find_precedents(probe)), &truth_prec, "excel prec");
    }

    #[test]
    fn antifreeze_covers_the_truth(deps in arb_deps(), probe in arb_probe()) {
        let mut nocomp = FormulaGraph::nocomp();
        let mut af = Antifreeze::new();
        for d in &deps {
            DependencyBackend::add_dependency(&mut nocomp, d);
            DependencyBackend::add_dependency(&mut af, d);
        }
        let truth = cells(&DependencyBackend::find_dependents(&mut nocomp, probe));
        let got = cells(&af.find_dependents(probe));
        prop_assert!(got.is_superset(&truth), "missing: {:?}", truth.difference(&got));
    }

    #[test]
    fn clearing_keeps_baselines_in_sync(
        deps in arb_deps(),
        clear in arb_probe(),
        probe in arb_probe(),
    ) {
        let mut nocomp = FormulaGraph::nocomp();
        let mut calc = NoCompCalc::new();
        let mut cg = CellGraph::new();
        let mut ex = ExcelLike::new();
        for d in &deps {
            DependencyBackend::add_dependency(&mut nocomp, d);
            calc.add_dependency(d);
            DependencyBackend::add_dependency(&mut cg, d);
            DependencyBackend::add_dependency(&mut ex, d);
        }
        DependencyBackend::clear_cells(&mut nocomp, clear);
        calc.clear_cells(clear);
        DependencyBackend::clear_cells(&mut cg, clear);
        DependencyBackend::clear_cells(&mut ex, clear);

        let truth = cells(&DependencyBackend::find_dependents(&mut nocomp, probe));
        prop_assert_eq!(&cells(&calc.find_dependents(probe)), &truth, "calc");
        prop_assert_eq!(&cells(&cg.find_dependents(probe)), &truth, "cellgraph");
        prop_assert_eq!(&cells(&ex.find_dependents(probe)), &truth, "excel-like");
    }
}
