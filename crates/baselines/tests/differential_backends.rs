//! Differential backend harness: every [`DependencyBackend`] answers the
//! same seeded corpora identically.
//!
//! All six systems — TACO, TACO-InRow, NoComp, Antifreeze, CellGraph,
//! ExcelLike — ingest the same generated sheets (both corpus presets'
//! pattern mixes) and then face an interleaved script of
//! `find_dependents` / `find_precedents` / `clear_cells` operations.
//! Answers are normalized to cell sets (different backends legitimately
//! return different disjoint-range decompositions) and must be identical.
//!
//! Antifreeze runs in its lossless configuration (`K = ∞`): the paper's
//! `K = 20` cap deliberately introduces bounding-range false positives,
//! which `prop_baselines.rs` covers separately as a superset property —
//! an equality harness would reject the lossy cap by design. A unit test
//! below pins the capped behaviour on this corpus too.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use taco_baselines::{Antifreeze, CellGraph, ExcelLike};
use taco_core::{Config, DependencyBackend, FormulaGraph};
use taco_grid::{Cell, Range};
use taco_workload::{CorpusParams, SheetParams, SyntheticSheet};

/// Small, fast instances of the two corpus presets: the preset's pattern
/// mix and row limits, at differential-test scale.
fn presets() -> Vec<CorpusParams> {
    [taco_workload::enron_like(0.1), taco_workload::github_like(0.1)]
        .into_iter()
        .map(|p| CorpusParams {
            sheets: 2,
            min_deps: 250,
            max_deps: 600,
            sheet: SheetParams { max_run: 40, ..p.sheet },
            ..p
        })
        .collect()
}

fn backends() -> Vec<Box<dyn DependencyBackend>> {
    vec![
        Box::new(FormulaGraph::taco()),
        Box::new(FormulaGraph::new(Config::taco_in_row())),
        Box::new(FormulaGraph::nocomp()),
        Box::new(Antifreeze::with_k(usize::MAX)),
        Box::new(CellGraph::new()),
        Box::new(ExcelLike::new()),
    ]
}

fn cells(v: &[Range]) -> BTreeSet<Cell> {
    v.iter().flat_map(|x| x.cells()).collect()
}

/// The probe pool for one sheet: its hot cells plus seeded random cells
/// inside the occupied area.
fn probes(sheet: &SyntheticSheet, rng: &mut StdRng) -> Vec<Cell> {
    let max_col = sheet.deps.iter().map(|d| d.dep.col.max(d.prec.tail().col)).max().unwrap_or(2);
    let max_row =
        sheet.deps.iter().map(|d| d.dep.row.max(d.prec.tail().row)).max().unwrap_or(2).min(70_000);
    let mut out: Vec<Cell> = sheet.hot_cells.iter().copied().take(4).collect();
    out.push(sheet.longest_path_cell);
    for _ in 0..4 {
        out.push(Cell::new(rng.gen_range(1..=max_col), rng.gen_range(1..=max_row)));
    }
    // And some dependency endpoints, which are guaranteed interesting.
    for _ in 0..3 {
        let d = &sheet.deps[rng.gen_range(0..sheet.deps.len())];
        out.push(d.dep);
        out.push(d.prec.head());
    }
    out
}

/// Asserts that every backend currently gives the same answers for the
/// probe pool.
fn assert_agreement(backs: &mut [Box<dyn DependencyBackend>], pool: &[Cell], context: &str) {
    for &cell in pool {
        let probe = Range::cell(cell);
        let truth_dep: BTreeSet<Cell> = cells(&backs[0].find_dependents(probe));
        let truth_prec: BTreeSet<Cell> = cells(&backs[0].find_precedents(probe));
        for b in backs.iter_mut().skip(1) {
            let name = b.name();
            assert_eq!(
                cells(&b.find_dependents(probe)),
                truth_dep,
                "{context}: dependents({cell}) disagree for {name}"
            );
            assert_eq!(
                cells(&b.find_precedents(probe)),
                truth_prec,
                "{context}: precedents({cell}) disagree for {name}"
            );
        }
    }
}

#[test]
fn all_backends_agree_on_both_corpus_presets() {
    for params in presets() {
        let sheets = params.generate();
        for sheet in &sheets {
            let mut rng = StdRng::seed_from_u64(0xD1FF ^ sheet.deps.len() as u64);
            let mut backs = backends();
            for b in backs.iter_mut() {
                for d in &sheet.deps {
                    b.add_dependency(d);
                }
            }
            let pool = probes(sheet, &mut rng);
            assert_agreement(&mut backs, &pool, &format!("{} fresh", sheet.name));

            // Interleave clears with re-probes: incremental maintenance
            // must keep all six in lockstep.
            for round in 0..4 {
                let d = &sheet.deps[rng.gen_range(0..sheet.deps.len())];
                let anchor = if round % 2 == 0 { d.dep } else { d.prec.head() };
                let clear = Range::from_coords(
                    anchor.col,
                    anchor.row,
                    anchor.col + rng.gen_range(0..2),
                    anchor.row + rng.gen_range(0..3),
                );
                for b in backs.iter_mut() {
                    b.clear_cells(clear);
                }
                let mut pool = probes(sheet, &mut rng);
                pool.push(anchor);
                assert_agreement(
                    &mut backs,
                    &pool,
                    &format!("{} after clear #{round} {clear}", sheet.name),
                );
            }
        }
    }
}

/// The paper-faithful `K = 20` Antifreeze is *not* exact — its bounding
/// ranges may cover extra cells — but it must never miss a dependent on
/// these corpora either.
#[test]
fn capped_antifreeze_covers_truth_on_corpus() {
    let params = presets().remove(0);
    let sheet = &params.generate()[0];
    let mut truth = FormulaGraph::nocomp();
    let mut af = Antifreeze::new(); // K = 20
    for d in &sheet.deps {
        DependencyBackend::add_dependency(&mut truth, d);
        DependencyBackend::add_dependency(&mut af, d);
    }
    let mut rng = StdRng::seed_from_u64(7);
    for cell in probes(sheet, &mut rng) {
        let probe = Range::cell(cell);
        let want = cells(&DependencyBackend::find_dependents(&mut truth, probe));
        let got = cells(&DependencyBackend::find_dependents(&mut af, probe));
        assert!(
            got.is_superset(&want),
            "capped Antifreeze missed dependents of {cell}: {:?}",
            want.difference(&got).collect::<Vec<_>>()
        );
    }
}
