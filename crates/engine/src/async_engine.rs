//! The asynchronous execution model that motivates TACO (§I, §VI-A).
//!
//! DataSpread returns control to the user as soon as the dependents of an
//! edit are identified and hidden; evaluation happens in the background.
//! Finding dependents is therefore the latency-critical step — exactly
//! what TACO accelerates.
//!
//! [`AsyncEngine`] reproduces that model: edits are enqueued to a worker
//! thread that owns the [`Engine`]. For every edit the worker first marks
//! the dependents *dirty* in a shared snapshot (the "hidden cells" the UI
//! would gray out), and only then recalculates and publishes fresh values.
//! Readers never block on recalculation: they see either the old value or
//! the new one, and can ask whether a cell is currently dirty.

use crate::engine::Engine;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use taco_core::FormulaGraph;
use taco_formula::Value;
use taco_grid::{Cell, Range};

/// Commands accepted by the worker.
enum Cmd {
    SetValue(Cell, Value),
    SetFormula(Cell, String),
    Autofill(Cell, Range),
    Clear(Range),
    /// Reply when every prior command has been fully processed.
    Barrier(Sender<()>),
    Shutdown,
}

/// State shared between the worker and readers.
#[derive(Default)]
struct Shared {
    values: RwLock<HashMap<Cell, Value>>,
    dirty: RwLock<HashSet<Cell>>,
    recalcs: AtomicU64,
}

/// A spreadsheet whose recalculation runs on a background thread.
pub struct AsyncEngine {
    tx: Sender<Cmd>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl AsyncEngine {
    /// Spawns the worker with a TACO-compressed formula graph.
    pub fn spawn() -> Self {
        Self::spawn_with(Engine::with_taco())
    }

    /// Spawns the worker around an existing engine.
    pub fn spawn_with(engine: Engine<FormulaGraph>) -> Self {
        let (tx, rx) = unbounded::<Cmd>();
        let shared = Arc::new(Shared::default());
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("taco-recalc".into())
            .spawn(move || worker(engine, rx, worker_shared))
            .expect("spawn recalculation worker");
        AsyncEngine { tx, shared, handle: Some(handle) }
    }

    /// Enqueues a value edit; returns immediately.
    pub fn set_value(&self, cell: Cell, v: Value) {
        let _ = self.tx.send(Cmd::SetValue(cell, v));
    }

    /// Enqueues a formula edit; parse errors surface as `#NAME?`-style
    /// errors when the worker processes the command.
    pub fn set_formula(&self, cell: Cell, src: &str) {
        let _ = self.tx.send(Cmd::SetFormula(cell, src.to_string()));
    }

    /// Enqueues an autofill.
    pub fn autofill(&self, src: Cell, targets: Range) {
        let _ = self.tx.send(Cmd::Autofill(src, targets));
    }

    /// Enqueues a range clear.
    pub fn clear(&self, range: Range) {
        let _ = self.tx.send(Cmd::Clear(range));
    }

    /// The last published value of a cell (never blocks on recalc).
    pub fn value(&self, cell: Cell) -> Value {
        self.shared.values.read().get(&cell).cloned().unwrap_or(Value::Empty)
    }

    /// `true` while the cell is awaiting background recalculation — the
    /// "hidden" state the UI would render.
    pub fn is_dirty(&self, cell: Cell) -> bool {
        self.shared.dirty.read().contains(&cell)
    }

    /// Number of cells currently hidden.
    pub fn dirty_count(&self) -> usize {
        self.shared.dirty.read().len()
    }

    /// Number of background recalculation rounds completed.
    pub fn recalc_rounds(&self) -> u64 {
        self.shared.recalcs.load(Ordering::Acquire)
    }

    /// Blocks until every previously enqueued edit has been applied *and*
    /// recalculated.
    pub fn sync(&self) {
        let (tx, rx) = unbounded();
        if self.tx.send(Cmd::Barrier(tx)).is_ok() {
            let _ = rx.recv();
        }
    }
}

impl Drop for AsyncEngine {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker(mut engine: Engine<FormulaGraph>, rx: Receiver<Cmd>, shared: Arc<Shared>) {
    while let Ok(first) = rx.recv() {
        // Batch: drain whatever queued up while we were recalculating.
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let mut barriers = Vec::new();
        let mut shutdown = false;
        for cmd in batch {
            match cmd {
                Cmd::SetValue(cell, v) => {
                    let receipt = engine.set_value(cell, v.clone());
                    publish_edit(&shared, &engine, cell, Some(v), &receipt.dirty);
                }
                Cmd::SetFormula(cell, src) => match engine.set_formula(cell, &src) {
                    Ok(receipt) => {
                        mark_dirty(&shared, &engine, std::iter::once(cell), &receipt.dirty);
                    }
                    Err(_) => {
                        shared
                            .values
                            .write()
                            .insert(cell, Value::Error(taco_formula::CellError::Name));
                    }
                },
                Cmd::Autofill(src, targets) => {
                    if let Ok(receipt) = engine.autofill(src, targets) {
                        mark_dirty(&shared, &engine, targets.cells(), &receipt.dirty);
                    }
                }
                Cmd::Clear(range) => {
                    let receipt = engine.clear_range(range);
                    {
                        let mut values = shared.values.write();
                        for c in range.cells() {
                            values.remove(&c);
                        }
                    }
                    mark_dirty(&shared, &engine, std::iter::empty(), &receipt.dirty);
                }
                Cmd::Barrier(done) => barriers.push(done),
                Cmd::Shutdown => shutdown = true,
            }
        }

        // Control has conceptually returned to the user here (dependents
        // are marked); now do the slow part.
        engine.recalculate();
        publish_all_dirty(&shared, &engine);
        shared.recalcs.fetch_add(1, Ordering::Release);

        for b in barriers {
            let _ = b.send(());
        }
        if shutdown {
            return;
        }
    }
}

/// Marks the receipt's formula cells dirty in the shared snapshot.
fn mark_dirty(
    shared: &Shared,
    engine: &Engine<FormulaGraph>,
    also: impl Iterator<Item = Cell>,
    dirty_ranges: &[Range],
) {
    let mut dirty = shared.dirty.write();
    dirty.extend(also);
    for r in dirty_ranges {
        // Bound the walk: only cells that exist as formulas matter.
        if r.area() <= 100_000 {
            for c in r.cells() {
                if engine.formula_of(c).is_some() {
                    dirty.insert(c);
                }
            }
        }
    }
}

fn publish_edit(
    shared: &Shared,
    engine: &Engine<FormulaGraph>,
    cell: Cell,
    value: Option<Value>,
    dirty_ranges: &[Range],
) {
    if let Some(v) = value {
        shared.values.write().insert(cell, v);
    }
    mark_dirty(shared, engine, std::iter::empty(), dirty_ranges);
}

/// Publishes all recalculated values and clears the hidden set.
fn publish_all_dirty(shared: &Shared, engine: &Engine<FormulaGraph>) {
    let mut dirty = shared.dirty.write();
    let mut values = shared.values.write();
    for &c in dirty.iter() {
        values.insert(c, engine.value(c));
    }
    dirty.clear();
}

impl AsyncEngine {
    /// Test/diagnostic helper: snapshot of all published values.
    pub fn snapshot(&self) -> HashMap<Cell, Value> {
        self.shared.values.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn n(v: f64) -> Value {
        Value::Number(v)
    }

    #[test]
    fn values_eventually_consistent() {
        let eng = AsyncEngine::spawn();
        eng.set_value(c("A1"), n(2.0));
        eng.set_value(c("A2"), n(3.0));
        eng.set_formula(c("B1"), "=A1+A2");
        eng.sync();
        assert_eq!(eng.value(c("B1")), n(5.0));
        assert_eq!(eng.dirty_count(), 0);
    }

    #[test]
    fn autofill_and_update_through_worker() {
        let eng = AsyncEngine::spawn();
        for row in 1..=100u32 {
            eng.set_value(Cell::new(1, row), n(1.0));
        }
        eng.set_formula(c("B1"), "=SUM($A$1:A1)");
        eng.autofill(c("B1"), Range::from_coords(2, 2, 2, 100));
        eng.sync();
        assert_eq!(eng.value(Cell::new(2, 100)), n(100.0));

        eng.set_value(c("A1"), n(51.0));
        eng.sync();
        assert_eq!(eng.value(Cell::new(2, 100)), n(150.0));
        assert!(eng.recalc_rounds() >= 2);
    }

    #[test]
    fn clear_removes_published_values() {
        let eng = AsyncEngine::spawn();
        eng.set_value(c("A1"), n(9.0));
        eng.set_formula(c("B1"), "=A1");
        eng.sync();
        eng.clear(Range::parse_a1("A1:B1").unwrap());
        eng.sync();
        assert_eq!(eng.value(c("A1")), Value::Empty);
        assert_eq!(eng.value(c("B1")), Value::Empty);
    }

    #[test]
    fn bad_formula_reports_error_value() {
        let eng = AsyncEngine::spawn();
        eng.set_formula(c("B1"), "=THIS IS NOT A FORMULA((");
        eng.sync();
        assert!(eng.value(c("B1")).is_error());
    }

    #[test]
    fn reads_never_block_under_edit_storm() {
        let eng = AsyncEngine::spawn();
        eng.set_value(c("A1"), n(0.0));
        for row in 2..=200u32 {
            eng.set_formula(Cell::new(1, row), &format!("=A{}+1", row - 1));
        }
        // Interleave reads with the storm; they must return promptly with
        // *some* value (possibly stale).
        for _ in 0..50 {
            let _ = eng.value(c("A1"));
            let _ = eng.dirty_count();
        }
        eng.set_value(c("A1"), n(1000.0));
        eng.sync();
        assert_eq!(eng.value(Cell::new(1, 200)), n(1199.0));
    }

    #[test]
    fn drop_shuts_worker_down() {
        let eng = AsyncEngine::spawn();
        eng.set_value(c("A1"), n(1.0));
        drop(eng); // must not hang
    }
}
