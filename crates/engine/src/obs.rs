//! Engine observability: pre-registered handle bundles the workbook and
//! persistence layers record through. All registration (name lookups,
//! label formatting, handle allocation) happens on the cold attach path;
//! the recalculation and WAL hot paths then record through plain field
//! access — atomic counter bumps, histogram bucket bumps, and fixed-size
//! span pushes, none of which allocate.

use crate::workbook::RecalcMode;
use std::time::Instant;
use taco_core::StatsScratch;
use taco_obs::{Counter, Gauge, Histogram, Obs, SpanCat, Tracer};

/// Metric and tracer handles for one workbook's recalculation engine.
pub struct EngineObs {
    /// `taco_recalc_ns{mode="serial"}` — full-recalc wall time.
    recalc_serial_ns: Histogram,
    /// `taco_recalc_ns{mode="parallel"}`.
    recalc_parallel_ns: Histogram,
    /// `taco_recalc_ns{mode="cell_parallel"}`.
    recalc_cell_parallel_ns: Histogram,
    /// `taco_recalc_cells` — cells evaluated per recalculation.
    recalc_cells: Histogram,
    /// `taco_recalc_levels` — sheet SCC levels walked per recalculation.
    recalc_levels: Histogram,
    /// `taco_dirty_depth` — dirty-set size at recalc entry.
    dirty_depth: Histogram,
    /// `taco_demand_closure_cells` — needed-set size per demand recalc.
    demand_closure_cells: Histogram,
    /// `taco_recalcs_total` / `taco_recalc_cells_total` — lifetime counts.
    recalcs_total: Counter,
    recalc_cells_total: Counter,
    /// Graph-shape gauges, labeled `book="<name>"`, refreshed after each
    /// recalculation (the graph only changes on edits, so any recalc is a
    /// current poll point).
    graph_edges: Gauge,
    graph_vertices: Gauge,
    graph_dependencies: Gauge,
    graph_edges_reduced: Gauge,
    cross_edges: Gauge,
    /// Reused vertex-dedup scratch for the gauge refresh (PR 5 scratch
    /// discipline: steady-state polling allocates nothing).
    scratch: StatsScratch,
    pub(crate) tracer: Tracer,
}

impl EngineObs {
    /// Registers the engine metric set against `obs`. `book` labels the
    /// graph gauges so multiple workbooks on one hub stay distinct.
    pub fn new(obs: &Obs, book: &str) -> EngineObs {
        let m = &obs.metrics;
        let book_label = format!("book=\"{book}\"");
        EngineObs {
            recalc_serial_ns: m.histogram_with("taco_recalc_ns", "mode=\"serial\""),
            recalc_parallel_ns: m.histogram_with("taco_recalc_ns", "mode=\"parallel\""),
            recalc_cell_parallel_ns: m.histogram_with("taco_recalc_ns", "mode=\"cell_parallel\""),
            recalc_cells: m.histogram("taco_recalc_cells"),
            recalc_levels: m.histogram("taco_recalc_levels"),
            dirty_depth: m.histogram("taco_dirty_depth"),
            demand_closure_cells: m.histogram("taco_demand_closure_cells"),
            recalcs_total: m.counter("taco_recalcs_total"),
            recalc_cells_total: m.counter("taco_recalc_cells_total"),
            graph_edges: m.gauge_with("taco_graph_edges", &book_label),
            graph_vertices: m.gauge_with("taco_graph_vertices", &book_label),
            graph_dependencies: m.gauge_with("taco_graph_dependencies", &book_label),
            graph_edges_reduced: m.gauge_with("taco_graph_edges_reduced", &book_label),
            cross_edges: m.gauge_with("taco_cross_edges", &book_label),
            scratch: StatsScratch::new(),
            tracer: obs.tracer.clone(),
        }
    }

    /// The latency histogram for `mode`.
    fn recalc_hist(&self, mode: RecalcMode) -> &Histogram {
        match mode {
            RecalcMode::Serial => &self.recalc_serial_ns,
            RecalcMode::Parallel { .. } => &self.recalc_parallel_ns,
            RecalcMode::CellParallel { .. } => &self.recalc_cell_parallel_ns,
        }
    }

    /// Records one completed full recalculation.
    pub(crate) fn on_recalc(
        &self,
        mode: RecalcMode,
        start: Instant,
        start_ns: u64,
        cells: usize,
        levels: usize,
        dirty_before: usize,
    ) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.recalc_hist(mode).record(dur);
        self.recalc_cells.record(cells as u64);
        self.recalc_levels.record(levels as u64);
        self.dirty_depth.record(dirty_before as u64);
        self.recalcs_total.inc();
        self.recalc_cells_total.add(cells as u64);
        self.tracer.record(
            "workbook.recalc",
            SpanCat::Recalc,
            start_ns,
            dur,
            cells as u64,
            levels as u64,
        );
    }

    /// Records one sheet SCC level of a recalculation.
    pub(crate) fn on_sheet_level(
        &self,
        start: Instant,
        start_ns: u64,
        level: usize,
        sheets: usize,
    ) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tracer.record(
            "workbook.level",
            SpanCat::SheetLevel,
            start_ns,
            dur,
            level as u64,
            sheets as u64,
        );
    }

    /// Records one demand-driven recalculation and its needed-set size.
    pub(crate) fn on_demand(&self, start: Instant, start_ns: u64, closure: usize) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.demand_closure_cells.record(closure as u64);
        self.tracer.record("workbook.demand", SpanCat::Demand, start_ns, dur, closure as u64, 0);
    }

    /// Refreshes the graph-shape gauges from summed per-sheet stats.
    /// `stats` yields each sheet's backend stats (None for backends
    /// without compression accounting — those refresh edges only).
    pub(crate) fn refresh_graph_gauges<F>(&mut self, cross_edges: usize, mut per_sheet: F)
    where
        F: FnMut(&mut StatsScratch) -> Option<(usize, Option<taco_core::GraphStats>)>,
    {
        let (mut edges, mut vertices, mut deps, mut reduced) = (0i64, 0i64, 0i64, 0i64);
        let mut have_stats = false;
        while let Some((num_edges, stats)) = per_sheet(&mut self.scratch) {
            edges += num_edges as i64;
            if let Some(s) = stats {
                have_stats = true;
                vertices += s.vertices as i64;
                deps += i64::try_from(s.dependencies).unwrap_or(i64::MAX);
                reduced += i64::try_from(s.reduced.total()).unwrap_or(i64::MAX);
            }
        }
        self.graph_edges.set(edges);
        self.cross_edges.set(cross_edges as i64);
        if have_stats {
            self.graph_vertices.set(vertices);
            self.graph_dependencies.set(deps);
            self.graph_edges_reduced.set(reduced);
        }
    }

    /// The hub clock, for span start stamps.
    pub(crate) fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }
}

/// Metric handles for one [`crate::PersistentWorkbook`]'s durability
/// layer: compaction accounting here, per-append/fsync accounting in the
/// WAL's own [`taco_store::WalObs`] bundle.
pub struct PersistObs {
    /// `taco_wal_compactions_total` — WAL folds into fresh snapshots.
    compactions: Counter,
    /// `taco_compaction_ns` — snapshot-write + log-reset latency.
    compaction_ns: Histogram,
    tracer: Tracer,
}

impl PersistObs {
    /// Registers the persistence metric set against `obs`.
    pub(crate) fn new(obs: &Obs) -> PersistObs {
        PersistObs {
            compactions: obs.metrics.counter("taco_wal_compactions_total"),
            compaction_ns: obs.metrics.histogram("taco_compaction_ns"),
            tracer: obs.tracer.clone(),
        }
    }

    /// Records one completed compaction of `folded` WAL records.
    pub(crate) fn on_compaction(&self, start: Instant, start_ns: u64, folded: u64) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.compactions.inc();
        self.compaction_ns.record(dur);
        self.tracer.record("wal.compact", SpanCat::Compaction, start_ns, dur, folded, 0);
    }

    /// The hub clock, for span start stamps.
    pub(crate) fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }
}
