//! Engine observability: pre-registered handle bundles the workbook and
//! persistence layers record through. All registration (name lookups,
//! label formatting, handle allocation) happens on the cold attach path;
//! the recalculation and WAL hot paths then record through plain field
//! access — atomic counter bumps, histogram bucket bumps, and fixed-size
//! span pushes, none of which allocate.

use crate::workbook::RecalcMode;
use std::time::Instant;
use taco_core::StatsScratch;
use taco_obs::{Counter, Gauge, Histogram, Obs, SpanCat, SpanGuard, Tracer};

/// Metric and tracer handles for one workbook's recalculation engine.
pub struct EngineObs {
    /// `taco_recalc_ns{mode="serial"}` — full-recalc wall time.
    recalc_serial_ns: Histogram,
    /// `taco_recalc_ns{mode="parallel"}`.
    recalc_parallel_ns: Histogram,
    /// `taco_recalc_ns{mode="cell_parallel"}`.
    recalc_cell_parallel_ns: Histogram,
    /// `taco_recalc_cells` — cells evaluated per recalculation.
    recalc_cells: Histogram,
    /// `taco_recalc_levels` — sheet SCC levels walked per recalculation.
    recalc_levels: Histogram,
    /// `taco_dirty_depth` — dirty-set size at recalc entry.
    dirty_depth: Histogram,
    /// `taco_demand_closure_cells` — needed-set size per demand recalc.
    demand_closure_cells: Histogram,
    /// `taco_profile_level_ns` / `taco_profile_cell_ns` — profiler
    /// attribution distributions (populated only while [`ProfileMode`]
    /// is on for the workbook).
    ///
    /// [`ProfileMode`]: crate::ProfileMode
    profile_level_ns: Histogram,
    profile_cell_ns: Histogram,
    /// `taco_recalcs_total` / `taco_recalc_cells_total` — lifetime counts.
    recalcs_total: Counter,
    recalc_cells_total: Counter,
    /// Graph-shape gauges, labeled `book="<name>"`, refreshed after each
    /// recalculation (the graph only changes on edits, so any recalc is a
    /// current poll point).
    graph_edges: Gauge,
    graph_vertices: Gauge,
    graph_dependencies: Gauge,
    graph_edges_reduced: Gauge,
    cross_edges: Gauge,
    /// Reused vertex-dedup scratch for the gauge refresh (PR 5 scratch
    /// discipline: steady-state polling allocates nothing).
    scratch: StatsScratch,
    pub(crate) tracer: Tracer,
}

impl EngineObs {
    /// Registers the engine metric set against `obs`. `book` labels the
    /// graph gauges so multiple workbooks on one hub stay distinct.
    pub fn new(obs: &Obs, book: &str) -> EngineObs {
        let m = &obs.metrics;
        let book_label = format!("book=\"{book}\"");
        EngineObs {
            recalc_serial_ns: m.histogram_with("taco_recalc_ns", "mode=\"serial\""),
            recalc_parallel_ns: m.histogram_with("taco_recalc_ns", "mode=\"parallel\""),
            recalc_cell_parallel_ns: m.histogram_with("taco_recalc_ns", "mode=\"cell_parallel\""),
            recalc_cells: m.histogram("taco_recalc_cells"),
            recalc_levels: m.histogram("taco_recalc_levels"),
            dirty_depth: m.histogram("taco_dirty_depth"),
            demand_closure_cells: m.histogram("taco_demand_closure_cells"),
            profile_level_ns: m.histogram("taco_profile_level_ns"),
            profile_cell_ns: m.histogram("taco_profile_cell_ns"),
            recalcs_total: m.counter("taco_recalcs_total"),
            recalc_cells_total: m.counter("taco_recalc_cells_total"),
            graph_edges: m.gauge_with("taco_graph_edges", &book_label),
            graph_vertices: m.gauge_with("taco_graph_vertices", &book_label),
            graph_dependencies: m.gauge_with("taco_graph_dependencies", &book_label),
            graph_edges_reduced: m.gauge_with("taco_graph_edges_reduced", &book_label),
            cross_edges: m.gauge_with("taco_cross_edges", &book_label),
            scratch: StatsScratch::new(),
            tracer: obs.tracer.clone(),
        }
    }

    /// The latency histogram for `mode`.
    fn recalc_hist(&self, mode: RecalcMode) -> &Histogram {
        match mode {
            RecalcMode::Serial => &self.recalc_serial_ns,
            RecalcMode::Parallel { .. } => &self.recalc_parallel_ns,
            RecalcMode::CellParallel { .. } => &self.recalc_cell_parallel_ns,
        }
    }

    /// Starts the `workbook.recalc` span as a tree-building guard: the
    /// per-level spans recorded while it is live nest under it, and it
    /// nests under whatever request context the calling thread carries.
    /// Set `a` (cells) and `b` (levels) before it drops.
    pub(crate) fn recalc_guard(&self) -> SpanGuard {
        self.tracer.span_guard("workbook.recalc", SpanCat::Recalc)
    }

    /// Records one completed full recalculation's metrics (the span
    /// itself is the [`EngineObs::recalc_guard`]).
    pub(crate) fn on_recalc(
        &self,
        mode: RecalcMode,
        start: Instant,
        cells: usize,
        levels: usize,
        dirty_before: usize,
    ) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.recalc_hist(mode).record(dur);
        self.recalc_cells.record(cells as u64);
        self.recalc_levels.record(levels as u64);
        self.dirty_depth.record(dirty_before as u64);
        self.recalcs_total.inc();
        self.recalc_cells_total.add(cells as u64);
    }

    /// Starts the guard for one sheet SCC level of a recalculation: the
    /// engine's cell-level spans recorded inside the level nest under it
    /// (rather than double-counting as siblings). Set `a` (level index)
    /// and `b` (sheets in the level) before it drops.
    pub(crate) fn sheet_level_guard(&self) -> SpanGuard {
        self.tracer.span_guard("workbook.level", SpanCat::SheetLevel)
    }

    /// Starts the `workbook.demand` span guard wrapping one demand-driven
    /// recalculation (closure expansion + restricted recalc). Set `a`
    /// (closure size) before it drops.
    pub(crate) fn demand_guard(&self) -> SpanGuard {
        self.tracer.span_guard("workbook.demand", SpanCat::Demand)
    }

    /// Records the needed-set size of one demand-driven recalculation,
    /// plus the `demand.expand` span covering the closure walk itself.
    pub(crate) fn on_demand_expand(&self, start: Instant, start_ns: u64, closure: usize) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.demand_closure_cells.record(closure as u64);
        self.tracer.record("demand.expand", SpanCat::Demand, start_ns, dur, closure as u64, 0);
    }

    /// Feeds one sheet's profiler buffers into the `taco_profile_*`
    /// histograms (no-op when profiling is off — the slices are empty).
    pub(crate) fn on_profile(&self, levels: &[(u32, u32, u64)], cells: &[(taco_grid::Cell, u64)]) {
        for &(_, _, ns) in levels {
            self.profile_level_ns.record(ns);
        }
        for &(_, ns) in cells {
            self.profile_cell_ns.record(ns);
        }
    }

    /// Refreshes the graph-shape gauges from summed per-sheet stats.
    /// `stats` yields each sheet's backend stats (None for backends
    /// without compression accounting — those refresh edges only).
    pub(crate) fn refresh_graph_gauges<F>(&mut self, cross_edges: usize, mut per_sheet: F)
    where
        F: FnMut(&mut StatsScratch) -> Option<(usize, Option<taco_core::GraphStats>)>,
    {
        let (mut edges, mut vertices, mut deps, mut reduced) = (0i64, 0i64, 0i64, 0i64);
        let mut have_stats = false;
        while let Some((num_edges, stats)) = per_sheet(&mut self.scratch) {
            edges += num_edges as i64;
            if let Some(s) = stats {
                have_stats = true;
                vertices += s.vertices as i64;
                deps += i64::try_from(s.dependencies).unwrap_or(i64::MAX);
                reduced += i64::try_from(s.reduced.total()).unwrap_or(i64::MAX);
            }
        }
        self.graph_edges.set(edges);
        self.cross_edges.set(cross_edges as i64);
        if have_stats {
            self.graph_vertices.set(vertices);
            self.graph_dependencies.set(deps);
            self.graph_edges_reduced.set(reduced);
        }
    }

    /// The hub clock, for span start stamps.
    pub(crate) fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }
}

/// Metric handles for one [`crate::PersistentWorkbook`]'s durability
/// layer: compaction accounting here, per-append/fsync accounting in the
/// WAL's own [`taco_store::WalObs`] bundle.
pub struct PersistObs {
    /// `taco_wal_compactions_total` — WAL folds into fresh snapshots.
    compactions: Counter,
    /// `taco_compaction_ns` — snapshot-write + log-reset latency.
    compaction_ns: Histogram,
    tracer: Tracer,
}

impl PersistObs {
    /// Registers the persistence metric set against `obs`.
    pub(crate) fn new(obs: &Obs) -> PersistObs {
        PersistObs {
            compactions: obs.metrics.counter("taco_wal_compactions_total"),
            compaction_ns: obs.metrics.histogram("taco_compaction_ns"),
            tracer: obs.tracer.clone(),
        }
    }

    /// Records one completed compaction of `folded` WAL records.
    pub(crate) fn on_compaction(&self, start: Instant, start_ns: u64, folded: u64) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.compactions.inc();
        self.compaction_ns.record(dur);
        self.tracer.record("wal.compact", SpanCat::Compaction, start_ns, dur, folded, 0);
    }

    /// The hub clock, for span start stamps.
    pub(crate) fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }
}
