use crate::sheet::CellContent;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use taco_core::{Dependency, DependencyBackend, FormulaGraph, Leveler};
use taco_formula::eval::{eval, CellProvider, EvalClock, VolatileCtx};
use taco_formula::{autofill, CellError, Formula, FormulaError, Value};
use taco_grid::a1::QualifiedRef;
use taco_grid::{Cell, Range};

/// Values of *other* sheets, visible to this sheet's evaluator. The
/// workbook supplies an implementation during multi-sheet recalculation; a
/// standalone engine uses [`NoExternal`], which turns every foreign
/// reference into `#REF!`.
///
/// `Sync` because cell-level parallel recalculation shares one external
/// view across the scoped worker threads of a level.
pub(crate) trait ExternalSheets: Sync {
    /// Value of `cell` on the sheet named `sheet` (`#REF!` if unknown).
    fn value(&self, sheet: &str, cell: Cell) -> Value;
}

/// The standalone-engine external view: no other sheets exist.
pub(crate) struct NoExternal;

impl ExternalSheets for NoExternal {
    fn value(&self, _sheet: &str, _cell: Cell) -> Value {
        Value::Error(CellError::Ref)
    }
}

/// Opt-in recalculation profiler granularity (see
/// [`Engine::set_profile`]). Profiling is sampling-free wall-time
/// attribution: per-level totals, and (in `Hotspots` mode) a
/// fixed-capacity top-K of the most expensive individual cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// No attribution (the default; zero overhead on the eval loop).
    #[default]
    Off,
    /// Wall time per evaluation level only.
    Levels,
    /// Per-level wall time plus the top-K hottest cells by individual
    /// evaluation time (one extra clock read per cell).
    Hotspots,
}

/// How many hottest cells the profiler retains per recalculation.
pub const PROFILE_TOP_K: usize = 16;

/// One recalculation's profile (see [`Engine::profile_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// `(level index, cells in level, wall nanoseconds)` per evaluation
    /// level. The serial path reports the whole pass as level 0.
    pub levels: Vec<(u32, u32, u64)>,
    /// The hottest cells by evaluation wall time, hottest first (at most
    /// [`PROFILE_TOP_K`]; empty unless [`ProfileMode::Hotspots`]).
    pub hotspots: Vec<(Cell, u64)>,
}

/// Fixed-capacity hotspot insert: push while below K, then displace the
/// current minimum — never grows past [`PROFILE_TOP_K`], so steady-state
/// profiling performs no allocation.
fn push_hot(top: &mut Vec<(Cell, u64)>, cell: Cell, ns: u64) {
    if top.len() < PROFILE_TOP_K {
        top.push((cell, ns));
        return;
    }
    if let Some(i) = (0..top.len()).min_by_key(|&i| top[i].1) {
        if ns > top[i].1 {
            top[i] = (cell, ns);
        }
    }
}

/// What an edit reported back before recalculation: the information the
/// asynchronous model needs to "return control to the user".
#[derive(Debug, Clone)]
pub struct EditReceipt {
    /// Ranges marked dirty (the dependents of the edit).
    pub dirty: Vec<Range>,
    /// Time spent identifying the dependents — the paper's
    /// interactivity-critical metric.
    pub control_latency: Duration,
}

/// Reusable recalculation state: the sorted dirty view, DFS coloring,
/// a shared neighbor arena, and the explicit DFS stack. All buffers
/// persist on the engine, so steady-state recalculation performs no
/// per-recalc (let alone per-cell) allocations — replacing the old
/// `HashMap<Cell, Color>` plus fresh `Vec` per visited cell.
#[derive(Debug, Default)]
struct RecalcScratch {
    /// The dirty set, sorted by `(col, row)`: the membership structure
    /// `dirty_precedents_of` binary-searches instead of hashing.
    dirty_sorted: Vec<Cell>,
    /// DFS colors parallel to `dirty_sorted` (white/gray/black).
    color: Vec<u8>,
    /// Shared neighbor arena: each DFS frame owns a `[start, end)` slice,
    /// truncated back on pop.
    nbrs: Vec<u32>,
    /// Explicit DFS stack.
    stack: Vec<Frame>,
    /// The resulting evaluation order.
    order: Vec<Cell>,
    /// Cells reached by a back edge (cycle members).
    cycles: Vec<Cell>,
    /// Kahn leveling state for cell-level parallel recalculation
    /// (shared machinery with the graph-probe leveling in `taco_core`).
    leveler: Leveler,
    /// Per-level staging buffer: worker threads evaluate a level against
    /// the immutable pre-level cell store into `(cell, value)` slots,
    /// applied after the level barrier — the writes that make parallel
    /// evaluation bit-identical to serial. The third slot is the cell's
    /// evaluation wall time, stamped only in `Hotspots` profiling.
    staged: Vec<(Cell, Value, u64)>,
    /// Profiler output: `(level, width, ns)` per level of the most
    /// recent recalculation (empty when profiling is off).
    prof_levels: Vec<(u32, u32, u64)>,
    /// Profiler output: the top-K hottest cells (capacity-bounded by
    /// [`PROFILE_TOP_K`]; empty unless `Hotspots`).
    prof_top: Vec<(Cell, u64)>,
}

/// One DFS frame: a node (index into `dirty_sorted`) plus its neighbor
/// slice in the shared arena.
#[derive(Debug, Clone, Copy)]
struct Frame {
    node: u32,
    start: u32,
    cursor: u32,
    end: u32,
}

const WHITE: u8 = 0;
const GRAY: u8 = 1;
const BLACK: u8 = 2;

/// A headless spreadsheet backed by a pluggable formula graph.
pub struct Engine<B: DependencyBackend = FormulaGraph> {
    cells: HashMap<Cell, CellContent>,
    graph: B,
    dirty: HashSet<Cell>,
    /// The sheet's name when mounted in a [`crate::Workbook`]; references
    /// qualified with this name (`Sheet1!A1` inside `Sheet1`) are treated
    /// as local. `None` for a standalone engine.
    sheet_name: Option<String>,
    /// Reusable recalculation buffers (see [`RecalcScratch`]).
    recalc: RecalcScratch,
    /// Injected volatile-function clock (NOW/TODAY/RAND read it).
    clock: EvalClock,
    /// Total formula evaluations performed over the engine's lifetime
    /// (the recalc counter demand-driven tests assert on).
    evaluated_total: u64,
    /// When `true`, every recalculation records its evaluation batches
    /// (see [`Engine::take_eval_trace`]).
    trace_enabled: bool,
    /// Evaluation batches of the most recent recalculation, if tracing.
    trace: Vec<Vec<Cell>>,
    /// Span tracer for cell-level recalc phases, when the owning
    /// workbook is attached to an obs hub. Recording pushes a fixed-size
    /// record into a pre-allocated ring — no allocation on the hot path.
    tracer: Option<taco_obs::Tracer>,
    /// Recalculation profiler mode (default off).
    profile: ProfileMode,
}

impl Engine<FormulaGraph> {
    /// An engine using the full TACO compressed graph.
    pub fn with_taco() -> Self {
        Engine::new(FormulaGraph::taco())
    }

    /// An engine using the uncompressed NoComp graph.
    pub fn with_nocomp() -> Self {
        Engine::new(FormulaGraph::nocomp())
    }
}

impl<B: DependencyBackend> Engine<B> {
    /// Wraps a backend into an empty sheet.
    pub fn new(graph: B) -> Self {
        Engine {
            cells: HashMap::new(),
            graph,
            dirty: HashSet::new(),
            sheet_name: None,
            recalc: RecalcScratch::default(),
            clock: EvalClock::default(),
            evaluated_total: 0,
            trace_enabled: false,
            trace: Vec::new(),
            tracer: None,
            profile: ProfileMode::default(),
        }
    }

    /// Installs (or clears) the span tracer cell-level recalculation
    /// phases are recorded against.
    pub(crate) fn set_tracer(&mut self, tracer: Option<taco_obs::Tracer>) {
        self.tracer = tracer;
    }

    /// Sets the recalculation profiler mode. Takes effect on the next
    /// recalculation; `Off` costs nothing on the eval loop.
    pub fn set_profile(&mut self, mode: ProfileMode) {
        self.profile = mode;
    }

    /// The current profiler mode.
    pub fn profile(&self) -> ProfileMode {
        self.profile
    }

    /// The most recent recalculation's profile (empty when profiling was
    /// off for that pass). Hotspots come back hottest-first.
    pub fn profile_report(&self) -> ProfileReport {
        let mut hotspots = self.recalc.prof_top.clone();
        hotspots.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ProfileReport { levels: self.recalc.prof_levels.clone(), hotspots }
    }

    /// Raw profiler buffers (workbook metric export): per-level
    /// `(level, cells, ns)` rows and per-cell `(cell, ns)` hotspots.
    #[allow(clippy::type_complexity)]
    pub(crate) fn profile_slices(&self) -> (&[(u32, u32, u64)], &[(Cell, u64)]) {
        (&self.recalc.prof_levels, &self.recalc.prof_top)
    }

    /// Clears the profiler buffers (the workbook clears every sheet at
    /// recalc entry so skipped-clean sheets don't report stale data).
    pub(crate) fn profile_clear(&mut self) {
        self.recalc.prof_levels.clear();
        self.recalc.prof_top.clear();
    }

    /// The injected volatile-function clock.
    pub fn clock(&self) -> EvalClock {
        self.clock
    }

    /// Injects a new volatile-function clock and re-dirties every
    /// volatile formula (its dependents follow through the graph, exactly
    /// as if the formula had been edited). Returns the number of volatile
    /// formula cells found.
    pub fn set_clock(&mut self, clock: EvalClock) -> usize {
        self.clock = clock;
        let volatile = self.volatile_cells();
        for &c in &volatile {
            self.dirty.insert(c);
            self.mark_dependents_dirty(Range::cell(c));
        }
        volatile.len()
    }

    /// Stores the clock without any dirty marking (the workbook routes
    /// volatile dirtiness itself, across sheets).
    pub(crate) fn set_clock_value(&mut self, clock: EvalClock) {
        self.clock = clock;
    }

    /// Every formula cell calling a volatile function, sorted.
    pub(crate) fn volatile_cells(&self) -> Vec<Cell> {
        let mut v: Vec<Cell> = self
            .cells
            .iter()
            .filter(|(_, content)| content.formula().is_some_and(Formula::is_volatile))
            .map(|(&c, _)| c)
            .collect();
        v.sort_unstable();
        v
    }

    /// Total formula evaluations performed since the engine was created —
    /// the counter demand-driven recalculation is asserted against.
    pub fn evaluated_total(&self) -> u64 {
        self.evaluated_total
    }

    /// Enables or disables evaluation-order tracing (see
    /// [`Engine::take_eval_trace`]).
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.trace_enabled = on;
        if !on {
            self.trace = Vec::new();
        }
    }

    /// Takes the evaluation batches of the most recent recalculation
    /// (tracing must be enabled first). Cells within one batch were
    /// evaluated against the same pre-batch state — serial recalculation
    /// yields singleton batches in evaluation order, leveled
    /// recalculation one batch per level followed by singleton batches
    /// for the serial cycle fallback. The scheduler's level invariant is
    /// that every cell's dirty precedents sit in strictly earlier
    /// batches (cycle members excepted).
    pub fn take_eval_trace(&mut self) -> Vec<Vec<Cell>> {
        std::mem::take(&mut self.trace)
    }

    /// Names the sheet (workbook mounting).
    pub(crate) fn set_sheet_name(&mut self, name: String) {
        self.sheet_name = Some(name);
    }

    /// The sheet's name, when mounted in a workbook.
    pub fn sheet_name(&self) -> Option<&str> {
        self.sheet_name.as_deref()
    }

    /// `true` iff `q` resolves to this sheet: unqualified, or qualified
    /// with this sheet's own name.
    fn is_local_ref(&self, q: &QualifiedRef) -> bool {
        match &q.sheet {
            None => true,
            Some(s) => self.sheet_name.as_deref().is_some_and(|n| s.matches(n)),
        }
    }

    /// The underlying formula graph.
    pub fn graph(&self) -> &B {
        &self.graph
    }

    /// Mutable access to the formula graph (structural edits).
    pub(crate) fn graph_mut(&mut self) -> &mut B {
        &mut self.graph
    }

    /// Takes the whole cell store (structural edits rebuild it).
    pub(crate) fn take_cells(&mut self) -> HashMap<Cell, CellContent> {
        std::mem::take(&mut self.cells)
    }

    /// Reinserts one cell during a structural rebuild.
    pub(crate) fn put_cell(&mut self, cell: Cell, content: CellContent) {
        self.cells.insert(cell, content);
    }

    /// Marks every formula cell dirty (a conservative full-recalc request,
    /// e.g. after restoring from an untrusted image).
    pub fn mark_all_formulas_dirty(&mut self) {
        self.dirty = self
            .cells
            .iter()
            .filter(|(_, content)| content.formula().is_some())
            .map(|(&c, _)| c)
            .collect();
    }

    /// Current value of a cell (`Empty` when blank).
    pub fn value(&self, cell: Cell) -> Value {
        self.cells.get(&cell).map_or(Value::Empty, |c| c.value().clone())
    }

    /// The formula text of a cell, if it is a formula cell.
    pub fn formula_of(&self, cell: Cell) -> Option<String> {
        self.cells.get(&cell).and_then(|c| c.formula()).map(|f| f.src.clone())
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff the sheet has no content.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cells currently awaiting recalculation.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Iterates over every non-empty cell and its content, in no
    /// particular order (persistence and verification walks).
    pub fn cells(&self) -> impl Iterator<Item = (Cell, &CellContent)> {
        self.cells.iter().map(|(&c, content)| (c, content))
    }

    // ---- edits ---------------------------------------------------------

    /// Sets a pure value, returning the dependents receipt.
    pub fn set_value(&mut self, cell: Cell, v: Value) -> EditReceipt {
        self.detach_formula(cell);
        self.cells.insert(cell, CellContent::Pure(v));
        self.mark_dependents_dirty(Range::cell(cell))
    }

    /// Sets a formula (with or without leading `=`), parses it, updates the
    /// graph, and returns the dependents receipt.
    pub fn set_formula(&mut self, cell: Cell, src: &str) -> Result<EditReceipt, FormulaError> {
        let formula = Formula::parse(src)?;
        Ok(self.set_parsed_formula(cell, formula))
    }

    /// Sets an already-parsed formula. Only same-sheet references enter
    /// this sheet's graph; sheet-qualified ones are the workbook's to
    /// route (a standalone engine evaluates them to `#REF!`).
    pub fn set_parsed_formula(&mut self, cell: Cell, formula: Formula) -> EditReceipt {
        self.detach_formula(cell);
        for q in &formula.refs {
            if self.is_local_ref(q) {
                self.graph.add_dependency(&Dependency::from_ref(&q.rref, cell));
            }
        }
        self.cells.insert(cell, CellContent::Formula { formula, value: Value::Empty });
        self.dirty.insert(cell);
        self.mark_dependents_dirty(Range::cell(cell))
    }

    /// Clears every cell in `range` (values and formulae).
    pub fn clear_range(&mut self, range: Range) -> EditReceipt {
        self.graph.clear_cells(range);
        self.cells.retain(|c, _| !range.contains_cell(*c));
        self.dirty.retain(|c| !range.contains_cell(*c));
        self.mark_dependents_dirty(range)
    }

    /// Autofills the formula at `src` over `targets` (the tool that
    /// generates tabular locality). Fails if `src` has no formula.
    pub fn autofill(&mut self, src: Cell, targets: Range) -> Result<EditReceipt, CellError> {
        let formula =
            self.cells.get(&src).and_then(|c| c.formula()).cloned().ok_or(CellError::Value)?;
        let start = Instant::now();
        let mut dirty = Vec::new();
        for filled in autofill::autofill(src, &formula, targets) {
            let receipt = self.set_parsed_formula(filled.cell, filled.formula);
            dirty.extend(receipt.dirty);
        }
        Ok(EditReceipt { dirty, control_latency: start.elapsed() })
    }

    /// Removes the graph dependencies of a formula cell before overwriting.
    fn detach_formula(&mut self, cell: Cell) {
        if matches!(self.cells.get(&cell), Some(CellContent::Formula { .. })) {
            self.graph.clear_cells(Range::cell(cell));
        }
    }

    /// Queries the graph for dependents of `of` and marks the formula cells
    /// among them dirty. This is the control-latency critical path.
    fn mark_dependents_dirty(&mut self, of: Range) -> EditReceipt {
        let start = Instant::now();
        let dirty = self.graph.find_dependents(of);
        let control_latency = start.elapsed();
        self.mark_ranges_dirty(&dirty);
        EditReceipt { dirty, control_latency }
    }

    /// Marks the formula cells inside `ranges` dirty (workbook cross-sheet
    /// routing enters here).
    pub(crate) fn mark_ranges_dirty(&mut self, ranges: &[Range]) {
        for range in ranges {
            // Only existing formula cells need recalculation. Iterate the
            // smaller of (range cells, stored cells).
            if range.area() as usize <= self.cells.len() {
                for c in range.cells() {
                    if matches!(self.cells.get(&c), Some(CellContent::Formula { .. })) {
                        self.dirty.insert(c);
                    }
                }
            } else {
                let cells = &self.cells;
                self.dirty.extend(
                    cells
                        .iter()
                        .filter(|(c, content)| {
                            range.contains_cell(**c) && content.formula().is_some()
                        })
                        .map(|(&c, _)| c),
                );
            }
        }
    }

    /// Marks one formula cell dirty; returns `true` iff the cell holds a
    /// formula and was not already dirty.
    pub(crate) fn mark_cell_dirty(&mut self, cell: Cell) -> bool {
        matches!(self.cells.get(&cell), Some(CellContent::Formula { .. }))
            && self.dirty.insert(cell)
    }

    /// `true` iff `cell` is awaiting recalculation.
    pub(crate) fn is_cell_dirty(&self, cell: Cell) -> bool {
        self.dirty.contains(&cell)
    }

    /// Read access to the whole cell store (workbook import snapshots).
    pub(crate) fn cells_map(&self) -> &HashMap<Cell, CellContent> {
        &self.cells
    }

    /// The dirty set in sorted order (persistence: snapshots must encode
    /// a deterministic dirty list; the image owns the vector). The hot
    /// per-recalc sorted view reuses [`RecalcScratch::dirty_sorted`]
    /// instead of this allocating accessor.
    pub(crate) fn dirty_cells_sorted(&self) -> Vec<Cell> {
        let mut v: Vec<Cell> = self.dirty.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The parsed formula at `cell`, if any (workbook autofill).
    pub(crate) fn formula_at(&self, cell: Cell) -> Option<&Formula> {
        self.cells.get(&cell).and_then(CellContent::formula)
    }

    // ---- recalculation ----------------------------------------------------

    /// Re-evaluates all dirty formula cells in dependency order; cycles
    /// evaluate to `#CYCLE!`. Returns the number of cells evaluated.
    pub fn recalculate(&mut self) -> usize {
        self.recalculate_with(&NoExternal)
    }

    /// Cell-level parallel variant of [`Engine::recalculate`]: the dirty
    /// set is leveled and each level evaluated on `threads` scoped worker
    /// threads, with values bit-identical to the serial path. Returns
    /// the number of cells evaluated.
    pub fn recalculate_leveled(&mut self, threads: usize) -> usize {
        self.recalculate_leveled_with(&NoExternal, threads)
    }

    /// Recalculation with a view of other sheets' values (the workbook's
    /// per-level import snapshot). Fully deterministic: the evaluation
    /// order depends only on the dirty set and the local graph.
    pub(crate) fn recalculate_with<E: ExternalSheets>(&mut self, ext: &E) -> usize {
        self.topo_order_of_dirty();
        self.recalc.prof_levels.clear();
        self.recalc.prof_top.clear();
        let prof = self.profile;
        let pass_start = (prof != ProfileMode::Off).then(Instant::now);
        // Take the order buffer out so the loop can borrow `cells`
        // mutably; it goes back (capacity intact) afterwards.
        let order = std::mem::take(&mut self.recalc.order);
        let evaluated = order.len();
        self.trace.clear();
        for &cell in &order {
            let cell_start = (prof == ProfileMode::Hotspots).then(Instant::now);
            let value = match self.cells.get(&cell) {
                Some(CellContent::Formula { formula, .. }) => {
                    let vol = VolatileCtx::for_cell(self.clock, cell);
                    let view = SheetView {
                        cells: &self.cells,
                        own: self.sheet_name.as_deref(),
                        ext,
                        vol: Some(&vol),
                    };
                    eval(&formula.ast, &view)
                }
                _ => continue,
            };
            if let Some(start) = cell_start {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                push_hot(&mut self.recalc.prof_top, cell, ns);
            }
            if let Some(CellContent::Formula { value: slot, .. }) = self.cells.get_mut(&cell) {
                *slot = value;
            }
            if self.trace_enabled {
                self.trace.push(vec![cell]);
            }
        }
        if let Some(start) = pass_start {
            // The serial path has no levels; attribute the pass to one.
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recalc.prof_levels.push((0, evaluated as u32, ns));
        }
        self.recalc.order = order;
        self.dirty.clear();
        self.evaluated_total += evaluated as u64;
        evaluated
    }

    /// Cell-level parallel recalculation: levels the dirty set over the
    /// dirty-precedent relation (Kahn, on the reusable
    /// [`taco_core::Leveler`]), evaluates each level on `threads` scoped
    /// worker threads against the immutable pre-level state, and applies
    /// the staged values at the level barrier. Cells on or downstream of
    /// a cycle never level; they fall back to the serial DFS order after
    /// all levels, preserving the serial engine's cycle semantics.
    ///
    /// Values are bit-identical to [`Engine::recalculate`]: a level-`k`
    /// cell cannot read a same-level dirty cell (that read would force it
    /// into level `k+1`), leveled cells never read leftover cells (such a
    /// read would make them leftover too), and cycle members are flagged
    /// `#CYCLE!` before anything evaluates, exactly as in the serial
    /// path.
    pub(crate) fn recalculate_leveled_with<E: ExternalSheets>(
        &mut self,
        ext: &E,
        threads: usize,
    ) -> usize {
        // The DFS pass flags cycle members `#CYCLE!` and records the
        // serial order the leftover fallback replays.
        self.topo_order_of_dirty();
        let mut s = std::mem::take(&mut self.recalc);
        s.prof_levels.clear();
        s.prof_top.clear();
        let prof = self.profile;
        let mut leveler = std::mem::take(&mut s.leveler);
        leveler.run(s.dirty_sorted.len(), |i, out| {
            self.dirty_precedents_into(s.dirty_sorted[i as usize], &s.dirty_sorted, out);
        });

        self.trace.clear();
        let workers = threads.max(1);
        for k in 0..leveler.num_levels() {
            let level = leveler.level(k);
            let timing = (self.tracer.is_some() || prof != ProfileMode::Off).then(|| {
                (
                    Instant::now(),
                    self.tracer.as_ref().map_or(0, taco_obs::Tracer::now_ns),
                    level.len(),
                )
            });
            s.staged.clear();
            s.staged
                .extend(level.iter().map(|&i| (s.dirty_sorted[i as usize], Value::Empty, 0u64)));
            if workers == 1 || level.len() == 1 {
                for (cell, slot, ns) in &mut s.staged {
                    let cell_start = (prof == ProfileMode::Hotspots).then(Instant::now);
                    *slot = self.eval_cell(*cell, ext);
                    if let Some(start) = cell_start {
                        *ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    }
                }
            } else {
                let per = s.staged.len().div_ceil(workers);
                let cells = &self.cells;
                let own = self.sheet_name.as_deref();
                let clock = self.clock;
                crossbeam::thread::scope(|scope| {
                    for chunk in s.staged.chunks_mut(per) {
                        scope.spawn(move |_| {
                            for (cell, slot, ns) in chunk {
                                let cell_start = (prof == ProfileMode::Hotspots).then(Instant::now);
                                if let Some(CellContent::Formula { formula, .. }) = cells.get(cell)
                                {
                                    let vol = VolatileCtx::for_cell(clock, *cell);
                                    let view = SheetView { cells, own, ext, vol: Some(&vol) };
                                    *slot = eval(&formula.ast, &view);
                                }
                                if let Some(start) = cell_start {
                                    *ns = u64::try_from(start.elapsed().as_nanos())
                                        .unwrap_or(u64::MAX);
                                }
                            }
                        });
                    }
                })
                .expect("level workers panicked");
            }
            // The barrier: publish the level's values all at once.
            if self.trace_enabled {
                self.trace.push(s.staged.iter().map(|(c, _, _)| *c).collect());
            }
            for (cell, value, ns) in s.staged.drain(..) {
                if let Some(CellContent::Formula { value: slot, .. }) = self.cells.get_mut(&cell) {
                    *slot = value;
                }
                if prof == ProfileMode::Hotspots {
                    push_hot(&mut s.prof_top, cell, ns);
                }
            }
            if let Some((start, start_ns, width)) = timing {
                let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if prof != ProfileMode::Off {
                    s.prof_levels.push((k as u32, width as u32, dur));
                }
                if let Some(t) = self.tracer.as_ref() {
                    t.record(
                        "engine.level",
                        taco_obs::SpanCat::CellLevel,
                        start_ns,
                        dur,
                        k as u64,
                        width as u64,
                    );
                }
            }
        }

        // Serial fallback for cycle-tainted cells, in the DFS order the
        // serial path would have used.
        if !leveler.leftover().is_empty() {
            let order = std::mem::take(&mut s.order);
            for &cell in &order {
                let i = s.dirty_sorted.binary_search(&cell).expect("order ⊆ dirty") as u32;
                if leveler.level_of(i).is_some() {
                    continue;
                }
                let cell_start = (prof == ProfileMode::Hotspots).then(Instant::now);
                let value = self.eval_cell(cell, ext);
                if let Some(CellContent::Formula { value: slot, .. }) = self.cells.get_mut(&cell) {
                    *slot = value;
                }
                if let Some(start) = cell_start {
                    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    push_hot(&mut s.prof_top, cell, ns);
                }
                if self.trace_enabled {
                    self.trace.push(vec![cell]);
                }
            }
            s.order = order;
        }

        let evaluated = s.dirty_sorted.len();
        s.leveler = leveler;
        self.recalc = s;
        self.dirty.clear();
        self.evaluated_total += evaluated as u64;
        evaluated
    }

    /// Evaluates one formula cell against the current store (no write).
    fn eval_cell<E: ExternalSheets>(&self, cell: Cell, ext: &E) -> Value {
        match self.cells.get(&cell) {
            Some(CellContent::Formula { formula, .. }) => {
                let vol = VolatileCtx::for_cell(self.clock, cell);
                let view = SheetView {
                    cells: &self.cells,
                    own: self.sheet_name.as_deref(),
                    ext,
                    vol: Some(&vol),
                };
                eval(&formula.ast, &view)
            }
            _ => Value::Empty,
        }
    }

    /// Number of levels the most recent leveled recalculation built
    /// (bench instrumentation).
    pub fn levels_built(&self) -> usize {
        self.recalc.leveler.num_levels()
    }

    /// Restricts the dirty set to `keep ∩ dirty`, returning the removed
    /// cells so a demand-driven recalculation can restore them afterwards.
    pub(crate) fn restrict_dirty(&mut self, keep: &HashSet<Cell>) -> Vec<Cell> {
        let removed: Vec<Cell> = self.dirty.iter().copied().filter(|c| !keep.contains(c)).collect();
        for c in &removed {
            self.dirty.remove(c);
        }
        removed
    }

    /// Re-inserts cells into the dirty set (the deferred remainder of a
    /// demand-driven recalculation).
    pub(crate) fn restore_dirty(&mut self, cells: &[Cell]) {
        self.dirty.extend(cells.iter().copied());
    }

    /// Topologically orders the dirty formula cells (into
    /// `self.recalc.order`) so precedents evaluate before dependents
    /// (iterative DFS; members of cycles get `#CYCLE!` immediately).
    ///
    /// Runs entirely on the reusable [`RecalcScratch`] buffers: the dirty
    /// set becomes a sorted vec (deterministic regardless of hash seeds,
    /// and binary-searchable by `dirty_precedents_into`), colors live in
    /// a parallel `Vec<u8>`, and per-cell neighbor lists share one arena
    /// sliced per DFS frame — zero steady-state allocations.
    fn topo_order_of_dirty(&mut self) {
        let mut s = std::mem::take(&mut self.recalc);
        s.dirty_sorted.clear();
        s.dirty_sorted.extend(self.dirty.iter().copied());
        s.dirty_sorted.sort_unstable();
        let n = s.dirty_sorted.len();
        s.color.clear();
        s.color.resize(n, WHITE);
        s.order.clear();
        s.cycles.clear();
        s.nbrs.clear();
        s.stack.clear();

        for root in 0..n {
            if s.color[root] != WHITE {
                continue;
            }
            s.color[root] = GRAY;
            let start = s.nbrs.len() as u32;
            self.dirty_precedents_into(s.dirty_sorted[root], &s.dirty_sorted, &mut s.nbrs);
            let end = s.nbrs.len() as u32;
            s.stack.push(Frame { node: root as u32, start, cursor: start, end });
            while let Some(&Frame { node, start, cursor, end }) = s.stack.last() {
                if cursor < end {
                    s.stack.last_mut().expect("frame just read").cursor += 1;
                    let next = s.nbrs[cursor as usize] as usize;
                    match s.color[next] {
                        WHITE => {
                            s.color[next] = GRAY;
                            let cstart = s.nbrs.len() as u32;
                            self.dirty_precedents_into(
                                s.dirty_sorted[next],
                                &s.dirty_sorted,
                                &mut s.nbrs,
                            );
                            let cend = s.nbrs.len() as u32;
                            s.stack.push(Frame {
                                node: next as u32,
                                start: cstart,
                                cursor: cstart,
                                end: cend,
                            });
                        }
                        // Back edge: cycle.
                        GRAY => s.cycles.push(s.dirty_sorted[next]),
                        _ => {}
                    }
                } else {
                    s.color[node as usize] = BLACK;
                    s.order.push(s.dirty_sorted[node as usize]);
                    s.nbrs.truncate(start as usize);
                    s.stack.pop();
                }
            }
        }

        for i in 0..s.cycles.len() {
            let c = s.cycles[i];
            if let Some(CellContent::Formula { value, .. }) = self.cells.get_mut(&c) {
                *value = Value::Error(CellError::Cycle);
            }
        }
        self.recalc = s;
    }

    /// Pushes the `dirty_sorted` indices of the dirty formula cells that
    /// `cell`'s formula references. Only same-sheet references matter
    /// here: cross-sheet ordering is the workbook scheduler's job (sheets
    /// evaluate level by level).
    ///
    /// `dirty` is sorted by `(col, row)`, so every referenced column is
    /// one contiguous run located by binary search — a tall range costs
    /// `O(width · log n)` instead of the old per-cell scan over the whole
    /// range (or the whole dirty set). When the range is wider than the
    /// dirty set, one scan over the column-bounded slice wins instead.
    pub(crate) fn dirty_precedents_into(&self, cell: Cell, dirty: &[Cell], out: &mut Vec<u32>) {
        let Some(CellContent::Formula { formula, .. }) = self.cells.get(&cell) else {
            return;
        };
        for q in &formula.refs {
            if !self.is_local_ref(q) {
                continue;
            }
            let range = q.range();
            let (c1, c2) = (range.head().col, range.tail().col);
            let (r1, r2) = (range.head().row, range.tail().row);
            let width = u64::from(c2 - c1) + 1;
            if width <= dirty.len() as u64 {
                for col in c1..=c2 {
                    let lo = dirty.partition_point(|c| (c.col, c.row) < (col, r1));
                    for (i, c) in dirty[lo..].iter().enumerate() {
                        if c.col != col || c.row > r2 {
                            break;
                        }
                        if *c != cell {
                            out.push((lo + i) as u32);
                        }
                    }
                }
            } else {
                let lo = dirty.partition_point(|c| c.col < c1);
                for (i, c) in dirty[lo..].iter().enumerate() {
                    if c.col > c2 {
                        break;
                    }
                    if c.row >= r1 && c.row <= r2 && *c != cell {
                        out.push((lo + i) as u32);
                    }
                }
            }
        }
    }

    // ---- passthrough graph queries ----------------------------------------

    /// Dependents of `r` per the formula graph.
    pub fn find_dependents(&mut self, r: Range) -> Vec<Range> {
        self.graph.find_dependents(r)
    }

    /// Precedents of `r` per the formula graph.
    pub fn find_precedents(&mut self, r: Range) -> Vec<Range> {
        self.graph.find_precedents(r)
    }
}

/// Read-only evaluator view over the cell store, plus the external-sheet
/// window used for `Sheet2!A1`-style reads and the volatile-function
/// context of the cell being evaluated.
struct SheetView<'a, E: ExternalSheets> {
    cells: &'a HashMap<Cell, CellContent>,
    own: Option<&'a str>,
    ext: &'a E,
    vol: Option<&'a VolatileCtx>,
}

impl<E: ExternalSheets> CellProvider for SheetView<'_, E> {
    fn value(&self, cell: Cell) -> Value {
        self.cells.get(&cell).map_or(Value::Empty, |c| c.value().clone())
    }

    fn sheet_value(&self, sheet: &str, cell: Cell) -> Value {
        // A self-qualified reference (`Sheet1!A1` inside `Sheet1`) reads
        // locally; everything else goes through the external window.
        if self.own.is_some_and(|n| n.eq_ignore_ascii_case(sheet)) {
            self.value(cell)
        } else {
            self.ext.value(sheet, cell)
        }
    }

    fn volatile(&self) -> Option<&VolatileCtx> {
        self.vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn n(v: f64) -> Value {
        Value::Number(v)
    }

    #[test]
    fn values_and_formulas_evaluate() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(2.0));
        e.set_value(c("A2"), n(3.0));
        e.set_formula(c("B1"), "=A1+A2").unwrap();
        e.recalculate();
        assert_eq!(e.value(c("B1")), n(5.0));
    }

    #[test]
    fn update_propagates_through_chain() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(1.0));
        for row in 2..=20u32 {
            e.set_formula(Cell::new(1, row), &format!("=A{}+1", row - 1)).unwrap();
        }
        e.recalculate();
        assert_eq!(e.value(c("A20")), n(20.0));

        // Update the head: all downstream cells must go dirty and refresh.
        let receipt = e.set_value(c("A1"), n(100.0));
        assert_eq!(receipt.dirty.iter().map(Range::area).sum::<u64>(), 19);
        assert_eq!(e.dirty_count(), 19);
        e.recalculate();
        assert_eq!(e.value(c("A20")), n(119.0));
    }

    #[test]
    fn cumulative_sum_via_autofill() {
        let mut e = Engine::with_taco();
        for row in 1..=10u32 {
            e.set_value(Cell::new(1, row), n(f64::from(row)));
        }
        // B1 = SUM($A$1:A1), autofill down: FR expanding windows.
        e.set_formula(c("B1"), "=SUM($A$1:A1)").unwrap();
        e.autofill(c("B1"), r("B2:B10")).unwrap();
        e.recalculate();
        assert_eq!(e.value(c("B10")), n(55.0));
        assert_eq!(e.value(c("B5")), n(15.0));
        // The graph compressed the fill into few edges.
        assert!(e.graph().num_edges() <= 2, "got {}", e.graph().num_edges());
    }

    #[test]
    fn fig2_if_chain_recalculates() {
        let mut e = Engine::with_taco();
        // Column A: group ids; column M: amounts; column N: running
        // group-subtotals, exactly the Fig. 2 shape.
        let groups = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0];
        for (i, g) in groups.iter().enumerate() {
            let row = i as u32 + 2;
            e.set_value(Cell::new(1, row), n(*g));
            e.set_value(Cell::new(13, row), n(10.0));
        }
        e.set_formula(c("N2"), "=M2").unwrap();
        e.set_formula(c("N3"), "=IF(A3=A2,N2+M3,M3)").unwrap();
        e.autofill(c("N3"), r("N4:N7")).unwrap();
        e.recalculate();
        // Group 1 rows 2-4 accumulate 10,20,30; group 2 resets.
        assert_eq!(e.value(c("N4")), n(30.0));
        assert_eq!(e.value(c("N5")), n(10.0));
        assert_eq!(e.value(c("N6")), n(20.0));
        assert_eq!(e.value(c("N7")), n(10.0));
    }

    #[test]
    fn clear_range_detaches_dependencies() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(1.0));
        e.set_formula(c("B1"), "=A1*2").unwrap();
        e.recalculate();
        assert_eq!(e.value(c("B1")), n(2.0));
        e.clear_range(r("B1"));
        assert_eq!(e.value(c("B1")), Value::Empty);
        // A1 edits no longer dirty anything.
        let receipt = e.set_value(c("A1"), n(9.0));
        assert!(receipt.dirty.is_empty());
    }

    #[test]
    fn overwrite_formula_updates_graph() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(1.0));
        e.set_value(c("A2"), n(2.0));
        e.set_formula(c("B1"), "=A1").unwrap();
        e.set_formula(c("B1"), "=A2").unwrap();
        e.recalculate();
        assert_eq!(e.value(c("B1")), n(2.0));
        assert!(e.set_value(c("A1"), n(5.0)).dirty.is_empty());
        assert_eq!(e.set_value(c("A2"), n(5.0)).dirty.iter().map(Range::area).sum::<u64>(), 1);
    }

    #[test]
    fn cycles_become_cycle_errors() {
        let mut e = Engine::with_taco();
        e.set_formula(c("A1"), "=B1+1").unwrap();
        e.set_formula(c("B1"), "=A1+1").unwrap();
        e.recalculate();
        assert!(
            e.value(c("A1")) == Value::Error(CellError::Cycle)
                || e.value(c("B1")) == Value::Error(CellError::Cycle),
            "at least one cycle member must be flagged"
        );
    }

    #[test]
    fn taco_and_nocomp_engines_agree() {
        let build = |mut e: Engine<FormulaGraph>| {
            for row in 1..=30u32 {
                e.set_value(Cell::new(1, row), n(f64::from(row)));
            }
            e.set_formula(c("B1"), "=A1*2").unwrap();
            e.autofill(c("B1"), r("B2:B30")).unwrap();
            e.set_formula(c("C1"), "=SUM(B1:B30)").unwrap();
            e.recalculate();
            e
        };
        let taco = build(Engine::with_taco());
        let nocomp = build(Engine::with_nocomp());
        assert_eq!(taco.value(c("C1")), nocomp.value(c("C1")));
        assert_eq!(taco.value(c("C1")), n(2.0 * (30.0 * 31.0 / 2.0)));
        assert!(taco.graph().num_edges() < nocomp.graph().num_edges());
    }

    #[test]
    fn vlookup_sheet() {
        let mut e = Engine::with_taco();
        // Rate table in F1:G3.
        for (i, (k, v)) in [(1.0, 0.1), (2.0, 0.2), (3.0, 0.3)].iter().enumerate() {
            e.set_value(Cell::new(6, i as u32 + 1), n(*k));
            e.set_value(Cell::new(7, i as u32 + 1), n(*v));
        }
        for row in 1..=5u32 {
            e.set_value(Cell::new(1, row), n(f64::from(row % 3 + 1)));
            e.set_formula(Cell::new(2, row), &format!("=VLOOKUP(A{row},$F$1:$G$3,2,FALSE)"))
                .unwrap();
        }
        e.recalculate();
        assert_eq!(e.value(c("B1")), n(0.2));
        assert_eq!(e.value(c("B2")), n(0.3));
        assert_eq!(e.value(c("B3")), n(0.1));
        // The five FF lookups compress well: 5 deps over the table + 5 on
        // column A.
        assert!(e.graph().num_edges() <= 4, "got {}", e.graph().num_edges());
    }

    #[test]
    fn receipt_reports_latency() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(1.0));
        e.set_formula(c("B1"), "=A1").unwrap();
        let receipt = e.set_value(c("A1"), n(2.0));
        assert_eq!(receipt.dirty.len(), 1);
        // Latency is measured (may be ~0 on fast machines, just present).
        let _ = receipt.control_latency;
    }
}
