//! Engine-level structural edits: moving cell contents, rewriting formula
//! references, and updating the formula graph together.

use crate::engine::{EditReceipt, Engine};
use crate::sheet::CellContent;
use std::collections::HashSet;
use std::time::Instant;
use taco_core::{FormulaGraph, StructuralOp};
use taco_formula::Formula;
use taco_grid::a1::{CellRef, QualifiedRef, RangeRef};
use taco_grid::Range;

/// Rewrites one formula reference under a structural edit of the sheet
/// named `own`, preserving its `$` flags; `None` becomes `#REF!` in the
/// formula. Local and *self-qualified* references (`Data!A1` inside
/// `Data`) share this sheet's geometry and remap; qualified references to
/// other sheets pass through unchanged.
fn map_ref(op: StructuralOp, own: Option<&str>, q: &QualifiedRef) -> Option<QualifiedRef> {
    if let Some(sheet) = &q.sheet {
        if !own.is_some_and(|n| sheet.matches(n)) {
            return Some(q.clone());
        }
    }
    let r = &q.rref;
    let nr = op.map_range(r.range())?;
    Some(QualifiedRef {
        sheet: q.sheet.clone(),
        rref: RangeRef {
            head: CellRef { cell: nr.head(), ..r.head },
            tail: CellRef { cell: nr.tail(), ..r.tail },
        },
    })
}

impl Engine<FormulaGraph> {
    /// Inserts `n` rows before row `at`: contents shift, formula references
    /// stretch/shift per Excel semantics, the graph updates incrementally.
    pub fn insert_rows(&mut self, at: u32, n: u32) -> EditReceipt {
        self.apply_structural(StructuralOp::InsertRows { at, n })
    }

    /// Deletes the rows `[at, at + n)`; formulae referencing only deleted
    /// cells become `#REF!` errors.
    pub fn delete_rows(&mut self, at: u32, n: u32) -> EditReceipt {
        self.apply_structural(StructuralOp::DeleteRows { at, n })
    }

    /// Inserts `n` columns before column `at`.
    pub fn insert_cols(&mut self, at: u32, n: u32) -> EditReceipt {
        self.apply_structural(StructuralOp::InsertCols { at, n })
    }

    /// Deletes the columns `[at, at + n)`.
    pub fn delete_cols(&mut self, at: u32, n: u32) -> EditReceipt {
        self.apply_structural(StructuralOp::DeleteCols { at, n })
    }

    /// Applies a structural edit to sheet + graph and dirties only what
    /// the edit can actually change.
    ///
    /// A formula whose rewritten AST equals the old one has every
    /// reference entirely on the untouched side of the edited band, so the
    /// cells it reads neither moved nor changed — its cached value stays
    /// valid even if the formula itself shifted. Only formulas whose AST
    /// was rewritten (plus their transitive dependents, via the normal
    /// dirty routing) recalculate; previously-dirty cells stay dirty at
    /// their mapped positions. Identity rewrites also keep the user's
    /// original source text.
    pub fn apply_structural(&mut self, op: StructuralOp) -> EditReceipt {
        let start = Instant::now();
        let own = self.sheet_name().map(str::to_string);
        self.graph_mut().apply_structural(op);
        let old = self.take_cells();
        let old_dirty = self.restrict_dirty(&HashSet::new());
        let mut changed = Vec::new();
        for (cell, content) in old {
            let Some(nc) = op.map_cell(cell) else { continue };
            let content = match content {
                CellContent::Pure(v) => CellContent::Pure(v),
                CellContent::Formula { formula, value } => {
                    let ast = formula.ast.map_refs(&mut |r| map_ref(op, own.as_deref(), r));
                    if ast == formula.ast {
                        CellContent::Formula { formula, value }
                    } else {
                        changed.push(nc);
                        let refs = ast.collect_refs();
                        CellContent::Formula {
                            formula: Formula { src: ast.to_string(), ast, refs },
                            value,
                        }
                    }
                }
            };
            self.put_cell(nc, content);
        }
        for cell in old_dirty {
            if let Some(nc) = op.map_cell(cell) {
                self.mark_cell_dirty(nc);
            }
        }
        let mut dirty = Vec::with_capacity(changed.len());
        for nc in changed {
            self.mark_cell_dirty(nc);
            let dependents = self.graph_mut().find_dependents(Range::cell(nc));
            self.mark_ranges_dirty(&dependents);
            dirty.push(Range::cell(nc));
            dirty.extend(dependents);
        }
        EditReceipt { dirty, control_latency: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use crate::Engine;
    use taco_formula::{CellError, Value};
    use taco_grid::{Cell, Range};

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn n(v: f64) -> Value {
        Value::Number(v)
    }

    /// A cumulative-total sheet used by several tests.
    fn cumulative_sheet(rows: u32) -> Engine {
        let mut e = Engine::with_taco();
        for row in 1..=rows {
            e.set_value(Cell::new(1, row), n(1.0));
        }
        e.set_formula(c("B1"), "=SUM($A$1:A1)").unwrap();
        e.autofill(c("B1"), Range::from_coords(2, 2, 2, rows)).unwrap();
        e.recalculate();
        e
    }

    #[test]
    fn insert_rows_shifts_values_and_formulas() {
        let mut e = cumulative_sheet(10);
        assert_eq!(e.value(c("B10")), n(10.0));
        e.insert_rows(5, 2);
        e.recalculate();
        // Row 10's content moved to row 12; the inserted rows are blank so
        // the totals are unchanged.
        assert_eq!(e.value(c("B12")), n(10.0));
        assert_eq!(e.value(c("B5")), Value::Empty);
        // The formula at the moved cell references the stretched range.
        assert_eq!(e.formula_of(c("B12")).unwrap(), "SUM($A$1:A12)");
        // Filling one inserted row updates downstream totals.
        e.set_value(c("A5"), n(100.0));
        e.recalculate();
        assert_eq!(e.value(c("B12")), n(110.0));
    }

    #[test]
    fn delete_rows_shrinks_references() {
        let mut e = cumulative_sheet(10);
        e.delete_rows(3, 2); // drop rows 3-4 (two of the 1.0 inputs)
        e.recalculate();
        assert_eq!(e.value(c("B8")), n(8.0)); // old B10: 10 − 2 inputs
        assert_eq!(e.formula_of(c("B8")).unwrap(), "SUM($A$1:A8)");
    }

    #[test]
    fn delete_referenced_cells_yields_ref_error() {
        let mut e = Engine::with_taco();
        e.set_value(c("A5"), n(7.0));
        e.set_formula(c("C1"), "=A5*2").unwrap();
        e.recalculate();
        assert_eq!(e.value(c("C1")), n(14.0));
        e.delete_rows(5, 1);
        e.recalculate();
        assert_eq!(e.formula_of(c("C1")).unwrap(), "#REF!*2");
        assert_eq!(e.value(c("C1")), Value::Error(CellError::Ref));
        // The graph no longer reports any precedents for C1.
        assert!(e.find_precedents(r("C1")).is_empty());
    }

    #[test]
    fn insert_cols_shifts_column_references() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(3.0));
        e.set_formula(c("B1"), "=A1*10").unwrap();
        e.recalculate();
        e.insert_cols(2, 2); // push B to D
        e.recalculate();
        assert_eq!(e.value(c("D1")), n(30.0));
        assert_eq!(e.formula_of(c("D1")).unwrap(), "A1*10");
        // Changing A1 still propagates through the shifted graph.
        e.set_value(c("A1"), n(5.0));
        e.recalculate();
        assert_eq!(e.value(c("D1")), n(50.0));
    }

    #[test]
    fn structural_edit_matches_fresh_build() {
        // Inserting rows then recalculating must equal a sheet built in the
        // final layout from scratch.
        let mut edited = cumulative_sheet(8);
        edited.insert_rows(4, 3);
        edited.recalculate();

        let mut fresh = Engine::with_taco();
        for row in 1..=11u32 {
            if !(4..7).contains(&row) {
                fresh.set_value(Cell::new(1, row), n(1.0));
            }
        }
        for row in 1..=11u32 {
            if !(4..7).contains(&row) {
                fresh.set_formula(Cell::new(2, row), &format!("=SUM($A$1:A{row})")).unwrap();
            }
        }
        fresh.recalculate();
        for row in 1..=11u32 {
            let cell = Cell::new(2, row);
            assert_eq!(edited.value(cell), fresh.value(cell), "row {row}");
        }
    }

    #[test]
    fn structural_edit_dirties_only_affected_formulas() {
        // 10 cumulative formulas, all clean. Inserting rows *below* every
        // reference and every formula is a rigid no-op: zero cells dirty
        // (the old behavior re-dirtied all 10).
        let mut e = cumulative_sheet(10);
        assert_eq!(e.dirty_count(), 0);
        let receipt = e.insert_rows(20, 5);
        assert_eq!(e.dirty_count(), 0, "rigid shift below all content dirties nothing");
        assert!(receipt.dirty.is_empty());

        // Inserting in the middle: B1..B5 reference only $A$1:A{row} above
        // the band and keep their cached values; B6..B10 (now B11..B15)
        // stretch and must recalculate.
        let receipt = e.insert_rows(6, 5);
        assert_eq!(e.dirty_count(), 5, "only the formulas whose references changed recalc");
        assert!(!receipt.dirty.is_empty());
        assert_eq!(e.value(c("B5")), n(5.0), "unchanged formulas keep their cached value");
        e.recalculate();
        assert_eq!(e.value(c("B15")), n(10.0));
    }

    #[test]
    fn dirty_cells_survive_at_mapped_positions() {
        let mut e = Engine::with_taco();
        for row in 1..=3u32 {
            e.set_value(Cell::new(1, row), n(f64::from(row)));
            e.set_formula(Cell::new(3, row + 9), &format!("=A{row}*2")).unwrap();
        }
        e.recalculate();
        e.set_value(c("A2"), n(9.0)); // dirties C11 only
        assert_eq!(e.dirty_count(), 1);
        // Insert between the referenced block and the formulas: every
        // reference stays above the band (identity rewrite), but the
        // pending recalculation must move with its cell (C11 → C14).
        e.insert_rows(5, 3);
        assert_eq!(e.dirty_count(), 1);
        e.recalculate();
        assert_eq!(e.value(c("C14")), n(18.0));
    }

    #[test]
    fn identity_rewrite_keeps_original_source_text() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(2.0));
        // Unidiomatic but user-written spelling that `ast.to_string()`
        // would normalize away.
        e.set_formula(c("B2"), "=(A1 + 1)").unwrap();
        e.recalculate();
        e.insert_rows(5, 2); // below everything: identity rewrite
        assert_eq!(e.formula_of(c("B2")).unwrap(), "(A1 + 1)");
        e.delete_rows(1, 1); // the referenced row dies: source is rewritten
        assert_eq!(e.formula_of(c("B1")).unwrap(), "#REF!+1");
    }

    #[test]
    fn self_qualified_references_remap_with_the_sheet() {
        let mut e = Engine::with_taco();
        e.set_sheet_name("Data".to_string());
        e.set_value(c("A5"), n(7.0));
        e.set_formula(c("C1"), "=Data!A5*2").unwrap();
        e.recalculate();
        assert_eq!(e.value(c("C1")), n(14.0));
        e.insert_rows(3, 2);
        assert_eq!(e.formula_of(c("C1")).unwrap(), "Data!A7*2");
        e.recalculate();
        assert_eq!(e.value(c("C1")), n(14.0));
        // Deleting the qualified target yields #REF! like a local ref.
        e.delete_rows(7, 1);
        e.recalculate();
        assert_eq!(e.formula_of(c("C1")).unwrap(), "#REF!*2");
        assert_eq!(e.value(c("C1")), Value::Error(CellError::Ref));
    }

    #[test]
    fn graph_stays_compressed_after_rigid_shift() {
        let mut e = cumulative_sheet(50);
        let before = e.graph().num_edges();
        e.insert_rows(60, 5); // below everything: rigid no-op
        assert_eq!(e.graph().num_edges(), before);
        e.insert_rows(1, 5); // above everything: rigid shift
        assert_eq!(e.graph().num_edges(), before);
        e.recalculate();
        assert_eq!(e.value(c("B55")), n(50.0));
    }
}
