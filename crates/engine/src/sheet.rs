use taco_formula::{Formula, Value};

/// What a cell holds: a pure value, or a formula plus its last evaluated
/// value (the paper's "pure value" vs "formula cell / evaluated value").
#[derive(Debug, Clone, PartialEq)]
pub enum CellContent {
    /// A pure (typed constant) value.
    Pure(Value),
    /// A formula and the result of its most recent evaluation.
    Formula {
        /// The parsed formula.
        formula: Formula,
        /// Last evaluated result (`Value::Empty` before first evaluation).
        value: Value,
    },
}

impl CellContent {
    /// The current user-visible value of the cell.
    pub fn value(&self) -> &Value {
        match self {
            CellContent::Pure(v) => v,
            CellContent::Formula { value, .. } => value,
        }
    }

    /// The formula, if this is a formula cell.
    pub fn formula(&self) -> Option<&Formula> {
        match self {
            CellContent::Pure(_) => None,
            CellContent::Formula { formula, .. } => Some(formula),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = CellContent::Pure(Value::Number(4.0));
        assert_eq!(p.value(), &Value::Number(4.0));
        assert!(p.formula().is_none());

        let f =
            CellContent::Formula { formula: Formula::parse("=A1+1").unwrap(), value: Value::Empty };
        assert_eq!(f.value(), &Value::Empty);
        assert_eq!(f.formula().unwrap().src, "A1+1");
    }
}
