//! Workbook persistence: snapshots, WAL-backed editing, and autosave.
//!
//! The division of labour with [`taco_store`]:
//!
//! - `taco_store` owns the bytes — codecs, the sectioned container, the
//!   WAL framing — and works on plain [`WorkbookImage`] data;
//! - this module converts live [`Workbook`]s to and from images
//!   ([`Workbook::save`] / [`Workbook::open`]), applies replayed
//!   [`EditRecord`]s through the normal edit paths (so dirty routing and
//!   cross-edge maintenance behave exactly as they did live), and owns
//!   the autosave policy: [`PersistentWorkbook`] appends every edit to
//!   the sidecar WAL, fsyncs at configurable points, and folds the log
//!   back into a fresh snapshot once it crosses the compaction
//!   threshold.
//!
//! What is stored vs derived: cell contents (formula *source* text plus
//! the cached value), the dirty sets, the compressed graph edges, and
//! the cross-sheet edge table are stored; formula ASTs are re-parsed and
//! the graph's R-tree indexes are rebuilt on open — no recompression
//! ever happens on the open path.

use crate::engine::Engine;
use crate::sheet::CellContent;
use crate::workbook::{CrossEdge, SheetId, Workbook};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use taco_core::FormulaGraph;
use taco_formula::Formula;
use taco_store::{
    std_vfs, write_workbook_file, write_workbook_file_with, CellRecord, CrossEdgeImage, EditRecord,
    ReplayMode, SheetImage, StoreError, StoreReader, Vfs, WalReader, WalWriter, WorkbookImage,
};

/// The sidecar WAL path for a snapshot at `path`: `<path>.wal`.
pub fn wal_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// Captures one engine as a sheet image named `name` — the single
/// conversion point between live cell contents and persistent records,
/// shared by [`Workbook::to_image`] and [`save_engine`].
fn sheet_image(engine: &Engine<FormulaGraph>, name: String) -> SheetImage {
    let mut cells: Vec<_> = engine
        .cells()
        .map(|(cell, content)| {
            let rec = match content {
                CellContent::Pure(v) => CellRecord::Pure(v.clone()),
                CellContent::Formula { formula, value } => {
                    CellRecord::Formula { src: formula.src.clone(), value: value.clone() }
                }
            };
            (cell, rec)
        })
        .collect();
    cells.sort_by_key(|(c, _)| *c);
    SheetImage { name, cells, dirty: engine.dirty_cells_sorted(), graph: engine.graph().snapshot() }
}

impl Workbook<FormulaGraph> {
    /// Captures the workbook as a plain-data image (see the module docs
    /// for what is stored vs derived).
    pub fn to_image(&self) -> WorkbookImage {
        let sheets = (0..self.sheet_count())
            .map(|i| {
                let id = SheetId(i);
                sheet_image(self.sheet(id), self.sheet_name(id).to_string())
            })
            .collect();
        let mut cross: Vec<CrossEdgeImage> = self
            .cross_edges()
            .map(|e| CrossEdgeImage {
                src: e.src.0 as u32,
                prec: e.prec,
                dst: e.dst.0 as u32,
                dep: e.dep,
            })
            .collect();
        // Canonical cross-table order: the live table's row order
        // reflects edit history, which must not leak into the image —
        // equal workbooks encode to equal bytes.
        cross.sort_unstable_by_key(|e| (e.src, e.dst, e.dep, e.prec.head(), e.prec.tail()));
        // Image epoch 0: the persistence owner (`save`, compaction)
        // stamps the real replay epoch before the image hits the disk.
        WorkbookImage { sheets, cross, epoch: 0 }
    }

    /// Reconstructs a workbook from an image: graphs are restored without
    /// recompression, formula sources re-parsed, dirty sets re-marked,
    /// and the cross-edge table re-inserted verbatim.
    pub fn from_image(image: WorkbookImage) -> Result<Self, StoreError> {
        let n = image.sheets.len();
        let mut wb = Workbook::new();
        for sheet in image.sheets {
            let graph = FormulaGraph::restore(sheet.graph);
            // `add_sheet_unbound`: the image already carries the cross
            // edges and dirty sets — the live rebind pass would duplicate
            // both for formulae that forward-referenced a later sheet.
            let id = wb
                .add_sheet_unbound(&sheet.name, graph)
                .map_err(|e| StoreError::InvalidRecord(e.to_string()))?;
            let engine = wb.engine_mut(id.index());
            for (cell, rec) in sheet.cells {
                let content = match rec {
                    CellRecord::Pure(v) => CellContent::Pure(v),
                    CellRecord::Formula { src, value } => CellContent::Formula {
                        formula: Formula::parse(&src)
                            .map_err(|e| StoreError::InvalidRecord(e.to_string()))?,
                        value,
                    },
                };
                engine.put_cell(cell, content);
            }
            for cell in sheet.dirty {
                engine.mark_cell_dirty(cell);
            }
        }
        for e in image.cross {
            let (src, dst) = (e.src as usize, e.dst as usize);
            if src >= n || dst >= n {
                return Err(StoreError::Malformed("cross edge names a missing sheet"));
            }
            wb.insert_cross_edge_raw(CrossEdge {
                src: SheetId(src),
                prec: e.prec,
                dst: SheetId(dst),
                dep: e.dep,
            });
        }
        Ok(wb)
    }

    /// Writes the workbook snapshot to `path` and empties any sidecar WAL
    /// (its edits are folded into the snapshot from this point on). The
    /// snapshot's replay epoch is bumped past any snapshot it replaces,
    /// so stale WAL records a crash leaves behind are skipped on open.
    ///
    /// Do not call while a [`PersistentWorkbook`] holds the same path —
    /// use [`PersistentWorkbook::compact`], which keeps its WAL handle
    /// coherent.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        self.save_with(std_vfs(), path)
    }

    /// [`Workbook::save`] through an explicit [`Vfs`].
    pub fn save_with(&self, vfs: Arc<dyn Vfs>, path: &Path) -> Result<(), StoreError> {
        // Epoch bump: every record in the sidecar WAL was stamped with
        // the *previous* snapshot's epoch. Writing the new snapshot one
        // epoch higher makes those records skippable even if the crash
        // window between the snapshot rename and the WAL truncation
        // below is hit.
        let epoch = match StoreReader::open_with(vfs.as_ref(), path) {
            Ok(reader) => reader.epoch() + 1,
            Err(_) => 1,
        };
        let mut image = self.to_image();
        image.epoch = epoch;
        write_workbook_file_with(vfs.as_ref(), path, &image)?;
        let wal = wal_path(path);
        if vfs.exists(&wal) {
            WalWriter::create_with(vfs, &wal)?;
        }
        Ok(())
    }

    /// Opens a snapshot and replays its sidecar WAL, if one exists. A
    /// torn final WAL record (crash mid-append) is dropped — that edit
    /// never committed; records stamped with an epoch older than the
    /// snapshot's were already folded in by a compaction and are
    /// skipped; corruption elsewhere is a typed error.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::open_with(std_vfs(), path)
    }

    /// [`Workbook::open`] through an explicit [`Vfs`].
    pub fn open_with(vfs: Arc<dyn Vfs>, path: &Path) -> Result<Self, StoreError> {
        let reader = StoreReader::open_with(vfs.as_ref(), path)?;
        let snapshot_epoch = reader.epoch();
        let mut wb = Self::from_image(reader.read_all()?)?;
        let wal = wal_path(path);
        if vfs.exists(&wal) {
            let replay = WalReader::load_with(vfs.as_ref(), &wal, ReplayMode::TolerateTear)?;
            for (rec, epoch) in replay.stamped() {
                if epoch < snapshot_epoch {
                    continue; // already folded into the snapshot
                }
                wb.replay_edit(rec)?;
            }
        }
        Ok(wb)
    }

    /// [`Self::apply_edit`] with replay semantics: an `AddSheet` whose
    /// name already exists is a no-op. Replay epochs make every other
    /// record safe too — a crash between a snapshot write and the WAL
    /// truncation ([`Self::save`], [`PersistentWorkbook::compact`])
    /// leaves already-folded edits in the log, but they carry an older
    /// epoch than the fresh snapshot and never reach this function. The
    /// `AddSheet` check remains for version-1 logs, which predate epochs
    /// and replay every record.
    fn replay_edit(&mut self, rec: &EditRecord) -> Result<(), StoreError> {
        if let EditRecord::AddSheet { name } = rec {
            if self.sheet_id(name).is_some() {
                return Ok(());
            }
        }
        self.apply_edit(rec)
    }

    /// Applies one edit record through the normal edit paths (replay).
    pub fn apply_edit(&mut self, rec: &EditRecord) -> Result<(), StoreError> {
        let sheet_of = |s: u32, count: usize| -> Result<SheetId, StoreError> {
            if (s as usize) < count {
                Ok(SheetId(s as usize))
            } else {
                Err(StoreError::InvalidRecord(format!("no sheet with index {s}")))
            }
        };
        match rec {
            EditRecord::SetValue { sheet, cell, value } => {
                let id = sheet_of(*sheet, self.sheet_count())?;
                self.set_value(id, *cell, value.clone());
            }
            EditRecord::SetFormula { sheet, cell, src } => {
                let id = sheet_of(*sheet, self.sheet_count())?;
                self.set_formula(id, *cell, src)
                    .map_err(|e| StoreError::InvalidRecord(e.to_string()))?;
            }
            EditRecord::ClearRange { sheet, range } => {
                let id = sheet_of(*sheet, self.sheet_count())?;
                self.clear_range(id, *range);
            }
            EditRecord::AddSheet { name } => {
                self.add_sheet(name).map_err(|e| StoreError::InvalidRecord(e.to_string()))?;
            }
            EditRecord::Structural { sheet, op } => {
                let id = sheet_of(*sheet, self.sheet_count())?;
                self.apply_structural(id, *op);
            }
        }
        Ok(())
    }

    /// Applies an edit *and* appends it to `wal` — the building block for
    /// WAL-backed editing when managing the log by hand (the usual entry
    /// point is [`PersistentWorkbook`], which adds fsync and compaction
    /// policy on top).
    pub fn log_edit(&mut self, wal: &mut WalWriter, rec: &EditRecord) -> Result<(), StoreError> {
        self.apply_edit(rec)?;
        wal.append(rec)
    }
}

/// Autosave policy for a [`PersistentWorkbook`].
#[derive(Debug, Clone, Copy)]
pub struct PersistOptions {
    /// Fold the WAL into a fresh snapshot once it holds this many
    /// records (`0` disables compaction).
    pub compact_after_records: u64,
    /// Fsync the WAL every `n` appended records (`1` = every edit is an
    /// fsync point; `0` leaves syncing to [`PersistentWorkbook::sync`]
    /// and compaction).
    pub sync_every_records: u64,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions { compact_after_records: 4096, sync_every_records: 1 }
    }
}

/// A workbook with a durable home: every edit goes through the WAL, and
/// the log periodically folds into a fresh snapshot (compaction). Dropped
/// handles lose nothing — reopening replays the WAL over the snapshot.
pub struct PersistentWorkbook {
    wb: Workbook<FormulaGraph>,
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    wal: WalWriter,
    /// The replay epoch of the snapshot on disk; WAL records are stamped
    /// with it, and compaction bumps it (see [`PersistentWorkbook::compact`]).
    epoch: u64,
    opts: PersistOptions,
    appended_since_sync: u64,
    /// Whether the open-time replay truncated a torn WAL tail; folded
    /// into `taco_wal_torn_recoveries_total` when obs is attached.
    replay_torn: bool,
    /// Compaction metric handles, when attached to an obs hub.
    obs: Option<crate::obs::PersistObs>,
}

impl PersistentWorkbook {
    /// Writes `wb` as a fresh snapshot at `path` (plus an empty sidecar
    /// WAL) and takes ownership of it.
    pub fn create(
        path: &Path,
        wb: Workbook<FormulaGraph>,
        opts: PersistOptions,
    ) -> Result<Self, StoreError> {
        Self::create_with(std_vfs(), path, wb, opts)
    }

    /// [`PersistentWorkbook::create`] through an explicit [`Vfs`] —
    /// the fault-injection entry point ([`taco_store::FaultVfs`]).
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        wb: Workbook<FormulaGraph>,
        opts: PersistOptions,
    ) -> Result<Self, StoreError> {
        let mut image = wb.to_image();
        image.epoch = 1;
        write_workbook_file_with(vfs.as_ref(), path, &image)?;
        let mut wal = WalWriter::create_with(Arc::clone(&vfs), &wal_path(path))?;
        wal.set_epoch(1);
        Ok(PersistentWorkbook {
            wb,
            vfs,
            path: path.to_path_buf(),
            wal,
            epoch: 1,
            opts,
            appended_since_sync: 0,
            replay_torn: false,
            obs: None,
        })
    }

    /// Opens snapshot + WAL at `path`, replaying the log's clean prefix
    /// (a torn tail from a crash is truncated away, so the next append
    /// extends a valid log). Records stamped with an epoch older than
    /// the snapshot's were already folded in by a compaction whose WAL
    /// truncation never hit the disk; they are skipped.
    pub fn open(path: &Path, opts: PersistOptions) -> Result<Self, StoreError> {
        Self::open_with(std_vfs(), path, opts)
    }

    /// [`PersistentWorkbook::open`] through an explicit [`Vfs`].
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        opts: PersistOptions,
    ) -> Result<Self, StoreError> {
        let reader = StoreReader::open_with(vfs.as_ref(), path)?;
        let epoch = reader.epoch();
        let mut wb = Workbook::from_image(reader.read_all()?)?;
        let (mut wal, replay) = WalWriter::open_append_with(Arc::clone(&vfs), &wal_path(path))?;
        for (rec, rec_epoch) in replay.stamped() {
            if rec_epoch < epoch {
                continue; // already folded into the snapshot
            }
            wb.replay_edit(rec)?;
        }
        wal.set_epoch(epoch);
        Ok(PersistentWorkbook {
            wb,
            vfs,
            path: path.to_path_buf(),
            wal,
            epoch,
            opts,
            appended_since_sync: 0,
            replay_torn: replay.torn.is_some(),
            obs: None,
        })
    }

    /// Attaches workbook, WAL, and compaction metrics to an obs hub: the
    /// engine records recalculation metrics (labeled `book="<label>"`),
    /// the WAL records append/fsync latency and volume, and compactions
    /// are counted and timed. If the opening replay truncated a torn WAL
    /// tail, that recovery is folded into
    /// `taco_wal_torn_recoveries_total` here.
    pub fn attach_obs(&mut self, obs: &taco_obs::Obs, label: &str) {
        self.wb.attach_obs(obs, label);
        let walobs = taco_store::WalObs::new(obs);
        if self.replay_torn {
            walobs.torn_recoveries.inc();
            self.replay_torn = false;
        }
        self.wal.set_obs(walobs);
        self.obs = Some(crate::obs::PersistObs::new(obs));
    }

    /// Read access to the live workbook.
    pub fn workbook(&self) -> &Workbook<FormulaGraph> {
        &self.wb
    }

    /// Mutable access to the live workbook for **non-edit** operations:
    /// dependents/precedents queries take `&mut` (R-tree lookups), and
    /// recalculation is already exposed as
    /// [`PersistentWorkbook::recalculate`]. Edits applied through this
    /// reference bypass the WAL and will not survive a reopen — route
    /// them through [`PersistentWorkbook::log_edit`] /
    /// [`PersistentWorkbook::log_batch`] instead.
    pub fn workbook_mut(&mut self) -> &mut Workbook<FormulaGraph> {
        &mut self.wb
    }

    /// Applies and durably logs one edit; the autosave hook: may fsync
    /// (per `sync_every_records`) and may compact (per
    /// `compact_after_records`).
    pub fn log_edit(&mut self, rec: &EditRecord) -> Result<(), StoreError> {
        self.wb.apply_edit(rec)?;
        self.append(rec)
    }

    /// Logs without re-applying (used when the edit already ran against
    /// the workbook, e.g. the autofill expansion below).
    fn append(&mut self, rec: &EditRecord) -> Result<(), StoreError> {
        self.wal.append(rec)?;
        self.appended_since_sync += 1;
        if self.opts.sync_every_records > 0
            && self.appended_since_sync >= self.opts.sync_every_records
        {
            self.sync()?;
        }
        if self.opts.compact_after_records > 0
            && self.wal.record_count() >= self.opts.compact_after_records
        {
            self.compact()?;
        }
        Ok(())
    }

    /// Applies a run of edits with one dirty-propagation pass
    /// ([`Workbook::apply_batch`]) and appends every applied record to the
    /// WAL, observing the fsync and compaction policy **once per batch**
    /// instead of once per record — the durability analogue of write
    /// coalescing.
    ///
    /// Failures carry a [`BatchStage`]: `Apply` means the prefix before
    /// [`BatchError::index`] applied and logged and nothing else
    /// happened; `Log` means the live workbook is **ahead of the log** —
    /// every record that applied is live in memory, but the WAL holds
    /// only the records before `index` (an append or fsync/compaction
    /// I/O failure). On `Log` the caller must not re-apply or keep
    /// appending, only stop logging or compact (which rewrites the
    /// snapshot from the live state and resets the log).
    ///
    /// [`BatchError::index`]: crate::workbook::BatchError
    /// [`BatchStage`]: crate::workbook::BatchStage
    pub fn log_batch(
        &mut self,
        records: &[EditRecord],
    ) -> Result<crate::workbook::WorkbookReceipt, crate::workbook::BatchError> {
        use crate::workbook::{BatchError, BatchStage};
        let result = self.wb.apply_batch(records);
        let applied = match &result {
            Ok(_) => records.len(),
            Err(e) => e.index,
        };
        for (index, rec) in records[..applied].iter().enumerate() {
            self.wal.append(rec).map_err(|error| BatchError {
                index,
                stage: BatchStage::Log,
                error,
            })?;
            self.appended_since_sync += 1;
        }
        let policy_err = |error| BatchError { index: applied, stage: BatchStage::Log, error };
        if self.opts.sync_every_records > 0
            && self.appended_since_sync >= self.opts.sync_every_records
        {
            self.sync().map_err(policy_err)?;
        }
        if self.opts.compact_after_records > 0
            && self.wal.record_count() >= self.opts.compact_after_records
        {
            self.compact().map_err(policy_err)?;
        }
        result
    }

    /// Convenience: logged [`Workbook::set_value`].
    pub fn set_value(
        &mut self,
        sheet: SheetId,
        cell: taco_grid::Cell,
        value: taco_formula::Value,
    ) -> Result<(), StoreError> {
        self.log_edit(&EditRecord::SetValue { sheet: sheet.index() as u32, cell, value })
    }

    /// Convenience: logged [`Workbook::set_formula`].
    pub fn set_formula(
        &mut self,
        sheet: SheetId,
        cell: taco_grid::Cell,
        src: &str,
    ) -> Result<(), StoreError> {
        self.log_edit(&EditRecord::SetFormula {
            sheet: sheet.index() as u32,
            cell,
            src: src.to_string(),
        })
    }

    /// Convenience: logged [`Workbook::clear_range`].
    pub fn clear_range(
        &mut self,
        sheet: SheetId,
        range: taco_grid::Range,
    ) -> Result<(), StoreError> {
        self.log_edit(&EditRecord::ClearRange { sheet: sheet.index() as u32, range })
    }

    /// Convenience: logged [`Workbook::add_sheet`].
    pub fn add_sheet(&mut self, name: &str) -> Result<SheetId, StoreError> {
        self.log_edit(&EditRecord::AddSheet { name: name.to_string() })?;
        Ok(SheetId(self.wb.sheet_count() - 1))
    }

    /// Convenience: logged [`Workbook::apply_structural`] — one record
    /// covers the whole workbook-wide edit; replay re-derives the
    /// cross-sheet reference rewrites from the op.
    pub fn apply_structural(
        &mut self,
        sheet: SheetId,
        op: taco_core::StructuralOp,
    ) -> Result<(), StoreError> {
        self.log_edit(&EditRecord::Structural { sheet: sheet.index() as u32, op })
    }

    /// Logged [`Workbook::autofill`]: runs the fill, then logs each
    /// generated formula as its own `SetFormula` record (replay is then
    /// independent of the autofill algorithm's versioning). Returns the
    /// fill's routing receipt.
    pub fn autofill(
        &mut self,
        sheet: SheetId,
        src: taco_grid::Cell,
        targets: taco_grid::Range,
    ) -> Result<crate::workbook::WorkbookReceipt, StoreError> {
        let receipt = self
            .wb
            .autofill(sheet, src, targets)
            .map_err(|e| StoreError::InvalidRecord(e.to_string()))?;
        for cell in targets.cells() {
            if let Some(f) = self.wb.formula_of(sheet, cell) {
                self.append(&EditRecord::SetFormula { sheet: sheet.index() as u32, cell, src: f })?;
            }
        }
        Ok(receipt)
    }

    /// Recalculates dirty cells (derived state — not logged; a reopened
    /// workbook re-derives the same values from the replayed edits).
    pub fn recalculate(&mut self, mode: crate::workbook::RecalcMode) -> usize {
        self.wb.recalculate(mode)
    }

    /// An explicit fsync point for the WAL.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()?;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Folds the WAL into a fresh snapshot: writes the container one
    /// replay epoch higher, then truncates the log. Crash-ordering note:
    /// the snapshot is fully durable (file + directory fsync) *before*
    /// the WAL resets, so a crash between the two steps leaves records
    /// stamped with the old epoch behind a snapshot at the new epoch —
    /// reopen skips every one of them, including structural edits,
    /// which a naive double replay would shift twice.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let timing = self.obs.as_ref().map(|o| (Instant::now(), o.now_ns()));
        let folded = self.wal.record_count();
        let mut image = self.wb.to_image();
        image.epoch = self.epoch + 1;
        write_workbook_file_with(self.vfs.as_ref(), &self.path, &image)?;
        self.epoch += 1;
        self.wal.set_epoch(self.epoch);
        self.wal.reset()?;
        self.appended_since_sync = 0;
        if let (Some(o), Some((start, start_ns))) = (self.obs.as_ref(), timing) {
            o.on_compaction(start, start_ns, folded);
        }
        Ok(())
    }

    /// Records currently in the WAL (since the last compaction).
    pub fn wal_record_count(&self) -> u64 {
        self.wal.record_count()
    }

    /// The replay epoch of the snapshot on disk (bumped by each
    /// compaction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---- single-engine persistence (the REPL's `:save` / `:open`) ----------

/// Saves a standalone engine as a one-sheet workbook container.
pub fn save_engine(engine: &Engine<FormulaGraph>, path: &Path) -> Result<(), StoreError> {
    let name = engine.sheet_name().unwrap_or("Sheet1").to_string();
    let image =
        WorkbookImage { sheets: vec![sheet_image(engine, name)], cross: Vec::new(), epoch: 0 };
    write_workbook_file(path, &image)
}

/// Opens a container saved by [`save_engine`] (or any single-sheet
/// workbook) back into a standalone engine.
pub fn open_engine(path: &Path) -> Result<Engine<FormulaGraph>, StoreError> {
    let reader = StoreReader::open(path)?;
    if reader.sheet_count() != 1 {
        return Err(StoreError::InvalidRecord(format!(
            "expected a single-sheet container, found {} sheets",
            reader.sheet_count()
        )));
    }
    let sheet = reader.read_sheet(0)?;
    let mut engine = Engine::new(FormulaGraph::restore(sheet.graph));
    // Restore the sheet name: self-qualified references (`Data!A1` inside
    // `Data`) must keep resolving locally after reopen.
    engine.set_sheet_name(sheet.name);
    for (cell, rec) in sheet.cells {
        let content = match rec {
            CellRecord::Pure(v) => CellContent::Pure(v),
            CellRecord::Formula { src, value } => CellContent::Formula {
                formula: Formula::parse(&src)
                    .map_err(|e| StoreError::InvalidRecord(e.to_string()))?,
                value,
            },
        };
        engine.put_cell(cell, content);
    }
    for cell in sheet.dirty {
        engine.mark_cell_dirty(cell);
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbook::RecalcMode;
    use taco_formula::Value;
    use taco_grid::{Cell, Range};

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn n(v: f64) -> Value {
        Value::Number(v)
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("taco_persist_{tag}_{}.taco", std::process::id()))
    }

    fn two_sheet_book() -> Workbook<FormulaGraph> {
        let mut wb = Workbook::with_taco();
        let data = wb.add_sheet("Data").unwrap();
        let summary = wb.add_sheet("My Summary").unwrap();
        for row in 1..=6u32 {
            wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
        }
        wb.set_formula(data, c("B1"), "=A1*2").unwrap();
        wb.autofill(data, c("B1"), Range::parse_a1("B2:B6").unwrap()).unwrap();
        wb.set_formula(summary, c("A1"), "=SUM(Data!B1:B6)").unwrap();
        wb.set_formula(summary, c("B1"), "=A1+'My Summary'!A1").unwrap();
        wb
    }

    #[test]
    fn save_open_round_trips_values_and_queries() {
        let mut wb = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        let path = temp("roundtrip");
        wb.save(&path).unwrap();
        let mut back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let (data, summary) = (SheetId(0), SheetId(1));
        assert_eq!(back.sheet_name(data), "Data");
        assert_eq!(back.value(summary, c("A1")), n(42.0));
        assert_eq!(back.cross_edge_count(), wb.cross_edge_count());
        assert_eq!(back.sheet(data).graph().stats(), wb.sheet(data).graph().stats());
        assert_eq!(
            back.find_dependents(data, Range::parse_a1("A3").unwrap()),
            wb.find_dependents(data, Range::parse_a1("A3").unwrap())
        );
        // Edits keep working and the restored graph keeps compressing.
        let receipt = back.set_value(data, c("A3"), n(100.0));
        assert_eq!(receipt.dirty, wb.set_value(data, c("A3"), n(100.0)).dirty);
        back.recalculate(RecalcMode::Serial);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(back.value(summary, c("B1")), wb.value(summary, c("B1")));
    }

    #[test]
    fn dirty_set_survives_reopen() {
        let mut wb = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        wb.set_value(SheetId(0), c("A1"), n(50.0)); // leaves dirtiness behind
        let path = temp("dirty");
        wb.save(&path).unwrap();
        let mut back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.dirty_count(), wb.dirty_count());
        assert!(back.dirty_count() > 0);
        back.recalculate(RecalcMode::Serial);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(back.value(SheetId(1), c("A1")), wb.value(SheetId(1), c("A1")));
    }

    #[test]
    fn wal_replay_matches_live_edits() {
        let path = temp("wal");
        let wb = two_sheet_book();
        let mut live = two_sheet_book();
        let mut pers = PersistentWorkbook::create(
            &path,
            wb,
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        let edits = [
            EditRecord::SetValue { sheet: 0, cell: c("A2"), value: n(20.0) },
            EditRecord::SetFormula { sheet: 1, cell: c("C1"), src: "SUM(Data!A1:A6)".into() },
            EditRecord::AddSheet { name: "Late".into() },
            EditRecord::SetValue { sheet: 2, cell: c("A1"), value: n(7.0) },
            EditRecord::ClearRange { sheet: 0, range: Range::parse_a1("B5:B6").unwrap() },
        ];
        for e in &edits {
            pers.log_edit(e).unwrap();
            live.apply_edit(e).unwrap();
        }
        drop(pers); // no compaction: the snapshot on disk is stale
        let mut reopened = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_path(&path)).ok();

        assert_eq!(reopened.sheet_count(), live.sheet_count());
        assert_eq!(reopened.dirty_count(), live.dirty_count());
        reopened.recalculate(RecalcMode::Serial);
        live.recalculate(RecalcMode::Serial);
        for i in 0..live.sheet_count() {
            let id = SheetId(i);
            assert_eq!(
                reopened.sheet(id).graph().stats(),
                live.sheet(id).graph().stats(),
                "sheet {i} graph stats"
            );
            for (cell, content) in live.sheet(id).cells_map() {
                assert_eq!(reopened.value(id, *cell), *content.value(), "sheet {i} {cell}");
            }
        }
        let probe = Range::parse_a1("A1:A6").unwrap();
        assert_eq!(
            reopened.find_dependents(SheetId(0), probe),
            live.find_dependents(SheetId(0), probe)
        );
    }

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let path = temp("compact");
        let mut pers = PersistentWorkbook::create(
            &path,
            two_sheet_book(),
            PersistOptions { compact_after_records: 3, sync_every_records: 1 },
        )
        .unwrap();
        for i in 0..10u32 {
            pers.set_value(SheetId(0), Cell::new(4, i + 1), n(f64::from(i))).unwrap();
        }
        // 10 edits with threshold 3: the WAL folded at least twice and
        // never grew past the threshold.
        assert!(pers.wal_record_count() < 3);
        drop(pers);
        let back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_path(&path)).ok();
        assert_eq!(back.value(SheetId(0), Cell::new(4, 10)), n(9.0));
    }

    #[test]
    fn reopen_after_simulated_crash_drops_only_the_torn_edit() {
        let path = temp("crash");
        let mut pers = PersistentWorkbook::create(
            &path,
            two_sheet_book(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        for i in 0..5u32 {
            pers.set_value(SheetId(0), Cell::new(5, i + 1), n(f64::from(i) * 10.0)).unwrap();
        }
        drop(pers);
        // Crash simulation: chop the WAL mid-record.
        let wal = wal_path(&path);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
        let back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
        assert_eq!(back.value(SheetId(0), Cell::new(5, 4)), n(30.0));
        // The torn final edit never committed.
        assert_eq!(back.value(SheetId(0), Cell::new(5, 5)), Value::Empty);
    }

    #[test]
    fn engine_save_open_round_trips() {
        let mut e = Engine::with_taco();
        e.set_value(c("A1"), n(3.0));
        e.set_formula(c("B1"), "=A1*A1").unwrap();
        e.recalculate();
        let path = temp("engine");
        save_engine(&e, &path).unwrap();
        let mut back = open_engine(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.value(c("B1")), n(9.0));
        assert_eq!(back.graph().num_edges(), e.graph().num_edges());
        back.set_value(c("A1"), n(4.0));
        back.recalculate();
        assert_eq!(back.value(c("B1")), n(16.0));
    }

    #[test]
    fn engine_reopen_keeps_self_qualified_references_local() {
        // A workbook-mounted sheet saved alone and reopened must keep its
        // name: `Data!A1` inside `Data` reads locally, not `#REF!`.
        let mut wb = Workbook::with_taco();
        let data = wb.add_sheet("Data").unwrap();
        wb.set_value(data, c("A1"), n(5.0));
        wb.set_formula(data, c("B1"), "=Data!A1*2").unwrap();
        wb.recalculate(RecalcMode::Serial);
        let path = temp("selfqual");
        save_engine(wb.sheet(data), &path).unwrap();
        let mut back = open_engine(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.sheet_name(), Some("Data"));
        back.set_value(c("A1"), n(7.0));
        back.recalculate();
        assert_eq!(back.value(c("B1")), n(14.0), "self-qualified ref must stay local");
    }

    #[test]
    fn forward_referenced_sheet_restores_without_duplicate_edges() {
        // A!B1 references "Late" before Late exists; adding Late rebinds
        // (one cross edge, one dirty cell). The restore path must come
        // back with exactly the same counts — not re-run the rebind on
        // top of the restored cross table — and re-saving must be a
        // byte-level fixed point.
        let mut wb = Workbook::with_taco();
        let a = wb.add_sheet("A").unwrap();
        wb.set_value(a, c("C1"), n(2.0));
        wb.set_formula(a, c("B1"), "=Late!A1+C1").unwrap();
        wb.recalculate(RecalcMode::Serial);
        let late = wb.add_sheet("Late").unwrap();
        wb.set_value(late, c("A1"), n(5.0));
        assert_eq!(wb.cross_edge_count(), 1);

        let bytes = taco_store::encode_workbook(&wb.to_image()).unwrap();
        let mut back = Workbook::from_image(
            taco_store::StoreReader::from_bytes(bytes.clone()).unwrap().read_all().unwrap(),
        )
        .unwrap();
        assert_eq!(back.cross_edge_count(), 1, "rebind must not duplicate the cross edge");
        assert_eq!(back.dirty_count(), wb.dirty_count(), "rebind must not re-dirty cells");
        assert_eq!(
            taco_store::encode_workbook(&back.to_image()).unwrap(),
            bytes,
            "save → open → save must be a fixed point"
        );
        back.recalculate(RecalcMode::Serial);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(back.value(a, c("B1")), wb.value(a, c("B1")));
    }

    #[test]
    fn stale_wal_replays_idempotently_over_a_fresh_snapshot() {
        // Crash window in save/compact: the snapshot already contains the
        // WAL's edits, but the log was not yet truncated. Reopen must
        // tolerate replaying them — including AddSheet, which the normal
        // edit path rejects on a second application.
        let path = temp("stalewal");
        let mut pers = PersistentWorkbook::create(
            &path,
            two_sheet_book(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        pers.log_edit(&EditRecord::AddSheet { name: "Late".into() }).unwrap();
        pers.log_edit(&EditRecord::SetValue { sheet: 2, cell: c("A1"), value: n(7.0) }).unwrap();
        // Simulate the crash: snapshot rewritten, WAL left untruncated.
        taco_store::write_workbook_file(&path, &pers.workbook().to_image()).unwrap();
        let expected_sheets = pers.workbook().sheet_count();
        drop(pers);
        let wb = Workbook::open(&path).expect("stale WAL must replay idempotently");
        assert_eq!(wb.sheet_count(), expected_sheets);
        assert_eq!(wb.value(SheetId(2), c("A1")), n(7.0));
        let pers = PersistentWorkbook::open(&path, PersistOptions::default())
            .expect("persistent open tolerates the stale WAL too");
        assert_eq!(pers.workbook().sheet_count(), expected_sheets);
        drop(pers);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_path(&path)).ok();
    }

    #[test]
    fn compact_crash_window_cannot_double_apply_structural_edits() {
        use taco_core::StructuralOp;
        use taco_store::FaultVfs;
        // The epoch protocol's whole reason to exist: a crash after the
        // compaction snapshot is durable but before the WAL truncates
        // leaves structural records in the log. Without epochs, reopen
        // would shift rows a second time.
        let fv = FaultVfs::pristine(11);
        let vfs: Arc<dyn Vfs> = Arc::new(fv.clone());
        let path = PathBuf::from("book.taco");
        let mut pers = PersistentWorkbook::create_with(
            Arc::clone(&vfs),
            &path,
            two_sheet_book(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        pers.set_value(SheetId(0), c("A1"), n(100.0)).unwrap();
        pers.apply_structural(SheetId(0), StructuralOp::InsertRows { at: 2, n: 3 }).unwrap();
        // First half of `compact`: the snapshot lands on disk one epoch
        // up; the WAL "crashes" before its reset and keeps the records.
        let mut image = pers.workbook().to_image();
        image.epoch = pers.epoch() + 1;
        write_workbook_file_with(vfs.as_ref(), &path, &image).unwrap();
        let mut live = Workbook::from_image(pers.workbook().to_image()).unwrap();
        drop(pers);

        let back =
            PersistentWorkbook::open_with(Arc::clone(&vfs), &path, PersistOptions::default())
                .unwrap();
        assert_eq!(back.epoch(), 2);
        assert_eq!(back.wal_record_count(), 2, "stale records stay in the log, skipped");
        let mut reopened = Workbook::from_image(back.workbook().to_image()).unwrap();
        reopened.recalculate(RecalcMode::Serial);
        live.recalculate(RecalcMode::Serial);
        // A double-applied InsertRows would move A1's 100 down again.
        assert_eq!(reopened.value(SheetId(0), c("A1")), n(100.0));
        for (cell, content) in live.sheet(SheetId(0)).cells_map() {
            assert_eq!(reopened.value(SheetId(0), *cell), *content.value(), "{cell}");
        }
    }

    #[test]
    fn save_replaces_an_existing_snapshot_atomically() {
        let path = temp("atomic");
        let wb = two_sheet_book();
        wb.save(&path).unwrap();
        let first = std::fs::read(&path).unwrap();
        let mut wb2 = two_sheet_book();
        wb2.set_value(SheetId(0), c("A1"), n(99.0));
        wb2.save(&path).unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_ne!(first, second, "snapshot must be replaced");
        // The temp sibling never lingers.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists(), "tmp file must be renamed away");
        let back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.value(SheetId(0), c("A1")), n(99.0));
    }

    #[test]
    fn structural_edits_survive_wal_replay() {
        use taco_core::StructuralOp;
        let path = temp("structwal");
        let mut live = two_sheet_book();
        let mut pers = PersistentWorkbook::create(
            &path,
            two_sheet_book(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        let edits = [
            // Shift the data down, edit a moved cell, then kill column A
            // (driving the summary's references through a rewrite and the
            // data sheet's own formulas to #REF!), then shift the summary.
            EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 2, n: 3 } },
            EditRecord::SetValue { sheet: 0, cell: c("A2"), value: n(20.0) },
            EditRecord::Structural { sheet: 0, op: StructuralOp::DeleteCols { at: 1, n: 1 } },
            EditRecord::Structural { sheet: 1, op: StructuralOp::InsertCols { at: 1, n: 2 } },
        ];
        for e in &edits {
            pers.log_edit(e).unwrap();
            live.apply_edit(e).unwrap();
        }
        drop(pers); // no compaction: replay does all the work
        let mut reopened = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_path(&path)).ok();

        assert_eq!(reopened.dirty_count(), live.dirty_count());
        assert_eq!(reopened.cross_edge_count(), live.cross_edge_count());
        reopened.recalculate(RecalcMode::Serial);
        live.recalculate(RecalcMode::Serial);
        for i in 0..live.sheet_count() {
            let id = SheetId(i);
            assert_eq!(
                reopened.sheet(id).graph().stats(),
                live.sheet(id).graph().stats(),
                "sheet {i} graph stats"
            );
            for (cell, content) in live.sheet(id).cells_map() {
                assert_eq!(reopened.value(id, *cell), *content.value(), "sheet {i} {cell}");
                assert_eq!(
                    reopened.formula_of(id, *cell),
                    live.formula_of(id, *cell),
                    "sheet {i} {cell} source text"
                );
            }
        }
    }

    #[test]
    fn ref_error_formulas_round_trip_through_snapshots() {
        use taco_core::StructuralOp;
        // A full-range delete leaves `#REF!` in stored formula source;
        // the snapshot restore path re-parses that source and must accept
        // it (and keep evaluating it to the reference error).
        let mut wb = two_sheet_book();
        wb.apply_structural(SheetId(0), StructuralOp::DeleteCols { at: 1, n: 1 });
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.formula_of(SheetId(0), c("A1")).as_deref(), Some("#REF!*2"));
        let path = temp("referr");
        wb.save(&path).unwrap();
        let mut back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.formula_of(SheetId(0), c("A1")).as_deref(), Some("#REF!*2"));
        back.recalculate(RecalcMode::Serial);
        assert_eq!(back.value(SheetId(0), c("A1")), wb.value(SheetId(0), c("A1")));
        assert_eq!(back.value(SheetId(1), c("A1")), wb.value(SheetId(1), c("A1")));
    }

    #[test]
    fn torn_structural_record_never_half_applies() {
        use taco_core::StructuralOp;
        let path = temp("structtorn");
        let mut pers = PersistentWorkbook::create(
            &path,
            two_sheet_book(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        pers.set_value(SheetId(0), c("A1"), n(100.0)).unwrap();
        pers.apply_structural(SheetId(0), StructuralOp::InsertRows { at: 1, n: 4 }).unwrap();
        drop(pers);
        // Crash mid-append of the structural record: chop into its tail.
        let wal = wal_path(&path);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 2]).unwrap();
        let mut back = Workbook::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
        // The value edit committed; the torn structural edit did not, so
        // nothing moved and no cross-sheet reference was rewritten.
        assert_eq!(back.value(SheetId(0), c("A1")), n(100.0));
        assert_eq!(back.formula_of(SheetId(1), c("A1")).as_deref(), Some("SUM(Data!B1:B6)"));
        back.recalculate(RecalcMode::Serial);
        assert_eq!(back.value(SheetId(1), c("A1")), n(240.0));
    }

    #[test]
    fn replay_against_wrong_sheet_is_typed() {
        let mut wb = Workbook::with_taco();
        wb.add_sheet("Only").unwrap();
        let bad = EditRecord::SetValue { sheet: 9, cell: c("A1"), value: n(1.0) };
        assert!(matches!(wb.apply_edit(&bad), Err(StoreError::InvalidRecord(_))));
        let bad = EditRecord::SetFormula { sheet: 0, cell: c("A1"), src: "=)!(".into() };
        assert!(matches!(wb.apply_edit(&bad), Err(StoreError::InvalidRecord(_))));
    }
}
