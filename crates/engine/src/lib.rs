//! A headless spreadsheet engine: the DataSpread-style substrate the paper
//! integrates TACO into (§VI-A).
//!
//! The engine owns a sparse cell store and a pluggable formula graph
//! backend ([`taco_core::DependencyBackend`]). Edits follow the paper's
//! interactivity model:
//!
//! 1. a cell changes;
//! 2. the engine queries the formula graph for the **dependents** of the
//!    change and marks them dirty — this step is on the critical path for
//!    returning control to the user, and is what TACO accelerates;
//! 3. dirty formulae are re-evaluated (synchronously here; DataSpread does
//!    it asynchronously — the graph query cost is the same either way).
//!
//! [`Engine::autofill`] reproduces the formula-generation tool whose
//! `$`-rules create the tabular locality TACO compresses.
//!
//! [`Workbook`] scales the model to multi-sheet files: one engine shard
//! (cells + compressed graph) per sheet, an inter-sheet edge table for
//! `Sheet2!A1`-style cross-references, and a level-scheduled recalculation
//! that evaluates independent sheets on parallel scoped threads with
//! values bit-identical to the serial order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_engine;
mod engine;
mod obs;
mod persist;
mod sheet;
mod structural;
mod workbook;

pub use async_engine::AsyncEngine;
pub use engine::{EditReceipt, Engine, ProfileMode, ProfileReport, PROFILE_TOP_K};
pub use obs::EngineObs;
pub use persist::{open_engine, save_engine, wal_path, PersistOptions, PersistentWorkbook};
pub use sheet::CellContent;
pub use workbook::{
    BatchError, BatchStage, CrossEdge, RecalcMode, SheetId, Workbook, WorkbookError,
    WorkbookReceipt,
};

pub use taco_core::DependencyBackend;
pub use taco_formula::{CellError, EvalClock, Value};
pub use taco_store::{EditRecord, StoreError, WalWriter};
