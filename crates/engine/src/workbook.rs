//! Multi-sheet workbooks: sheet-sharded formula graphs, cross-sheet
//! reference routing, and a parallel recalculation scheduler.
//!
//! The paper evaluates TACO per sheet, but the Enron/Github workbooks it
//! draws from are multi-sheet with `Sheet2!A1`-style cross-references. A
//! [`Workbook`] shards state accordingly:
//!
//! - every sheet keeps its **own** cell store and its own compressed
//!   formula graph ([`taco_core::DependencyBackend`]), so each shard stays
//!   exactly as compressible as the paper's per-sheet graphs;
//! - cross-sheet dependencies live in a separate **inter-sheet edge
//!   table** ([`CrossEdge`]): `(source sheet, referenced range) → (target
//!   sheet, formula cell)`. Dependents/precedents queries and dirty
//!   propagation run the per-sheet compressed query within a shard and hop
//!   through the edge table between shards;
//! - recalculation is scheduled **per sheet**: sheets are topologically
//!   leveled by the cross-edge graph (longest-path levels), so sheets in
//!   the same level share no cross-sheet edges and can evaluate
//!   concurrently on crossbeam scoped threads. Before a level runs, each
//!   of its sheets gets an *import snapshot* — the values covered by its
//!   incoming cross edges — so worker threads never share sheet state.
//!
//! [`RecalcMode::Serial`] walks the same levels in ascending sheet order;
//! because within-level sheets are independent and every per-sheet
//! evaluation is deterministic, serial and parallel recalculation produce
//! **bit-identical** values (property-tested in
//! `tests/prop_workbook.rs`).
//!
//! Cross-sheet *cycles* (sheet A reads B, B reads A) cannot be leveled;
//! the scheduler levels the **SCC condensation** instead: each cyclic
//! component unrolls into consecutive singleton levels in ascending sheet
//! order, and everything downstream of it is placed strictly later, so
//! only the cycle members themselves see stale values. One `recalculate`
//! call relaxes a cyclic component by a single pass over its dirty cells
//! — deterministic in either mode. An edit that re-dirties the cycle
//! advances it another pass; a genuine cell-level cycle across sheets
//! never settles, matching Excel's circular-reference behaviour with
//! iterative calculation off.

use crate::engine::{Engine, ExternalSheets};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};
use taco_core::{Config, Dependency, DependencyBackend, FormulaGraph, StructuralOp};
use taco_formula::{autofill, CellError, EvalClock, Formula, FormulaError, Value};
use taco_grid::a1::{CellRef, QualifiedRef, RangeRef, SheetRef};
use taco_grid::{Cell, GridError, Range};

/// Index of a sheet within its workbook (dense, allocation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SheetId(pub usize);

impl SheetId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SheetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sheet#{}", self.0)
    }
}

/// One inter-sheet dependency: the formula at `dst!dep` references the
/// range `src!prec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossEdge {
    /// Sheet holding the referenced range.
    pub src: SheetId,
    /// The referenced range on `src`.
    pub prec: Range,
    /// Sheet holding the referencing formula.
    pub dst: SheetId,
    /// The formula cell on `dst`.
    pub dep: Cell,
}

/// The inter-sheet edge table, indexed both ways so the hot paths only
/// scan the edges of the sheet at hand: routing (`expand`) walks a source
/// sheet's outgoing edges, import snapshots and precedent queries walk a
/// target sheet's incoming edges. Every edge is stored in both buckets.
#[derive(Default)]
struct EdgeTable {
    by_src: Vec<Vec<CrossEdge>>,
    by_dst: Vec<Vec<CrossEdge>>,
    len: usize,
}

impl EdgeTable {
    /// Grows both indices for a newly added sheet.
    fn add_sheet(&mut self) {
        self.by_src.push(Vec::new());
        self.by_dst.push(Vec::new());
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, e: CrossEdge) {
        self.by_src[e.src.0].push(e);
        self.by_dst[e.dst.0].push(e);
        self.len += 1;
    }

    /// Edges whose referenced range lives on `sid`.
    fn outgoing(&self, sid: usize) -> &[CrossEdge] {
        &self.by_src[sid]
    }

    /// Edges whose formula cell lives on `sid`.
    fn incoming(&self, sid: usize) -> &[CrossEdge] {
        &self.by_dst[sid]
    }

    fn iter(&self) -> impl Iterator<Item = &CrossEdge> {
        self.by_src.iter().flatten()
    }

    /// Removes every edge of the formula cell `dst!dep`.
    fn remove_dep(&mut self, dst: SheetId, dep: Cell) {
        self.remove_where(dst, |e| e.dep == dep);
    }

    /// Removes every edge of a formula cell inside `dst!range`.
    fn remove_deps_in(&mut self, dst: SheetId, range: Range) {
        self.remove_where(dst, move |e| range.contains_cell(e.dep));
    }

    fn remove_where(&mut self, dst: SheetId, pred: impl Fn(&CrossEdge) -> bool) {
        let removed: Vec<CrossEdge> =
            self.by_dst[dst.0].iter().filter(|e| pred(e)).copied().collect();
        if removed.is_empty() {
            return;
        }
        self.by_dst[dst.0].retain(|e| !pred(e));
        for src in removed.iter().map(|e| e.src.0).collect::<BTreeSet<_>>() {
            self.by_src[src].retain(|e| !(e.dst == dst && pred(e)));
        }
        self.len -= removed.len();
    }

    /// Remaps the formula-cell end of every edge owned by sheet `sid`
    /// under a structural edit of that sheet (the sheet's own formulas
    /// moved); edges whose formula cell was deleted are dropped along
    /// with the formula. The referenced-range ends on *other* sheets are
    /// untouched — foreign geometry does not change.
    fn remap_deps_on(&mut self, sid: usize, op: StructuralOp) {
        let mut removed = 0usize;
        self.by_dst[sid].retain_mut(|e| match op.map_cell(e.dep) {
            Some(nc) => {
                e.dep = nc;
                true
            }
            None => {
                removed += 1;
                false
            }
        });
        for bucket in &mut self.by_src {
            bucket.retain_mut(|e| {
                if e.dst.0 != sid {
                    return true;
                }
                match op.map_cell(e.dep) {
                    Some(nc) => {
                        e.dep = nc;
                        true
                    }
                    None => false,
                }
            });
        }
        self.len -= removed;
    }
}

/// One unit of routing work inside [`Workbook::expand`]: a range on a
/// sheet, plus what is left to do with it.
#[derive(Debug, Clone, Copy)]
struct Job {
    sid: usize,
    range: Range,
    /// Run the per-sheet dependents query over `range`? `false` when the
    /// caller already has the local closure (engine edit receipts).
    expand_local: bool,
    /// Include `range` itself in the result? (Edit origins and query
    /// probes are not their own dependents.)
    report: bool,
}

impl Job {
    /// A query probe: expand locally, do not report the probe itself.
    fn probe(sid: usize, range: Range) -> Job {
        Job { sid, range, expand_local: true, report: false }
    }

    /// A range whose local closure is already complete: report it and
    /// scan it for cross hops only.
    fn expanded(sid: usize, range: Range) -> Job {
        Job { sid, range, expand_local: false, report: true }
    }

    /// A cross-hop formula cell: it is a dependent (report) whose own
    /// local dependents are still unknown (expand).
    fn hop(sid: usize, cell: Cell) -> Job {
        Job { sid, range: Range::cell(cell), expand_local: true, report: true }
    }

    /// The jobs for one engine edit: the edited range (cross hops only —
    /// the engine already ran and marked the local query) plus the
    /// receipt's dependent ranges.
    fn from_receipt(sid: usize, origin: Range, receipt: crate::EditReceipt) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(receipt.dirty.len() + 1);
        jobs.push(Job { sid, range: origin, expand_local: false, report: false });
        jobs.extend(receipt.dirty.into_iter().map(|r| Job::expanded(sid, r)));
        jobs
    }
}

/// How [`Workbook::recalculate`] schedules sheet evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecalcMode {
    /// Level by level, sheets in ascending id order, one at a time.
    Serial,
    /// Level by level, sheets of a level split over up to `threads`
    /// crossbeam scoped threads. Values are bit-identical to serial.
    Parallel {
        /// Worker-thread cap (clamped to ≥ 1 and to the level width).
        threads: usize,
    },
    /// Level by level, sheets in ascending id order — but *within* each
    /// sheet the dirty set is leveled over the dependency relation and
    /// each cell level evaluates on up to `threads` scoped worker
    /// threads. This is the mode that parallelizes a single giant sheet,
    /// which sheet-level scheduling cannot. Values are bit-identical to
    /// serial.
    CellParallel {
        /// Worker-thread cap per cell level (clamped to ≥ 1).
        threads: usize,
    },
}

/// What a workbook edit reported back before recalculation: the dirty
/// ranges per sheet, plus the time spent identifying them (the paper's
/// control-latency metric, now workbook-wide).
#[derive(Debug, Clone)]
pub struct WorkbookReceipt {
    /// Dirty ranges, `(sheet, range)`, sorted and deduplicated.
    pub dirty: Vec<(SheetId, Range)>,
    /// Time spent finding the dependents across all sheets.
    pub control_latency: Duration,
}

impl WorkbookReceipt {
    /// Number of distinct sheets the edit dirtied.
    pub fn sheets_touched(&self) -> usize {
        self.dirty.iter().map(|(s, _)| s).collect::<BTreeSet<_>>().len()
    }
}

/// Errors from workbook-level operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkbookError {
    /// A sheet with this name already exists (names are case-insensitive).
    DuplicateSheet(String),
    /// The sheet name failed validation.
    BadSheetName(GridError),
    /// A sheet id or cross-edge endpoint is out of range.
    NoSuchSheet(usize),
    /// A formula failed to parse.
    Formula(FormulaError),
}

impl fmt::Display for WorkbookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkbookError::DuplicateSheet(n) => write!(f, "duplicate sheet name {n:?}"),
            WorkbookError::BadSheetName(e) => write!(f, "{e}"),
            WorkbookError::NoSuchSheet(i) => write!(f, "no sheet with index {i}"),
            WorkbookError::Formula(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkbookError {}

impl From<FormulaError> for WorkbookError {
    fn from(e: FormulaError) -> Self {
        WorkbookError::Formula(e)
    }
}

/// Which stage of a batch failed — the two have opposite recovery rules,
/// so callers must not conflate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStage {
    /// The record at `index` failed to **apply**: records before it were
    /// applied (and routed), it and everything after were not.
    Apply,
    /// Every record **applied** to the live workbook, but durably
    /// logging the record at `index` failed: the WAL holds exactly the
    /// records before `index`. Re-applying anything would double-apply;
    /// appending later records would punch a hole in the log. The only
    /// safe continuations are rejecting further logged edits or
    /// rewriting the log wholesale (a compaction).
    Log,
}

/// One failed record inside [`Workbook::apply_batch`] /
/// [`PersistentWorkbook::log_batch`]; see [`BatchStage`] for what
/// `index` means in each case.
///
/// [`PersistentWorkbook::log_batch`]: crate::PersistentWorkbook::log_batch
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// Index of the failing record.
    pub index: usize,
    /// Which stage failed.
    pub stage: BatchStage,
    /// Why it failed.
    pub error: taco_store::StoreError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            BatchStage::Apply => "apply",
            BatchStage::Log => "log",
        };
        write!(f, "batch record {} failed to {stage}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {}

/// One shard: a named sheet with its own engine (cells + formula graph).
struct SheetShard<B: DependencyBackend> {
    name: SheetRef,
    engine: Engine<B>,
}

/// A multi-sheet workbook: one [`Engine`] shard per sheet plus the
/// inter-sheet edge table. See the module docs for the sharding model.
///
/// # Panics
///
/// [`SheetId`]s are dense indices handed out by `add_sheet*`; like slice
/// indexing, every method taking a `SheetId` panics (with a descriptive
/// message) when given an id that does not name a sheet of *this*
/// workbook. Resolve names with [`Workbook::sheet_id`] when in doubt.
pub struct Workbook<B: DependencyBackend = FormulaGraph> {
    sheets: Vec<SheetShard<B>>,
    /// Lower-cased sheet name → dense id.
    index: HashMap<String, usize>,
    /// The inter-sheet edge table.
    xedges: EdgeTable,
    /// Pre-registered metric handles, when attached to an obs hub
    /// ([`Workbook::attach_obs`]). Boxed so the common unattached case
    /// costs one pointer.
    obs: Option<Box<crate::obs::EngineObs>>,
}

impl<B: DependencyBackend> Default for Workbook<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl Workbook<FormulaGraph> {
    /// An empty workbook whose sheets use the full TACO compressed graph.
    pub fn with_taco() -> Self {
        Workbook::new()
    }

    /// Adds a sheet backed by a TACO-compressed formula graph.
    pub fn add_sheet(&mut self, name: &str) -> Result<SheetId, WorkbookError> {
        self.add_sheet_with(name, FormulaGraph::taco())
    }

    /// Builds a workbook straight from per-sheet dependency lists plus a
    /// cross-edge table — the graph-only ingestion path used by the
    /// workload generator and the scaling benchmarks (no cell values, so
    /// queries work but recalculation has nothing to evaluate). With
    /// `threads > 1` the per-sheet graphs are compressed concurrently on
    /// crossbeam scoped threads.
    pub fn from_sheet_deps(
        config: Config,
        sheets: &[(&str, &[Dependency])],
        cross: &[CrossEdge],
        threads: usize,
    ) -> Result<Self, WorkbookError> {
        let graphs: Vec<FormulaGraph> = if threads <= 1 || sheets.len() <= 1 {
            sheets
                .iter()
                .map(|(_, deps)| FormulaGraph::build(config.clone(), deps.iter().copied()))
                .collect()
        } else {
            let per = sheets.len().div_ceil(threads.min(sheets.len()));
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = sheets
                    .chunks(per)
                    .map(|chunk| {
                        let cfg = config.clone();
                        s.spawn(move |_| {
                            chunk
                                .iter()
                                .map(|(_, deps)| {
                                    FormulaGraph::build(cfg.clone(), deps.iter().copied())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("graph build thread")).collect()
            })
            .expect("graph build scope")
        };
        let mut wb = Workbook::new();
        for ((name, _), graph) in sheets.iter().zip(graphs) {
            wb.add_sheet_with(name, graph)?;
        }
        for e in cross {
            if e.src.0 >= wb.sheets.len() {
                return Err(WorkbookError::NoSuchSheet(e.src.0));
            }
            if e.dst.0 >= wb.sheets.len() {
                return Err(WorkbookError::NoSuchSheet(e.dst.0));
            }
            wb.xedges.insert(*e);
        }
        Ok(wb)
    }

    /// Applies a run of [`EditRecord`]s with **one** dirty-propagation
    /// pass: every record's local mutation is staged first (cell stores,
    /// formula graphs, and the cross-edge table mutate in record order,
    /// exactly as they would serially), then a single routing pass
    /// (`expand`) marks the union of their dirtiness. N queued edits cost
    /// one cross-sheet routing pass — and, at the caller's discretion, one
    /// recalculation — instead of N.
    ///
    /// Batched application is *result-identical* to applying the same
    /// records one at a time (same cell values after recalculation, same
    /// dirty sets, same graph): dirty-marking is monotone and the staged
    /// graph mutations are order-preserving, which
    /// `crates/engine/tests/batch.rs` property-tests across the
    /// persistence workload presets.
    ///
    /// On the first failing record the already-staged prefix is still
    /// routed — the workbook is left exactly as if the prefix had been
    /// applied serially — and the error names the failing index; later
    /// records are untouched.
    ///
    /// [`EditRecord`]: taco_store::EditRecord
    pub fn apply_batch(
        &mut self,
        records: &[taco_store::EditRecord],
    ) -> Result<WorkbookReceipt, BatchError> {
        let start = Instant::now();
        let mut jobs = Vec::new();
        let mut failed = None;
        for (index, rec) in records.iter().enumerate() {
            if let Err(error) = self.stage_edit(rec, &mut jobs) {
                failed = Some(BatchError { index, stage: BatchStage::Apply, error });
                break;
            }
        }
        let dirty = self.expand(jobs, true);
        match failed {
            Some(e) => Err(e),
            None => Ok(WorkbookReceipt { dirty, control_latency: start.elapsed() }),
        }
    }

    /// Stages one record's local mutation, accumulating its routing jobs
    /// (the batched half of [`Workbook::set_value`] and friends —
    /// everything except the trailing `expand`). `AddSheet` routes its
    /// dangling-reference rebind immediately, like the live path.
    fn stage_edit(
        &mut self,
        rec: &taco_store::EditRecord,
        jobs: &mut Vec<Job>,
    ) -> Result<(), taco_store::StoreError> {
        use taco_store::{EditRecord, StoreError};
        let sheet_of = |s: u32, count: usize| -> Result<SheetId, StoreError> {
            if (s as usize) < count {
                Ok(SheetId(s as usize))
            } else {
                Err(StoreError::InvalidRecord(format!("no sheet with index {s}")))
            }
        };
        match rec {
            EditRecord::SetValue { sheet, cell, value } => {
                let id = sheet_of(*sheet, self.sheets.len())?;
                if self.sheets[id.0].engine.formula_at(*cell).is_some() {
                    self.xedges.remove_dep(id, *cell);
                }
                let receipt = self.sheets[id.0].engine.set_value(*cell, value.clone());
                jobs.extend(Job::from_receipt(id.0, Range::cell(*cell), receipt));
            }
            EditRecord::SetFormula { sheet, cell, src } => {
                let id = sheet_of(*sheet, self.sheets.len())?;
                let formula =
                    Formula::parse(src).map_err(|e| StoreError::InvalidRecord(e.to_string()))?;
                jobs.extend(self.apply_formula(id.0, *cell, formula));
            }
            EditRecord::ClearRange { sheet, range } => {
                let id = sheet_of(*sheet, self.sheets.len())?;
                self.xedges.remove_deps_in(id, *range);
                let receipt = self.sheets[id.0].engine.clear_range(*range);
                jobs.extend(Job::from_receipt(id.0, *range, receipt));
            }
            EditRecord::AddSheet { name } => {
                self.add_sheet(name).map_err(|e| StoreError::InvalidRecord(e.to_string()))?;
            }
            EditRecord::Structural { sheet, op } => {
                let id = sheet_of(*sheet, self.sheets.len())?;
                self.stage_structural(id.0, *op, jobs);
            }
        }
        Ok(())
    }

    /// Inserts `n` rows before row `at` on `sheet`, workbook-wide: the
    /// sheet's own grid shifts, and every *other* sheet's formulas whose
    /// qualified references target the edited sheet are rewritten under
    /// the same transform (`Sheet1!A5` survives an insert above row 5 as
    /// `Sheet1!A8`; a reference whose whole range is deleted becomes
    /// `#REF!`). Rewrites are routed through the cross-edge index, so
    /// only actual referrers are touched.
    pub fn insert_rows(&mut self, sheet: SheetId, at: u32, n: u32) -> WorkbookReceipt {
        self.apply_structural(sheet, StructuralOp::InsertRows { at, n })
    }

    /// Deletes the rows `[at, at + n)` on `sheet`; see
    /// [`Self::insert_rows`] for the workbook-wide contract.
    pub fn delete_rows(&mut self, sheet: SheetId, at: u32, n: u32) -> WorkbookReceipt {
        self.apply_structural(sheet, StructuralOp::DeleteRows { at, n })
    }

    /// Inserts `n` columns before column `at` on `sheet`; see
    /// [`Self::insert_rows`] for the workbook-wide contract.
    pub fn insert_cols(&mut self, sheet: SheetId, at: u32, n: u32) -> WorkbookReceipt {
        self.apply_structural(sheet, StructuralOp::InsertCols { at, n })
    }

    /// Deletes the columns `[at, at + n)` on `sheet`; see
    /// [`Self::insert_rows`] for the workbook-wide contract.
    pub fn delete_cols(&mut self, sheet: SheetId, at: u32, n: u32) -> WorkbookReceipt {
        self.apply_structural(sheet, StructuralOp::DeleteCols { at, n })
    }

    /// Applies one structural edit to `sheet` and routes the fallout
    /// across the workbook (the general form behind
    /// [`Self::insert_rows`] and friends).
    pub fn apply_structural(&mut self, sheet: SheetId, op: StructuralOp) -> WorkbookReceipt {
        self.ensure_sheet(sheet);
        let start = Instant::now();
        let mut jobs = Vec::new();
        self.stage_structural(sheet.0, op, &mut jobs);
        let dirty = self.expand(jobs, true);
        WorkbookReceipt { dirty, control_latency: start.elapsed() }
    }

    /// The staged half of a structural edit: local transform, cross-edge
    /// remap, and referrer rewrites, with routing jobs accumulated for
    /// one trailing `expand`.
    fn stage_structural(&mut self, sid: usize, op: StructuralOp, jobs: &mut Vec<Job>) {
        // Snapshot the distinct foreign formula cells that read this
        // sheet *before* mutating anything: these are exactly the
        // formulas whose qualified references may need rewriting.
        let mut referrers: Vec<(usize, Cell)> = Vec::new();
        for e in self.xedges.outgoing(sid) {
            if !referrers.contains(&(e.dst.0, e.dep)) {
                referrers.push((e.dst.0, e.dep));
            }
        }
        // The cross table's row order reflects edit history, which a
        // snapshot round trip does not preserve. Rewrite order feeds the
        // destination graphs' compressors, so sort it: a replayed
        // structural edit must reproduce the live one bit for bit.
        referrers.sort_unstable();

        // Local transform. The receipt's dirty ranges are the formulas
        // whose value may change, so they double as hop origins: any
        // cross edge overlapping them routes dirtiness to other sheets.
        let receipt = self.sheets[sid].engine.apply_structural(op);
        jobs.extend(receipt.dirty.into_iter().map(|r| Job::expanded(sid, r)));

        // The edited sheet's own formulas moved; the edges they own
        // follow them. (Their referenced ranges live on other sheets and
        // are untouched by this edit.)
        self.xedges.remap_deps_on(sid, op);

        // Rewrite each referrer whose references into the edited sheet
        // actually move; identity rewrites are skipped so untouched
        // formulas keep their original source text.
        let own = self.sheets[sid].name.name().to_string();
        for (dsid, dep) in referrers {
            let Some(formula) = self.sheets[dsid].engine.formula_at(dep).cloned() else {
                continue;
            };
            let ast = formula.ast.map_refs(&mut |q| match &q.sheet {
                Some(s) if s.matches(&own) => {
                    let r = &q.rref;
                    op.map_range(r.range()).map(|nr| QualifiedRef {
                        sheet: q.sheet.clone(),
                        rref: RangeRef {
                            head: CellRef { cell: nr.head(), ..r.head },
                            tail: CellRef { cell: nr.tail(), ..r.tail },
                        },
                    })
                }
                _ => Some(q.clone()),
            });
            if ast == formula.ast {
                continue;
            }
            let refs = ast.collect_refs();
            jobs.extend(self.apply_formula(dsid, dep, Formula { src: ast.to_string(), ast, refs }));
            // The rewrite dirtied the referrer itself; the formula-edit
            // receipt only reports its dependents.
            jobs.push(Job::expanded(dsid, Range::cell(dep)));
        }
    }
}

impl<B: DependencyBackend> Workbook<B> {
    /// An empty workbook.
    pub fn new() -> Self {
        Workbook {
            sheets: Vec::new(),
            index: HashMap::new(),
            xedges: EdgeTable::default(),
            obs: None,
        }
    }

    /// Attaches this workbook to an observability hub: registers the
    /// engine metric set (labeled `book="<label>"`), hands every sheet
    /// engine a tracer for cell-level spans, and starts recording
    /// recalculation metrics. Registration allocates; everything the
    /// recalc hot paths do afterwards is allocation-free. Attaching a
    /// second time replaces the previous hub.
    pub fn attach_obs(&mut self, obs: &taco_obs::Obs, label: &str) {
        let eo = crate::obs::EngineObs::new(obs, label);
        for shard in &mut self.sheets {
            shard.engine.set_tracer(Some(eo.tracer.clone()));
        }
        self.obs = Some(Box::new(eo));
    }

    /// Whether [`Workbook::attach_obs`] has been called.
    pub fn obs_attached(&self) -> bool {
        self.obs.is_some()
    }

    /// Adds a sheet around the given backend. Names are validated like
    /// formula qualifiers and must be unique case-insensitively.
    ///
    /// Existing formulae that already reference the new name (written
    /// while it resolved to `#REF!`) are re-bound: their cross edges are
    /// registered and the cells re-marked dirty, so the next
    /// recalculation sees the new sheet's values.
    pub fn add_sheet_with(&mut self, name: &str, backend: B) -> Result<SheetId, WorkbookError> {
        let id = self.add_sheet_unbound(name, backend)?;
        self.rebind_dangling_refs(id.0);
        Ok(id)
    }

    /// [`Self::add_sheet_with`] minus the dangling-reference rebind: the
    /// persistence restore path adds sheets whose cross edges and dirty
    /// sets are restored verbatim from the image — re-running the rebind
    /// would duplicate cross edges and spuriously re-dirty formulae that
    /// forward-referenced a later sheet.
    pub(crate) fn add_sheet_unbound(
        &mut self,
        name: &str,
        backend: B,
    ) -> Result<SheetId, WorkbookError> {
        let sref = SheetRef::new(name).map_err(WorkbookError::BadSheetName)?;
        if self.index.contains_key(&sref.key()) {
            return Err(WorkbookError::DuplicateSheet(name.to_string()));
        }
        let id = self.sheets.len();
        let mut engine = Engine::new(backend);
        engine.set_sheet_name(sref.name().to_string());
        if let Some(o) = self.obs.as_deref() {
            engine.set_tracer(Some(o.tracer.clone()));
        }
        self.index.insert(sref.key(), id);
        self.sheets.push(SheetShard { name: sref, engine });
        self.xedges.add_sheet();
        Ok(SheetId(id))
    }

    /// Registers cross edges for formulae whose qualified references only
    /// now resolve (the sheet with this id was just added), and routes the
    /// resulting dirtiness.
    fn rebind_dangling_refs(&mut self, new_id: usize) {
        let name = &self.sheets[new_id].name;
        let mut edges = Vec::new();
        for (sid, shard) in self.sheets.iter().enumerate() {
            for (&cell, content) in shard.engine.cells_map() {
                let Some(formula) = content.formula() else { continue };
                // One edge per distinct range the formula reads — the
                // same dedup `apply_formula` applies on the live path.
                let mut added: Vec<Range> = Vec::new();
                for q in &formula.refs {
                    if q.sheet.as_ref().is_some_and(|s| s.matches(name.name()))
                        && !added.contains(&q.range())
                    {
                        added.push(q.range());
                        edges.push(CrossEdge {
                            src: SheetId(new_id),
                            prec: q.range(),
                            dst: SheetId(sid),
                            dep: cell,
                        });
                    }
                }
            }
        }
        if edges.is_empty() {
            return;
        }
        let mut jobs = Vec::with_capacity(edges.len());
        for e in edges {
            self.sheets[e.dst.0].engine.mark_cell_dirty(e.dep);
            jobs.push(Job::hop(e.dst.0, e.dep));
            self.xedges.insert(e);
        }
        let _ = self.expand(jobs, true);
    }

    /// Number of sheets.
    pub fn sheet_count(&self) -> usize {
        self.sheets.len()
    }

    /// Validates a caller-supplied id (see the type-level panic note).
    #[track_caller]
    fn ensure_sheet(&self, id: SheetId) {
        assert!(
            id.0 < self.sheets.len(),
            "{id} does not exist in this workbook ({} sheets; ids are dense — resolve names \
             with sheet_id())",
            self.sheets.len()
        );
    }

    /// Resolves a sheet name (case-insensitive).
    pub fn sheet_id(&self, name: &str) -> Option<SheetId> {
        self.index.get(&name.to_ascii_lowercase()).copied().map(SheetId)
    }

    /// The name of a sheet.
    pub fn sheet_name(&self, id: SheetId) -> &str {
        self.ensure_sheet(id);
        self.sheets[id.0].name.name()
    }

    /// Read access to one sheet's engine (values, graph stats).
    pub fn sheet(&self, id: SheetId) -> &Engine<B> {
        self.ensure_sheet(id);
        &self.sheets[id.0].engine
    }

    /// Mutable shard access for the persistence layer (restores cells and
    /// dirty marks directly, bypassing edit routing).
    pub(crate) fn engine_mut(&mut self, i: usize) -> &mut Engine<B> {
        &mut self.sheets[i].engine
    }

    /// Inserts a cross edge without routing (persistence restore: the
    /// edge's dirtiness is already captured by the restored dirty sets).
    /// Endpoints must name existing sheets.
    pub(crate) fn insert_cross_edge_raw(&mut self, e: CrossEdge) {
        debug_assert!(e.src.0 < self.sheets.len() && e.dst.0 < self.sheets.len());
        self.xedges.insert(e);
    }

    /// Number of inter-sheet edges currently routed.
    pub fn cross_edge_count(&self) -> usize {
        self.xedges.len()
    }

    /// The inter-sheet edge table (routing diagnostics).
    pub fn cross_edges(&self) -> impl Iterator<Item = &CrossEdge> {
        self.xedges.iter()
    }

    /// Current value of a cell.
    pub fn value(&self, id: SheetId, cell: Cell) -> Value {
        self.ensure_sheet(id);
        self.sheets[id.0].engine.value(cell)
    }

    /// The formula text of a cell, if it is a formula cell.
    pub fn formula_of(&self, id: SheetId, cell: Cell) -> Option<String> {
        self.ensure_sheet(id);
        self.sheets[id.0].engine.formula_of(cell)
    }

    /// Cells awaiting recalculation, across all sheets.
    pub fn dirty_count(&self) -> usize {
        self.sheets.iter().map(|s| s.engine.dirty_count()).sum()
    }

    // ---- edits ---------------------------------------------------------

    /// Sets a pure value, routing dirtiness across sheets.
    pub fn set_value(&mut self, id: SheetId, cell: Cell, v: Value) -> WorkbookReceipt {
        self.ensure_sheet(id);
        let start = Instant::now();
        // Overwriting a formula cell drops its cross-sheet dependencies
        // (a plain value cell cannot own cross edges — skip the scan).
        if self.sheets[id.0].engine.formula_at(cell).is_some() {
            self.xedges.remove_dep(id, cell);
        }
        let receipt = self.sheets[id.0].engine.set_value(cell, v);
        let dirty = self.expand(Job::from_receipt(id.0, Range::cell(cell), receipt), true);
        WorkbookReceipt { dirty, control_latency: start.elapsed() }
    }

    /// Sets a formula (leading `=` optional); same-sheet references go to
    /// the sheet's own graph, qualified ones into the cross-edge table.
    pub fn set_formula(
        &mut self,
        id: SheetId,
        cell: Cell,
        src: &str,
    ) -> Result<WorkbookReceipt, WorkbookError> {
        self.ensure_sheet(id);
        let formula = Formula::parse(src)?;
        let start = Instant::now();
        let jobs = self.apply_formula(id.0, cell, formula);
        let dirty = self.expand(jobs, true);
        Ok(WorkbookReceipt { dirty, control_latency: start.elapsed() })
    }

    /// Autofills the formula at `src` over `targets`, exactly like
    /// [`Engine::autofill`] but with cross-sheet references preserved
    /// (their sheet qualifier is pinned under the fill) and routed.
    pub fn autofill(
        &mut self,
        id: SheetId,
        src: Cell,
        targets: Range,
    ) -> Result<WorkbookReceipt, CellError> {
        self.ensure_sheet(id);
        let formula = self.sheets[id.0].engine.formula_at(src).cloned().ok_or(CellError::Value)?;
        let start = Instant::now();
        let mut jobs = Vec::new();
        for filled in autofill::autofill(src, &formula, targets) {
            jobs.extend(self.apply_formula(id.0, filled.cell, filled.formula));
        }
        let dirty = self.expand(jobs, true);
        Ok(WorkbookReceipt { dirty, control_latency: start.elapsed() })
    }

    /// Clears every cell in `range` on one sheet, detaching both local and
    /// cross-sheet dependencies of the cleared formulae.
    pub fn clear_range(&mut self, id: SheetId, range: Range) -> WorkbookReceipt {
        self.ensure_sheet(id);
        let start = Instant::now();
        self.xedges.remove_deps_in(id, range);
        let receipt = self.sheets[id.0].engine.clear_range(range);
        let dirty = self.expand(Job::from_receipt(id.0, range, receipt), true);
        WorkbookReceipt { dirty, control_latency: start.elapsed() }
    }

    /// Installs a parsed formula: registers cross edges for foreign
    /// qualified references, hands the rest to the sheet engine, and
    /// returns the routing jobs for the edit.
    fn apply_formula(&mut self, sid: usize, cell: Cell, formula: Formula) -> Vec<Job> {
        if self.sheets[sid].engine.formula_at(cell).is_some() {
            self.xedges.remove_dep(SheetId(sid), cell);
        }
        let mut added: Vec<(usize, Range)> = Vec::new();
        for q in &formula.refs {
            let Some(sheet) = &q.sheet else { continue };
            if self.sheets[sid].name.matches(sheet.name()) {
                continue; // self-qualified: the engine stores it locally
            }
            if let Some(&src) = self.index.get(&sheet.key()) {
                // One edge per distinct (sheet, range) the formula reads.
                if added.contains(&(src, q.range())) {
                    continue;
                }
                added.push((src, q.range()));
                self.xedges.insert(CrossEdge {
                    src: SheetId(src),
                    prec: q.range(),
                    dst: SheetId(sid),
                    dep: cell,
                });
            }
            // Unknown sheets get no edge: the evaluator yields #REF!
            // until a sheet of that name appears (see
            // `rebind_dangling_refs`).
        }
        let receipt = self.sheets[sid].engine.set_parsed_formula(cell, formula);
        Job::from_receipt(sid, Range::cell(cell), receipt)
    }

    // ---- queries -------------------------------------------------------

    /// All direct and transitive dependents of `src!r`, across sheets.
    pub fn find_dependents(&mut self, id: SheetId, r: Range) -> Vec<(SheetId, Range)> {
        self.ensure_sheet(id);
        self.expand(vec![Job::probe(id.0, r)], false)
    }

    /// All direct and transitive precedents of `dst!r`, across sheets.
    pub fn find_precedents(&mut self, id: SheetId, r: Range) -> Vec<(SheetId, Range)> {
        self.ensure_sheet(id);
        let Workbook { sheets, xedges, .. } = self;
        let mut out: Vec<(SheetId, Range)> = Vec::new();
        let mut used: HashSet<(usize, usize)> = HashSet::new();
        let mut queue: VecDeque<(usize, Range)> = VecDeque::from([(id.0, r)]);
        while let Some((sid, seed)) = queue.pop_front() {
            let local = sheets[sid].engine.find_precedents(seed);
            for range in std::iter::once(seed).chain(local.iter().copied()) {
                for (i, e) in xedges.incoming(sid).iter().enumerate() {
                    if range.contains_cell(e.dep) && used.insert((sid, i)) {
                        out.push((e.src, e.prec));
                        queue.push_back((e.src.0, e.prec));
                    }
                }
            }
            out.extend(local.into_iter().map(|range| (SheetId(sid), range)));
        }
        out.sort_unstable_by_key(|&(s, range)| (s, range.head(), range.tail()));
        out.dedup();
        out
    }

    /// Transitive dependents of the queued jobs, hopping the cross-edge
    /// table between sheets; with `mark` the discovered formula cells are
    /// also marked dirty (the edit path). Jobs whose local dependents the
    /// caller already computed (engine edit receipts) skip the second
    /// graph query — the control-latency path pays each per-sheet query
    /// once.
    fn expand(&mut self, jobs: Vec<Job>, mark: bool) -> Vec<(SheetId, Range)> {
        let Workbook { sheets, xedges, .. } = self;
        let mut out: Vec<(SheetId, Range)> = Vec::new();
        // Each cross edge fires at most once per expansion, which both
        // bounds the loop and deduplicates hops.
        let mut hopped: HashSet<(usize, Cell)> = HashSet::new();
        let mut queue: VecDeque<Job> = VecDeque::from(jobs);
        while let Some(job) = queue.pop_front() {
            let Job { sid, range, expand_local, report } = job;
            if expand_local {
                let local = sheets[sid].engine.find_dependents(range);
                if mark {
                    sheets[sid].engine.mark_ranges_dirty(&local);
                }
                queue.extend(local.into_iter().map(|r| Job::expanded(sid, r)));
            }
            if report {
                out.push((SheetId(sid), range));
            }
            for e in xedges.outgoing(sid) {
                if e.prec.overlaps(&range) && hopped.insert((e.dst.0, e.dep)) {
                    if mark {
                        sheets[e.dst.0].engine.mark_cell_dirty(e.dep);
                    }
                    queue.push_back(Job::hop(e.dst.0, e.dep));
                }
            }
        }
        out.sort_unstable_by_key(|&(s, range)| (s, range.head(), range.tail()));
        out.dedup();
        out
    }

    // ---- recalculation -------------------------------------------------

    /// Topological levels of the sheet graph induced by the cross-edge
    /// table: every cross edge either goes from an earlier level to a
    /// later one, or connects two members of the same strongly connected
    /// component (a cross-sheet cycle). Sheets within a level are
    /// independent. The levels are those of the **SCC condensation**
    /// (longest-path), with a multi-sheet SCC occupying one consecutive
    /// singleton level per member in id order — so everything downstream
    /// of a cycle still evaluates strictly after every cycle member.
    pub fn sheet_levels(&self) -> Vec<Vec<SheetId>> {
        self.levels().into_iter().map(|l| l.into_iter().map(SheetId).collect()).collect()
    }

    fn levels(&self) -> Vec<Vec<usize>> {
        let n = self.sheets.len();
        let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for e in self.xedges.iter() {
            if e.src != e.dst {
                succ[e.src.0].insert(e.dst.0);
            }
        }
        // Strongly connected components via mutual reachability (sheet
        // counts are small; BFS per sheet is plenty).
        let reach: Vec<Vec<bool>> = (0..n)
            .map(|start| {
                let mut seen = vec![false; n];
                let mut queue = VecDeque::from([start]);
                while let Some(u) = queue.pop_front() {
                    for &v in &succ[u] {
                        if !seen[v] {
                            seen[v] = true;
                            queue.push_back(v);
                        }
                    }
                }
                seen
            })
            .collect();
        let mut comp_of = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            if comp_of[i] != usize::MAX {
                continue;
            }
            let c = comps.len();
            let members: Vec<usize> =
                (i..n).filter(|&j| j == i || (reach[i][j] && reach[j][i])).collect();
            for &m in &members {
                comp_of[m] = c;
            }
            comps.push(members);
        }
        // Longest-path base level per component over the condensation
        // (acyclic, so relaxation converges); a k-sheet component spans k
        // consecutive singleton levels, and successors start after it.
        let mut base = vec![0usize; comps.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..n {
                for &v in &succ[u] {
                    let (cu, cv) = (comp_of[u], comp_of[v]);
                    if cu != cv && base[cv] < base[cu] + comps[cu].len() {
                        base[cv] = base[cu] + comps[cu].len();
                        changed = true;
                    }
                }
            }
        }
        let height =
            comps.iter().zip(&base).map(|(members, b)| b + members.len()).max().unwrap_or(0);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); height];
        for (members, b) in comps.iter().zip(&base) {
            // Members are already in ascending id order; a trivial
            // component shares its level with independent peers, a cyclic
            // one unrolls into singleton sub-levels.
            for (j, &m) in members.iter().enumerate() {
                levels[b + j].push(m);
            }
        }
        levels.retain(|l| !l.is_empty());
        for level in &mut levels {
            level.sort_unstable();
        }
        levels
    }

    /// Sets the recalculation profiler mode on every sheet (see
    /// [`crate::ProfileMode`]). `Off` (the default) costs nothing.
    pub fn set_profile(&mut self, mode: crate::ProfileMode) {
        for s in &mut self.sheets {
            s.engine.set_profile(mode);
        }
    }

    /// The merged profile of the most recent recalculation: every
    /// sheet's per-level wall times concatenated in sheet order, plus
    /// the top-K hottest cells across all sheets (hottest first). Empty
    /// when profiling is off.
    pub fn profile_report(&self) -> crate::ProfileReport {
        let mut out = crate::ProfileReport::default();
        for s in &self.sheets {
            let r = s.engine.profile_report();
            out.levels.extend(r.levels);
            out.hotspots.extend(r.hotspots);
        }
        out.hotspots.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.hotspots.truncate(crate::PROFILE_TOP_K);
        out
    }

    /// Recalculates every dirty formula cell in the workbook. Both modes
    /// walk the same sheet levels and produce bit-identical values; see
    /// the module docs for the scheduling model. Returns the number of
    /// cells evaluated.
    pub fn recalculate(&mut self, mode: RecalcMode) -> usize
    where
        B: Send,
    {
        let timing = self
            .obs
            .as_deref()
            .map(|_| (Instant::now(), self.sheets.iter().map(|s| s.engine.dirty_count()).sum()));
        // Tree-building span: per-level spans recorded below nest under
        // it, and it nests under the calling thread's ambient context
        // (the request span when a service worker drives this).
        let mut recalc_span = self.obs.as_deref().map(|o| o.recalc_guard());
        // Fresh profiler buffers: a clean sheet skipped below must not
        // report the previous pass's data.
        for s in &mut self.sheets {
            s.engine.profile_clear();
        }
        let levels = self.levels();
        let Workbook { sheets, index, xedges, obs } = self;
        let mut total = 0usize;
        let mut levels_walked = 0usize;
        for (level_idx, level) in levels.into_iter().enumerate() {
            let work: Vec<usize> =
                level.into_iter().filter(|&i| sheets[i].engine.dirty_count() > 0).collect();
            if work.is_empty() {
                continue;
            }
            levels_walked += 1;
            let mut level_span = obs.as_deref().map(|o| {
                let mut g = o.sheet_level_guard();
                g.a = level_idx as u64;
                g.b = work.len() as u64;
                g
            });
            // Import snapshots: the foreign values each dirty sheet's
            // cross references cover, read while no shard is borrowed
            // mutably. Precedent sheets live in earlier levels, so their
            // values are final by now.
            let mut imports: HashMap<usize, SheetImports<'_>> = work
                .iter()
                .map(|&t| {
                    let mut values: HashMap<(usize, Cell), Value> = HashMap::new();
                    // Only edges whose formula is actually dirty matter:
                    // clean cells are not re-evaluated this pass.
                    for e in xedges
                        .incoming(t)
                        .iter()
                        .filter(|e| e.src.0 != t && sheets[t].engine.is_cell_dirty(e.dep))
                    {
                        let src = sheets[e.src.0].engine.cells_map();
                        if (e.prec.area() as usize) <= src.len() {
                            for c in e.prec.cells() {
                                if let Some(content) = src.get(&c) {
                                    values.insert((e.src.0, c), content.value().clone());
                                }
                            }
                        } else {
                            for (&c, content) in src {
                                if e.prec.contains_cell(c) {
                                    values.insert((e.src.0, c), content.value().clone());
                                }
                            }
                        }
                    }
                    (t, SheetImports::new(index, values))
                })
                .collect();
            // Disjoint mutable borrows of exactly the level's shards, in
            // ascending sheet order (the deterministic serial order).
            let mut jobs: Vec<(&mut SheetShard<B>, SheetImports<'_>)> = sheets
                .iter_mut()
                .enumerate()
                .filter_map(|(i, shard)| imports.remove(&i).map(|imp| (shard, imp)))
                .collect();
            match mode {
                RecalcMode::Serial => {
                    for (shard, imp) in jobs.iter_mut() {
                        total += shard.engine.recalculate_with(&*imp);
                    }
                }
                RecalcMode::CellParallel { threads } => {
                    // Sheets stay in ascending serial order; the
                    // parallelism lives inside each sheet's level
                    // schedule, so one giant sheet still fans out.
                    for (shard, imp) in jobs.iter_mut() {
                        total += shard.engine.recalculate_leveled_with(&*imp, threads);
                    }
                }
                RecalcMode::Parallel { threads } => {
                    let t = threads.clamp(1, jobs.len());
                    let per = jobs.len().div_ceil(t);
                    total += crossbeam::thread::scope(|s| {
                        let handles: Vec<_> = jobs
                            .chunks_mut(per)
                            .map(|chunk| {
                                s.spawn(move |_| {
                                    let mut n = 0usize;
                                    for (shard, imp) in chunk.iter_mut() {
                                        n += shard.engine.recalculate_with(&*imp);
                                    }
                                    n
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("recalc worker")).sum::<usize>()
                    })
                    .expect("recalc scope");
                }
            }
            level_span.take();
        }
        if let Some(g) = recalc_span.as_mut() {
            g.a = total as u64;
            g.b = levels_walked as u64;
        }
        drop(recalc_span);
        if let (Some(o), Some((start, dirty_before))) = (obs.as_deref_mut(), timing) {
            o.on_recalc(mode, start, total, levels_walked, dirty_before);
            for s in sheets.iter() {
                let (levels, cells) = s.engine.profile_slices();
                o.on_profile(levels, cells);
            }
            let mut it = sheets.iter();
            o.refresh_graph_gauges(xedges.len(), |scratch| {
                it.next()
                    .map(|s| (s.engine.graph().num_edges(), s.engine.graph().graph_stats(scratch)))
            });
        }
        total
    }

    /// Demand-driven recalculation: evaluates **only** the transitive
    /// dirty precedents of `viewport` on sheet `id` (including the
    /// viewport's own dirty cells), leaving every other dirty cell lazily
    /// dirty for a later full pass. The needed set is expanded with a
    /// priority queue over `(sheet, cell)` — local hops via each dirty
    /// formula's reference set, cross-sheet hops via the cross-edge
    /// table — then the engines' dirty sets are restricted to it, the
    /// normal level-scheduled recalculation runs, and the deferred
    /// remainder is restored.
    ///
    /// Every viewport cell ends up with exactly the value a full
    /// recalculation would give it: clean cells are already final (the
    /// dirty invariant), and needed cells see precedents that are either
    /// needed (evaluated first by the schedule) or clean. A follow-up
    /// full recalculation converges to the same state as if demand mode
    /// had never been used, because the deferred cells re-evaluate
    /// against their precedents' final values. Returns the number of
    /// cells evaluated.
    pub fn recalc_demand(
        &mut self,
        id: SheetId,
        viewport: Range,
        mode: RecalcMode,
    ) -> Result<usize, WorkbookError>
    where
        B: Send,
    {
        if id.0 >= self.sheets.len() {
            return Err(WorkbookError::NoSuchSheet(id.0));
        }
        // Guard wrapping the whole demand pass: the expansion span and
        // the inner `workbook.recalc` tree both nest under it.
        let mut demand_span = self.obs.as_deref().map(|o| o.demand_guard());
        let expand_timing = self.obs.as_deref().map(|o| (Instant::now(), o.now_ns()));
        // Sorted per-sheet dirty views for the precedent walk.
        let dirty_sorted: Vec<Vec<Cell>> =
            self.sheets.iter().map(|s| s.engine.dirty_cells_sorted()).collect();

        let mut needed: Vec<HashSet<Cell>> = vec![HashSet::new(); self.sheets.len()];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, Cell)>> =
            std::collections::BinaryHeap::new();
        for &c in dirty_sorted[id.0].iter().filter(|c| viewport.contains_cell(**c)) {
            heap.push(std::cmp::Reverse((id.0, c)));
        }
        let mut idxs: Vec<u32> = Vec::new();
        while let Some(std::cmp::Reverse((sid, cell))) = heap.pop() {
            if !needed[sid].insert(cell) {
                continue;
            }
            // Local dirty precedents, from the formula's reference set.
            idxs.clear();
            self.sheets[sid].engine.dirty_precedents_into(cell, &dirty_sorted[sid], &mut idxs);
            for &i in &idxs {
                let p = dirty_sorted[sid][i as usize];
                if !needed[sid].contains(&p) {
                    heap.push(std::cmp::Reverse((sid, p)));
                }
            }
            // Cross-sheet dirty precedents, from the edge table.
            for e in self.xedges.incoming(sid).iter().filter(|e| e.dep == cell) {
                let src = e.src.0;
                for &p in dirty_sorted[src].iter().filter(|p| e.prec.contains_cell(**p)) {
                    if !needed[src].contains(&p) {
                        heap.push(std::cmp::Reverse((src, p)));
                    }
                }
            }
        }

        let closure: usize = needed.iter().map(HashSet::len).sum();
        if let (Some(o), Some((start, start_ns))) = (self.obs.as_deref(), expand_timing) {
            o.on_demand_expand(start, start_ns, closure);
        }
        if let Some(g) = demand_span.as_mut() {
            g.a = closure as u64;
        }

        // Restrict, recalculate with the normal schedule, restore.
        let mut deferred: Vec<(usize, Vec<Cell>)> = Vec::new();
        for (sid, keep) in needed.iter().enumerate() {
            let removed = self.sheets[sid].engine.restrict_dirty(keep);
            if !removed.is_empty() {
                deferred.push((sid, removed));
            }
        }
        let evaluated = self.recalculate(mode);
        for (sid, cells) in deferred {
            self.sheets[sid].engine.restore_dirty(&cells);
        }
        drop(demand_span);
        Ok(evaluated)
    }

    /// Injects a volatile-function clock into every sheet and re-dirties
    /// volatile formulae workbook-wide, routing their dependents across
    /// sheets. Returns the number of volatile formula cells found.
    pub fn set_clock(&mut self, clock: EvalClock) -> usize {
        let mut jobs = Vec::new();
        let mut total = 0usize;
        for sid in 0..self.sheets.len() {
            let vols = self.sheets[sid].engine.volatile_cells();
            self.sheets[sid].engine.set_clock_value(clock);
            total += vols.len();
            for c in vols {
                self.sheets[sid].engine.mark_cell_dirty(c);
                jobs.push(Job::probe(sid, Range::cell(c)));
            }
        }
        self.expand(jobs, true);
        total
    }

    /// Total formula evaluations across all sheets since the workbook was
    /// created (the counter demand-driven tests assert on).
    pub fn evaluated_total(&self) -> u64 {
        self.sheets.iter().map(|s| s.engine.evaluated_total()).sum()
    }
}

/// Per-sheet import snapshot: foreign values visible during one level's
/// evaluation. Unknown sheet names resolve to `#REF!`; known sheets fall
/// back to `Empty` for cells outside any imported (referenced) range.
struct SheetImports<'a> {
    index: &'a HashMap<String, usize>,
    values: HashMap<(usize, Cell), Value>,
    /// Qualifier → sheet id, memoized: a formula reading a whole foreign
    /// range resolves its qualifier once, not once per cell (the name
    /// lookup requires an owned lowercased key, which would otherwise
    /// allocate on every read of the recalc hot path). A mutex rather
    /// than a `RefCell` because cell-level parallel recalculation shares
    /// one import snapshot across a level's worker threads; the lock is
    /// uncontended after the first read of each qualifier warms the map.
    resolved: Mutex<HashMap<String, Option<usize>>>,
}

impl<'a> SheetImports<'a> {
    fn new(index: &'a HashMap<String, usize>, values: HashMap<(usize, Cell), Value>) -> Self {
        SheetImports { index, values, resolved: Mutex::new(HashMap::new()) }
    }
}

impl ExternalSheets for SheetImports<'_> {
    fn value(&self, sheet: &str, cell: Cell) -> Value {
        let mut resolved = self.resolved.lock();
        let sid = match resolved.get(sheet) {
            Some(&sid) => sid,
            None => {
                let sid = self.index.get(&sheet.to_ascii_lowercase()).copied();
                resolved.insert(sheet.to_string(), sid);
                sid
            }
        };
        match sid {
            None => Value::Error(CellError::Ref),
            Some(sid) => self.values.get(&(sid, cell)).cloned().unwrap_or(Value::Empty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn n(v: f64) -> Value {
        Value::Number(v)
    }

    /// Data on `Data`, rollup on `Summary`, including a quoted name.
    fn two_sheet_book() -> (Workbook, SheetId, SheetId) {
        let mut wb = Workbook::with_taco();
        let data = wb.add_sheet("Data").unwrap();
        let summary = wb.add_sheet("My Summary").unwrap();
        for row in 1..=4u32 {
            wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
        }
        wb.set_formula(summary, c("A1"), "=SUM(Data!A1:A4)").unwrap();
        wb.set_formula(summary, c("B1"), "=A1*2").unwrap();
        (wb, data, summary)
    }

    #[test]
    fn cross_sheet_formula_evaluates() {
        let (mut wb, _, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), n(10.0));
        assert_eq!(wb.value(summary, c("B1")), n(20.0));
        assert_eq!(wb.cross_edge_count(), 1);
    }

    #[test]
    fn quoted_sheet_names_resolve() {
        let (mut wb, data, _summary) = two_sheet_book();
        wb.set_formula(data, c("C1"), "='My Summary'!A1+1").unwrap();
        // Data!C1 reads Summary!A1 — a sheet-level cycle, so Data (lower
        // id) evaluates first and sees Summary!A1 still empty.
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("C1")), n(1.0));
        // Re-dirtying the chain advances it one pass: now Summary!A1 = 10
        // is visible.
        wb.set_value(data, c("A1"), n(1.0));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("C1")), n(11.0));
    }

    #[test]
    fn repeated_refs_register_one_edge() {
        let (mut wb, _, summary) = two_sheet_book();
        wb.set_formula(summary, c("D1"), "=Data!A1+Data!A1*2").unwrap();
        // One edge for SUM(Data!A1:A4) in the fixture, one for Data!A1.
        assert_eq!(wb.cross_edge_count(), 2);
    }

    #[test]
    fn unknown_sheet_is_ref_error() {
        let (mut wb, _, summary) = two_sheet_book();
        wb.set_formula(summary, c("C1"), "=Nope!A1+1").unwrap();
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("C1")), Value::Error(CellError::Ref));
    }

    #[test]
    fn self_qualified_reference_is_local() {
        let (mut wb, data, _) = two_sheet_book();
        wb.set_formula(data, c("B1"), "=Data!A1*100").unwrap();
        assert_eq!(wb.cross_edge_count(), 1, "self-reference must not add a cross edge");
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("B1")), n(100.0));
        // And it participates in local dirty propagation.
        let receipt = wb.set_value(data, c("A1"), n(7.0));
        assert!(receipt.dirty.iter().any(|&(s, range)| s == data && range.contains_cell(c("B1"))));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("B1")), n(700.0));
    }

    #[test]
    fn edits_route_dirtiness_across_sheets() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        let receipt = wb.set_value(data, c("A1"), n(100.0));
        // Summary!A1 (direct) and Summary!B1 (transitive) both dirty.
        assert!(receipt
            .dirty
            .iter()
            .any(|&(s, range)| s == summary && range.contains_cell(c("A1"))));
        assert!(receipt
            .dirty
            .iter()
            .any(|&(s, range)| s == summary && range.contains_cell(c("B1"))));
        assert_eq!(receipt.sheets_touched(), 1);
        assert_eq!(wb.dirty_count(), 2);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), n(109.0));
        assert_eq!(wb.value(summary, c("B1")), n(218.0));
    }

    #[test]
    fn queries_hop_sheets_both_ways() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        let deps = wb.find_dependents(data, r("A2"));
        assert!(deps.iter().any(|&(s, range)| s == summary && range.contains_cell(c("A1"))));
        assert!(deps.iter().any(|&(s, range)| s == summary && range.contains_cell(c("B1"))));

        let precs = wb.find_precedents(summary, r("B1"));
        assert!(precs.iter().any(|&(s, range)| s == summary && range.contains_cell(c("A1"))));
        assert!(precs.iter().any(|&(s, range)| s == data && range == r("A1:A4")));
    }

    #[test]
    fn clear_detaches_cross_edges() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        wb.clear_range(summary, r("A1"));
        assert_eq!(wb.cross_edge_count(), 0);
        let receipt = wb.set_value(data, c("A1"), n(50.0));
        assert!(
            !receipt.dirty.iter().any(|&(s, range)| s == summary && range.contains_cell(c("A1"))),
            "cleared formula must no longer be routed to: {:?}",
            receipt.dirty
        );
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), Value::Empty);
    }

    #[test]
    fn autofill_carries_sheet_qualifiers() {
        let mut wb = Workbook::with_taco();
        let data = wb.add_sheet("Data").unwrap();
        let out = wb.add_sheet("Out").unwrap();
        for row in 1..=6u32 {
            wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
        }
        wb.set_formula(out, c("A1"), "=Data!A1*10").unwrap();
        wb.autofill(out, c("A1"), r("A2:A6")).unwrap();
        assert_eq!(wb.formula_of(out, c("A4")).unwrap(), "Data!A4*10");
        assert_eq!(wb.cross_edge_count(), 6);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(out, c("A6")), n(60.0));
    }

    #[test]
    fn levels_follow_cross_edges() {
        let mut wb = Workbook::with_taco();
        let s0 = wb.add_sheet("S0").unwrap();
        let s1 = wb.add_sheet("S1").unwrap();
        let s2 = wb.add_sheet("S2").unwrap();
        let s3 = wb.add_sheet("S3").unwrap();
        // S1 and S2 read S0; S3 reads S1 and S2.
        wb.set_value(s0, c("A1"), n(1.0));
        wb.set_formula(s1, c("A1"), "=S0!A1+1").unwrap();
        wb.set_formula(s2, c("A1"), "=S0!A1+2").unwrap();
        wb.set_formula(s3, c("A1"), "=S1!A1+S2!A1").unwrap();
        let levels = wb.sheet_levels();
        assert_eq!(levels, vec![vec![s0], vec![s1, s2], vec![s3]]);
        let evaluated = wb.recalculate(RecalcMode::Parallel { threads: 2 });
        assert_eq!(evaluated, 3);
        assert_eq!(wb.value(s3, c("A1")), n(5.0));
    }

    #[test]
    fn serial_and_parallel_recalc_are_identical() {
        let build = || {
            let mut wb = Workbook::with_taco();
            let ids: Vec<SheetId> =
                (0..8).map(|i| wb.add_sheet(&format!("Sheet {i}")).unwrap()).collect();
            for (k, &id) in ids.iter().enumerate() {
                for row in 1..=20u32 {
                    wb.set_value(id, Cell::new(1, row), n(f64::from(row) + k as f64));
                }
                wb.set_formula(id, c("B1"), "=SUM($A$1:A1)").unwrap();
                wb.autofill(id, c("B1"), r("B2:B20")).unwrap();
                if k > 0 {
                    let prev = format!("'Sheet {}'", k - 1);
                    wb.set_formula(id, c("C1"), &format!("={prev}!C1+B20")).unwrap();
                } else {
                    wb.set_formula(id, c("C1"), "=B20").unwrap();
                }
            }
            wb
        };
        let mut serial = build();
        let mut parallel = build();
        let evaluated_s = serial.recalculate(RecalcMode::Serial);
        let evaluated_p = parallel.recalculate(RecalcMode::Parallel { threads: 4 });
        assert_eq!(evaluated_s, evaluated_p);
        let last = serial.sheet_id("Sheet 7").unwrap();
        assert_eq!(serial.value(last, c("C1")), parallel.value(last, c("C1")));
        for i in 0..8 {
            let id = SheetId(i);
            for row in 1..=20u32 {
                let cell = Cell::new(2, row);
                assert_eq!(serial.value(id, cell), parallel.value(id, cell), "{id} B{row}");
            }
        }
        // The chain accumulated across all eight sheets.
        assert_ne!(serial.value(last, c("C1")), Value::Empty);
    }

    #[test]
    fn graph_only_ingestion_builds_and_queries() {
        use taco_core::Dependency;
        let deps0: Vec<Dependency> = (2..=40u32)
            .map(|row| Dependency::new(Range::cell(Cell::new(1, row - 1)), Cell::new(1, row)))
            .collect();
        let deps1: Vec<Dependency> =
            vec![Dependency::new(Range::from_coords(1, 1, 1, 40), Cell::new(2, 1))];
        let cross = vec![CrossEdge {
            src: SheetId(0),
            prec: Range::from_coords(1, 30, 1, 40),
            dst: SheetId(1),
            dep: Cell::new(3, 1),
        }];
        for threads in [1, 4] {
            let mut wb = Workbook::from_sheet_deps(
                Config::taco_full(),
                &[("a", deps0.as_slice()), ("b", deps1.as_slice())],
                &cross,
                threads,
            )
            .unwrap();
            let deps = wb.find_dependents(SheetId(0), Range::cell(Cell::new(1, 1)));
            assert!(
                deps.iter().any(|&(s, range)| s == SheetId(1) && range.contains_cell(c("C1"))),
                "threads={threads}: cross hop missing from {deps:?}"
            );
            // The chain sheet stays compressed: one RR-Chain edge.
            assert_eq!(wb.sheet(SheetId(0)).graph().num_edges(), 1);
        }
    }

    #[test]
    fn cross_sheet_sumif_reads_the_implicitly_resized_sum_range() {
        // SUMIF's sum range is shaped to the criteria range (B1:B1 reads
        // B1:B3 here); the cross edge must cover the implicit cells, both
        // for the import snapshot and for dirty routing.
        let mut wb = Workbook::with_taco();
        let data = wb.add_sheet("Data").unwrap();
        let summary = wb.add_sheet("Summary").unwrap();
        for row in 1..=3u32 {
            wb.set_value(data, Cell::new(1, row), n(1.0));
        }
        wb.set_value(data, c("B3"), n(7.0));
        wb.set_formula(summary, c("A1"), "=SUMIF(Data!A1:A3,\">0\",Data!B1:B1)").unwrap();
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), n(7.0));
        // Editing an implicitly-read cell propagates.
        let receipt = wb.set_value(data, c("B2"), n(2.0));
        assert!(receipt
            .dirty
            .iter()
            .any(|&(s, range)| s == summary && range.contains_cell(c("A1"))));
        wb.recalculate(RecalcMode::Parallel { threads: 2 });
        assert_eq!(wb.value(summary, c("A1")), n(9.0));
    }

    #[test]
    fn late_added_sheet_rebinds_dangling_references() {
        let mut wb = Workbook::with_taco();
        let a = wb.add_sheet("A").unwrap();
        wb.set_value(a, c("C1"), n(2.0));
        wb.set_formula(a, c("B1"), "=Late!A1+C1").unwrap();
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(a, c("B1")), Value::Error(CellError::Ref));
        assert_eq!(wb.cross_edge_count(), 0);

        // Adding the sheet re-binds the reference: the edge appears, the
        // formula goes dirty, and edits on the new sheet propagate.
        let late = wb.add_sheet("Late").unwrap();
        assert_eq!(wb.cross_edge_count(), 1);
        assert!(wb.dirty_count() > 0, "dangling formula must be re-marked dirty");
        wb.set_value(late, c("A1"), n(5.0));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(a, c("B1")), n(7.0));
        wb.set_value(late, c("A1"), n(8.0));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(a, c("B1")), n(10.0));
    }

    #[test]
    fn rebinding_dedups_repeated_references() {
        // The rebind path must apply the same one-edge-per-distinct-range
        // dedup as the live apply_formula path.
        let mut wb = Workbook::with_taco();
        let a = wb.add_sheet("A").unwrap();
        wb.set_formula(a, c("B1"), "=Late!A1+Late!A1*2").unwrap();
        wb.set_formula(a, c("B2"), "=Late!A1+Late!A2:A3").unwrap();
        assert_eq!(wb.cross_edge_count(), 0);
        let late = wb.add_sheet("Late").unwrap();
        // B1: one distinct range; B2: two distinct ranges.
        assert_eq!(wb.cross_edge_count(), 3);
        wb.set_value(late, c("A1"), n(4.0));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(a, c("B1")), n(12.0));
    }

    #[test]
    fn duplicate_and_bad_sheet_names_err() {
        let mut wb = Workbook::with_taco();
        wb.add_sheet("Data").unwrap();
        assert!(matches!(wb.add_sheet("data"), Err(WorkbookError::DuplicateSheet(_))));
        assert!(matches!(wb.add_sheet("a:b"), Err(WorkbookError::BadSheetName(_))));
        assert!(matches!(wb.add_sheet(""), Err(WorkbookError::BadSheetName(_))));
    }

    #[test]
    fn sheets_downstream_of_a_cycle_evaluate_after_it() {
        // A (id 0) only *reads* the B↔C cycle; the cell-level graph is
        // acyclic, so A must still settle correctly: the scheduler places
        // the condensation level of {B, C} before A despite A's lower id.
        let mut wb = Workbook::with_taco();
        let a = wb.add_sheet("A").unwrap();
        let b = wb.add_sheet("B").unwrap();
        let c_id = wb.add_sheet("C").unwrap();
        wb.set_formula(a, c("A1"), "=B!A1*10").unwrap();
        wb.set_value(b, c("B1"), n(5.0));
        wb.set_formula(b, c("A1"), "=B1+C!B1").unwrap();
        wb.set_formula(c_id, c("A1"), "=B!B1").unwrap();
        assert_eq!(wb.sheet_levels(), vec![vec![b], vec![c_id], vec![a]]);
        for mode in [RecalcMode::Serial, RecalcMode::Parallel { threads: 8 }] {
            let mut fresh = Workbook::with_taco();
            let a = fresh.add_sheet("A").unwrap();
            let b = fresh.add_sheet("B").unwrap();
            let c2 = fresh.add_sheet("C").unwrap();
            fresh.set_formula(a, c("A1"), "=B!A1*10").unwrap();
            fresh.set_value(b, c("B1"), n(5.0));
            fresh.set_formula(b, c("A1"), "=B1+C!B1").unwrap();
            fresh.set_formula(c2, c("A1"), "=B!B1").unwrap();
            fresh.recalculate(mode);
            assert_eq!(fresh.value(a, c("A1")), n(50.0), "{mode:?}");
        }
    }

    #[test]
    fn cross_sheet_cycle_is_deterministic_in_both_modes() {
        let build = || {
            let mut wb = Workbook::with_taco();
            let a = wb.add_sheet("A").unwrap();
            let b = wb.add_sheet("B").unwrap();
            wb.set_value(a, c("A1"), n(1.0));
            wb.set_formula(a, c("B1"), "=B!A1+1").unwrap();
            wb.set_formula(b, c("A1"), "=A!A1+1").unwrap();
            wb
        };
        let mut s = build();
        let mut p = build();
        s.recalculate(RecalcMode::Serial);
        p.recalculate(RecalcMode::Parallel { threads: 8 });
        let (a, b) = (SheetId(0), SheetId(1));
        assert_eq!(s.value(a, c("B1")), p.value(a, c("B1")));
        assert_eq!(s.value(b, c("A1")), p.value(b, c("A1")));
        // Re-dirtying the chain advances it one pass, in both modes alike:
        // the cell-level chain A!A1 → B!A1 → A!B1 is acyclic and settles.
        s.set_value(a, c("A1"), n(1.0));
        p.set_value(a, c("A1"), n(1.0));
        s.recalculate(RecalcMode::Serial);
        p.recalculate(RecalcMode::Parallel { threads: 8 });
        assert_eq!(s.value(a, c("B1")), n(3.0));
        assert_eq!(p.value(a, c("B1")), n(3.0));
    }

    #[test]
    fn cell_parallel_matches_serial_on_a_chain_sheet() {
        let build = || {
            let mut wb = Workbook::with_taco();
            let s = wb.add_sheet("Only").unwrap();
            wb.set_value(s, c("A1"), n(1.0));
            for row in 2..=40u32 {
                wb.set_formula(s, Cell::new(1, row), &format!("=A{}+1", row - 1)).unwrap();
            }
            wb.set_formula(s, c("B1"), "=SUM(A1:A40)").unwrap();
            wb
        };
        let mut serial = build();
        let mut par = build();
        serial.recalculate(RecalcMode::Serial);
        par.recalculate(RecalcMode::CellParallel { threads: 4 });
        let s = SheetId(0);
        for row in 1..=40u32 {
            assert_eq!(serial.value(s, Cell::new(1, row)), par.value(s, Cell::new(1, row)));
        }
        assert_eq!(par.value(s, c("B1")), n((1..=40).map(f64::from).sum::<f64>()));
    }

    #[test]
    fn demand_recalc_evaluates_only_viewport_precedents() {
        let mut wb = Workbook::with_taco();
        let s = wb.add_sheet("Only").unwrap();
        wb.set_value(s, c("A1"), n(2.0));
        wb.set_formula(s, c("B1"), "=A1*10").unwrap(); // in viewport
        wb.set_formula(s, c("B2"), "=B1+1").unwrap(); // in viewport, needs B1
        wb.set_formula(s, c("D9"), "=A1*100").unwrap(); // far outside
        let before = wb.evaluated_total();
        let evaluated = wb.recalc_demand(s, r("A1:B4"), RecalcMode::Serial).unwrap();
        assert_eq!(evaluated, 2, "only B1 and B2 are needed");
        assert_eq!(wb.evaluated_total() - before, 2);
        assert_eq!(wb.value(s, c("B1")), n(20.0));
        assert_eq!(wb.value(s, c("B2")), n(21.0));
        // D9 is still lazily dirty; a full pass converges.
        assert_eq!(wb.dirty_count(), 1);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(s, c("D9")), n(200.0));
        assert_eq!(wb.dirty_count(), 0);
    }

    #[test]
    fn demand_recalc_follows_cross_sheet_precedents() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.set_formula(data, c("E1"), "=A1*1000").unwrap(); // unrelated to viewport
                                                            // Summary!B1 = A1*2 and A1 = SUM(Data!A1:A4): the viewport needs
                                                            // both Summary cells, but not Data!E1.
        let evaluated = wb.recalc_demand(summary, r("B1:B1"), RecalcMode::Serial).unwrap();
        assert_eq!(evaluated, 2);
        assert_eq!(wb.value(summary, c("B1")), n(20.0));
        assert_eq!(wb.dirty_count(), 1, "Data!E1 deferred");
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("E1")), n(1000.0));
    }

    #[test]
    fn demand_recalc_of_a_clean_viewport_evaluates_nothing() {
        let (mut wb, _data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        let evaluated = wb.recalc_demand(summary, r("A1:B4"), RecalcMode::Serial).unwrap();
        assert_eq!(evaluated, 0);
        assert_eq!(wb.value(summary, c("B1")), n(20.0));
    }

    #[test]
    fn demand_recalc_rejects_unknown_sheets() {
        let mut wb = Workbook::with_taco();
        wb.add_sheet("Only").unwrap();
        let err = wb.recalc_demand(SheetId(3), r("A1:B2"), RecalcMode::Serial);
        assert!(matches!(err, Err(WorkbookError::NoSuchSheet(3))));
    }

    #[test]
    fn clock_injection_is_bit_identical_across_recalcs() {
        let mut wb = Workbook::with_taco();
        let s = wb.add_sheet("Only").unwrap();
        wb.set_formula(s, c("A1"), "=NOW()").unwrap();
        wb.set_formula(s, c("A2"), "=RAND()").unwrap();
        wb.set_formula(s, c("A3"), "=RAND()+RAND()").unwrap();
        wb.set_formula(s, c("B1"), "=A1+A2").unwrap();
        let clock = EvalClock { now: 45_000.5, today: 45_000.0, rand_seed: 7 };
        assert_eq!(wb.set_clock(clock), 3);
        wb.recalculate(RecalcMode::Serial);
        let first: Vec<Value> =
            ["A1", "A2", "A3", "B1"].iter().map(|a| wb.value(s, c(a))).collect();
        assert_eq!(first[0], n(45_000.5));
        // Same clock, same dirty set → bit-identical values on a second
        // pass, in every mode.
        for mode in [
            RecalcMode::Serial,
            RecalcMode::Parallel { threads: 4 },
            RecalcMode::CellParallel { threads: 4 },
        ] {
            assert_eq!(wb.set_clock(clock), 3);
            wb.recalculate(mode);
            let again: Vec<Value> =
                ["A1", "A2", "A3", "B1"].iter().map(|a| wb.value(s, c(a))).collect();
            assert_eq!(again, first, "{mode:?}");
        }
        // A different seed perturbs RAND but not NOW.
        assert_eq!(wb.set_clock(EvalClock { rand_seed: 8, ..clock }), 3);
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(s, c("A1")), first[0]);
        assert_ne!(wb.value(s, c("A2")), first[1]);
    }

    #[test]
    fn set_clock_redirties_dependents_across_sheets() {
        let mut wb = Workbook::with_taco();
        let a = wb.add_sheet("A").unwrap();
        let b = wb.add_sheet("B").unwrap();
        wb.set_formula(a, c("A1"), "=TODAY()").unwrap();
        wb.set_formula(b, c("A1"), "=A!A1+1").unwrap();
        wb.set_clock(EvalClock { now: 10.5, today: 10.0, rand_seed: 1 });
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(b, c("A1")), n(11.0));
        wb.set_clock(EvalClock { now: 20.5, today: 20.0, rand_seed: 1 });
        assert!(wb.dirty_count() >= 2, "volatile cell and its cross-sheet dependent re-dirtied");
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(b, c("A1")), n(21.0));
    }

    /// The ISSUE scenario: `Sheet2!B5 = Sheet1!A2+1` must track `Sheet1`
    /// through a row insert, and die to `#REF!` when its target rows are
    /// deleted outright.
    #[test]
    fn structural_edit_rewrites_cross_sheet_references() {
        let mut wb = Workbook::with_taco();
        let s1 = wb.add_sheet("Sheet1").unwrap();
        let s2 = wb.add_sheet("Sheet2").unwrap();
        for row in 1..=4u32 {
            wb.set_value(s1, Cell::new(1, row), n(f64::from(row) * 10.0));
        }
        wb.set_formula(s2, c("B5"), "=Sheet1!A2+1").unwrap();
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(s2, c("B5")), n(21.0));

        let receipt = wb.insert_rows(s1, 1, 3);
        assert_eq!(wb.formula_of(s2, c("B5")).as_deref(), Some("Sheet1!A5+1"));
        assert!(
            receipt.dirty.iter().any(|&(s, range)| s == s2 && range.contains_cell(c("B5"))),
            "the rewritten referrer must be reported dirty: {:?}",
            receipt.dirty
        );
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(s2, c("B5")), n(21.0), "value survives the shift");
        assert_eq!(wb.value(s1, c("A5")), n(20.0));

        // Deleting every row the reference points at kills it.
        wb.delete_rows(s1, 5, 1);
        assert_eq!(wb.formula_of(s2, c("B5")).as_deref(), Some("#REF!+1"));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(s2, c("B5")), Value::Error(CellError::Ref));
    }

    #[test]
    fn structural_edit_rewrites_cross_sheet_ranges() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        // Insert into the middle of the referenced range: it stretches.
        wb.insert_rows(data, 2, 3);
        assert_eq!(wb.formula_of(summary, c("A1")).as_deref(), Some("SUM(Data!A1:A7)"));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), n(10.0));
        assert_eq!(wb.value(summary, c("B1")), n(20.0), "transitive dependent follows");
        // Delete the whole stretched range: #REF!.
        wb.delete_rows(data, 1, 7);
        assert_eq!(wb.formula_of(summary, c("A1")).as_deref(), Some("SUM(#REF!)"));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), Value::Error(CellError::Ref));
    }

    #[test]
    fn identity_structural_edit_keeps_source_and_cached_values() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        // Rows inserted below everything the summary reads: no rewrite,
        // no dirt, and the referrer keeps its original source text.
        wb.insert_rows(data, 10, 5);
        assert_eq!(wb.formula_of(summary, c("A1")).as_deref(), Some("SUM(Data!A1:A4)"));
        assert_eq!(wb.dirty_count(), 0, "nothing moved that anyone reads");
        assert_eq!(wb.value(summary, c("A1")), n(10.0));
    }

    #[test]
    fn structural_edit_remaps_edges_owned_by_the_edited_sheet() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.set_value(summary, c("Z1"), n(5.0));
        wb.set_formula(data, c("C1"), "='My Summary'!Z1*2").unwrap();
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("C1")), n(10.0));
        let edges = wb.cross_edge_count();

        // The formula cell moves; its outbound reference (to the *other*
        // sheet) must not be rewritten, but the edge must follow the cell.
        wb.insert_rows(data, 1, 2);
        assert_eq!(wb.formula_of(data, c("C3")).as_deref(), Some("'My Summary'!Z1*2"));
        assert_eq!(wb.cross_edge_count(), edges, "edges remap, not drop");
        let receipt = wb.set_value(summary, c("Z1"), n(7.0));
        assert!(
            receipt.dirty.iter().any(|&(s, range)| s == data && range.contains_cell(c("C3"))),
            "remapped edge must route to the moved formula: {:?}",
            receipt.dirty
        );
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(data, c("C3")), n(14.0));

        // Deleting the formula's own rows drops the cell and its edge.
        wb.delete_rows(data, 3, 1);
        assert_eq!(wb.cross_edge_count(), edges - 1);
        let receipt = wb.set_value(summary, c("Z1"), n(9.0));
        assert!(
            !receipt.dirty.iter().any(|&(s, _)| s == data),
            "a deleted formula must no longer be routed to: {:?}",
            receipt.dirty
        );
    }

    #[test]
    fn column_edits_rewrite_cross_sheet_references() {
        let (mut wb, data, summary) = two_sheet_book();
        wb.recalculate(RecalcMode::Serial);
        wb.insert_cols(data, 1, 2);
        assert_eq!(wb.formula_of(summary, c("A1")).as_deref(), Some("SUM(Data!C1:C4)"));
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.value(summary, c("A1")), n(10.0));
        wb.delete_cols(data, 3, 1);
        assert_eq!(wb.formula_of(summary, c("A1")).as_deref(), Some("SUM(#REF!)"));
    }

    #[test]
    fn batched_structural_record_matches_live_edit() {
        use taco_store::EditRecord;
        let build = || {
            let (mut wb, _, _) = two_sheet_book();
            wb.recalculate(RecalcMode::Serial);
            wb
        };
        let mut live = build();
        live.insert_rows(SheetId(0), 2, 3);
        live.set_value(SheetId(0), c("A9"), n(99.0));
        live.recalculate(RecalcMode::Serial);

        let mut batched = build();
        batched
            .apply_batch(&[
                EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 2, n: 3 } },
                EditRecord::SetValue { sheet: 0, cell: c("A9"), value: n(99.0) },
            ])
            .unwrap();
        batched.recalculate(RecalcMode::Serial);

        let summary = SheetId(1);
        assert_eq!(live.formula_of(summary, c("A1")), batched.formula_of(summary, c("A1")));
        assert_eq!(live.value(summary, c("A1")), batched.value(summary, c("A1")));
        assert_eq!(live.value(summary, c("B1")), batched.value(summary, c("B1")));
        assert_eq!(live.cross_edge_count(), batched.cross_edge_count());

        // A structural record naming a missing sheet is a typed error.
        let err = batched
            .apply_batch(&[EditRecord::Structural {
                sheet: 9,
                op: StructuralOp::DeleteRows { at: 1, n: 1 },
            }])
            .unwrap_err();
        assert_eq!(err.index, 0);
    }
}
