//! Differential tests for demand-driven recalculation:
//! [`Workbook::recalc_demand`] must give the viewport exactly the values
//! a full recalculation would, while evaluating **only** the viewport's
//! transitive dirty precedents (checked through the engines' evaluation
//! counters), and a follow-up full recalculation must converge to the
//! full-recalc state — the deferred cells are lazily dirty, never lost.

use proptest::prelude::*;
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_workload::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};

fn presets(seed: u64) -> Vec<PersistParams> {
    vec![
        PersistParams { rows: 24, seed, ..persist_enron_like() },
        PersistParams { rows: 32, seed: seed ^ 0x9E37, ..persist_github_like() },
        PersistParams { rows: 64, seed: seed ^ 0x61A7, ..persist_giant_sheet() },
    ]
}

fn build(w: &PersistWorkload) -> Workbook {
    let mut wb = Workbook::with_taco();
    wb.apply_batch(&w.build).expect("build script applies");
    wb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn demand_recalc_matches_full_recalc_on_the_viewport(
        seed in 0u64..10_000,
        sheet_pick in 0usize..8,
        row0 in 1u32..20,
        height in 1u32..12,
        parallel in 0usize..2,
    ) {
        for p in presets(seed) {
            let w = gen_persist_workload(&p);
            let mut full = build(&w);
            let mut demand = build(&w);
            let total_dirty = full.dirty_count();

            let e_full = full.recalculate(RecalcMode::Serial);
            prop_assert_eq!(e_full, total_dirty);

            let sid = SheetId(sheet_pick % demand.sheet_count());
            let viewport = Range::from_coords(1, row0, 6, row0 + height);
            let mode = if parallel == 1 {
                RecalcMode::CellParallel { threads: 4 }
            } else {
                RecalcMode::Serial
            };

            // Demand pass: counters say how much was actually evaluated.
            let before = demand.evaluated_total();
            let e_demand = demand.recalc_demand(sid, viewport, mode).unwrap();
            prop_assert_eq!(demand.evaluated_total() - before, e_demand as u64);
            prop_assert!(e_demand <= e_full, "{}: demand may never evaluate more", p.name);

            // The viewport is now exactly what the full pass computed.
            for cell in viewport.cells() {
                prop_assert_eq!(
                    demand.value(sid, cell),
                    full.value(sid, cell),
                    "{}: viewport cell {:?} diverged", p.name, cell
                );
            }

            // Everything else stayed lazily dirty: the deferred count plus
            // the demand count is the full workload, and the follow-up
            // full pass evaluates precisely the deferred cells...
            let deferred = demand.dirty_count();
            prop_assert_eq!(e_demand + deferred, total_dirty, "{}", p.name);
            let e_follow = demand.recalculate(RecalcMode::Serial);
            prop_assert_eq!(e_follow, deferred, "{}", p.name);
            prop_assert_eq!(demand.dirty_count(), 0);

            // ...after which the whole workbook converges bit-identically.
            for s in 0..demand.sheet_count() {
                let id = SheetId(s);
                let mut a: Vec<(Cell, Value)> =
                    demand.sheet(id).cells().map(|(c, k)| (c, k.value().clone())).collect();
                let mut b: Vec<(Cell, Value)> =
                    full.sheet(id).cells().map(|(c, k)| (c, k.value().clone())).collect();
                a.sort_by_key(|(c, _)| *c);
                b.sort_by_key(|(c, _)| *c);
                prop_assert_eq!(a, b, "{}: sheet {} diverged after follow-up", p.name, s);
            }
        }
    }
}

/// Pin the "only transitive precedents" guarantee on a case where the
/// closure is a strict subset: a giant sheet with a viewport near the
/// top evaluates far fewer cells than the full workload.
#[test]
fn demand_recalc_is_a_strict_subset_on_the_giant_sheet() {
    let w = gen_persist_workload(&persist_giant_sheet());
    let mut wb = build(&w);
    let total = wb.dirty_count();
    let viewport = Range::parse_a1("A1:F8").unwrap();
    let evaluated = wb.recalc_demand(SheetId(0), viewport, RecalcMode::Serial).unwrap();
    assert!(evaluated > 0, "a dirty viewport must evaluate something");
    assert!(
        evaluated < total / 2,
        "viewport closure should be a small fraction: {evaluated} of {total}"
    );
    assert_eq!(wb.dirty_count(), total - evaluated);
}
