//! Property test for cell-level parallel recalculation:
//! [`RecalcMode::CellParallel`] is observationally identical to serial —
//! same receipts, same dirty counts, same evaluated-cell counts,
//! bit-identical values — across thread counts {1, 2, 4, 8}, both
//! persistence presets, and the single-giant-sheet preset (where
//! sheet-level parallelism degenerates and only cell-level scheduling
//! can spread the work), including mid-life edit bursts.

use proptest::prelude::*;
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::Cell;
use taco_workload::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The presets under test, scaled down so one proptest case builds
/// 15 workbooks (3 presets × (serial + 4 thread counts)) in well under a
/// second while still exercising every pattern kind.
fn presets(seed: u64) -> Vec<PersistParams> {
    vec![
        PersistParams { rows: 24, burst_edits: 30, seed, ..persist_enron_like() },
        PersistParams { rows: 32, burst_edits: 30, seed: seed ^ 0x9E37, ..persist_github_like() },
        PersistParams { rows: 64, burst_edits: 40, seed: seed ^ 0x61A7, ..persist_giant_sheet() },
    ]
}

fn build(w: &PersistWorkload) -> Workbook {
    let mut wb = Workbook::with_taco();
    wb.apply_batch(&w.build).expect("build script applies");
    wb
}

/// Every non-empty cell's value, across all sheets, in a fixed order.
fn snapshot(wb: &Workbook) -> Vec<(usize, Cell, Value)> {
    let mut out = Vec::new();
    for s in 0..wb.sheet_count() {
        let mut cells: Vec<(Cell, Value)> =
            wb.sheet(SheetId(s)).cells().map(|(c, k)| (c, k.value().clone())).collect();
        cells.sort_by_key(|(c, _)| *c);
        out.extend(cells.into_iter().map(|(c, v)| (s, c, v)));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cell_parallel_recalc_equals_serial(seed in 0u64..10_000, cut in 1usize..30) {
        for p in presets(seed) {
            let w = gen_persist_workload(&p);
            let mut serial = build(&w);
            let mut books: Vec<Workbook> = THREADS.iter().map(|_| build(&w)).collect();

            // Same pre-recalc dirty state everywhere.
            for wb in &books {
                prop_assert_eq!(wb.dirty_count(), serial.dirty_count(), "{}", p.name);
            }

            // First full recalculation: serial reference vs cell-parallel.
            let eval0 = serial.recalculate(RecalcMode::Serial);
            let reference = snapshot(&serial);
            for (wb, &t) in books.iter_mut().zip(&THREADS) {
                let evaluated = wb.recalculate(RecalcMode::CellParallel { threads: t });
                prop_assert_eq!(evaluated, eval0, "{} threads={}", p.name, t);
                prop_assert_eq!(wb.dirty_count(), 0, "{} threads={}", p.name, t);
                prop_assert_eq!(&snapshot(wb), &reference, "{} threads={}", p.name, t);
            }

            // Mid-life edits: a burst prefix, applied identically to every
            // instance — receipts (routing) must be mode-independent.
            let cut = cut.min(w.burst.len());
            let receipts0 = serial.apply_batch(&w.burst[..cut]).expect("burst applies");
            let dirty0 = serial.dirty_count();
            for (wb, &t) in books.iter_mut().zip(&THREADS) {
                let receipts = wb.apply_batch(&w.burst[..cut]).expect("burst applies");
                prop_assert_eq!(&receipts.dirty, &receipts0.dirty, "{} threads={}", p.name, t);
                prop_assert_eq!(wb.dirty_count(), dirty0, "{} threads={}", p.name, t);
            }

            // Post-edit recalculation: still bit-identical.
            let eval0 = serial.recalculate(RecalcMode::Serial);
            let reference = snapshot(&serial);
            for (wb, &t) in books.iter_mut().zip(&THREADS) {
                let evaluated = wb.recalculate(RecalcMode::CellParallel { threads: t });
                prop_assert_eq!(evaluated, eval0, "{} threads={} post-edit", p.name, t);
                prop_assert_eq!(&snapshot(wb), &reference, "{} threads={} post-edit", p.name, t);
                prop_assert_eq!(wb.dirty_count(), 0, "{} threads={}", p.name, t);
            }
        }
    }
}

/// The giant single-sheet preset really leans on the intra-sheet
/// leveler: a full build must produce a multi-level schedule (the chain
/// column alone is hundreds of levels deep), not one serial leftover
/// blob.
#[test]
fn giant_sheet_builds_a_deep_level_schedule() {
    let w = gen_persist_workload(&persist_giant_sheet());
    let mut wb = build(&w);
    wb.recalculate(RecalcMode::CellParallel { threads: 4 });
    let levels = wb.sheet(SheetId(0)).levels_built();
    assert!(levels > 100, "expected a deep schedule, got {levels} levels");

    // And it matches serial bit-identically.
    let mut serial = build(&w);
    serial.recalculate(RecalcMode::Serial);
    assert_eq!(snapshot(&wb), snapshot(&serial));
}
