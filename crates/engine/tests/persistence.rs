//! Round-trip and crash-replay properties for workbook persistence.
//!
//! - workbook → bytes → workbook preserves every observable: cell
//!   values, graph stats counters, dependents/precedents query answers,
//!   and the receipts of a follow-up recalculation — across both
//!   persistence-workload presets and recalc thread counts {1, 8};
//! - a workbook reopened from snapshot + WAL equals the workbook that
//!   applied the same edits live, including when the WAL is cut at an
//!   arbitrary byte offset (crash simulation): the reopened state equals
//!   the live application of exactly the clean-prefix edits.

use proptest::prelude::*;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, SheetId, Workbook};
use taco_grid::Range;
use taco_store::{encode_workbook, ReplayMode, StoreReader, WalReader};
use taco_workload::persistence::{
    gen_persist_workload, persist_enron_like, persist_github_like, PersistParams,
};

/// Scaled-down presets so debug-mode property runs stay fast.
fn presets() -> Vec<PersistParams> {
    vec![
        PersistParams { sheets: 3, rows: 28, burst_edits: 70, ..persist_enron_like() },
        PersistParams { sheets: 2, rows: 40, burst_edits: 70, ..persist_github_like() },
    ]
}

fn build(params: &PersistParams) -> Workbook {
    let w = gen_persist_workload(params);
    let mut wb = Workbook::with_taco();
    for rec in &w.build {
        wb.apply_edit(rec).expect("build script applies");
    }
    wb
}

/// Asserts every observable of `b` matches `a`.
fn assert_equivalent(a: &mut Workbook, b: &mut Workbook, ctx: &str) {
    assert_eq!(a.sheet_count(), b.sheet_count(), "{ctx}: sheet count");
    assert_eq!(a.cross_edge_count(), b.cross_edge_count(), "{ctx}: cross edges");
    assert_eq!(a.dirty_count(), b.dirty_count(), "{ctx}: dirty count");
    for i in 0..a.sheet_count() {
        let id = SheetId(i);
        assert_eq!(a.sheet_name(id), b.sheet_name(id), "{ctx}: sheet {i} name");
        assert_eq!(
            a.sheet(id).graph().stats(),
            b.sheet(id).graph().stats(),
            "{ctx}: sheet {i} graph stats"
        );
        assert_eq!(
            a.sheet(id).graph().dependencies_inserted(),
            b.sheet(id).graph().dependencies_inserted(),
            "{ctx}: sheet {i} lifetime counter"
        );
        assert_eq!(a.sheet(id).len(), b.sheet(id).len(), "{ctx}: sheet {i} cell count");
        for (cell, content) in a.sheet(id).cells() {
            assert_eq!(b.value(id, cell), *content.value(), "{ctx}: sheet {i} {cell}");
        }
    }
    // Query answers agree on a probe grid. Distinct (but equal) graphs
    // may decompose an answer into different disjoint-range lists, so
    // normalize to cell sets, as the differential-backend harness does.
    for i in 0..a.sheet_count() {
        let id = SheetId(i);
        for probe in ["A1", "A3:A9", "B2", "D5", "A1:F40"] {
            let probe = Range::parse_a1(probe).unwrap();
            assert_eq!(
                cells(&a.find_dependents(id, probe)),
                cells(&b.find_dependents(id, probe)),
                "{ctx}: dependents({i}, {probe})"
            );
            assert_eq!(
                cells(&a.find_precedents(id, probe)),
                cells(&b.find_precedents(id, probe)),
                "{ctx}: precedents({i}, {probe})"
            );
        }
    }
}

/// Normalizes a per-sheet range list to its covered cell set.
fn cells(v: &[(SheetId, Range)]) -> std::collections::BTreeSet<(SheetId, taco_grid::Cell)> {
    v.iter().flat_map(|(s, r)| r.cells().map(move |c| (*s, c))).collect()
}

#[test]
fn round_trip_preserves_observables_across_presets_and_threads() {
    for params in presets() {
        for threads in [1usize, 8] {
            let mode = RecalcMode::Parallel { threads };
            let mut live = build(&params);
            live.recalculate(mode);

            let bytes = encode_workbook(&live.to_image()).expect("encode");
            let reader = StoreReader::from_bytes(bytes).expect("validate");
            let mut back =
                Workbook::from_image(reader.read_all().expect("decode")).expect("restore");
            let ctx = format!("{} t{threads}", params.name);
            assert_equivalent(&mut live, &mut back, &ctx);

            // Receipts of a follow-up edit + recalc are identical: the
            // restored graph routes dirtiness exactly like the original.
            let cell = taco_grid::Cell::new(1, 3);
            let ra = live.set_value(SheetId(0), cell, taco_formula::Value::Number(123.0));
            let rb = back.set_value(SheetId(0), cell, taco_formula::Value::Number(123.0));
            assert_eq!(cells(&ra.dirty), cells(&rb.dirty), "{ctx}: edit receipts");
            let ca = live.recalculate(mode);
            let cb = back.recalculate(mode);
            assert_eq!(ca, cb, "{ctx}: recalc receipts (cells evaluated)");
            assert_equivalent(&mut live, &mut back, &format!("{ctx} after recalc"));
        }
    }
}

#[test]
fn double_round_trip_is_byte_identical() {
    // save → open → save must reproduce the same bytes: the image is a
    // fixed point of the canonical encoding (sorted edges, sorted cells,
    // sorted cross table).
    for params in presets() {
        let mut wb = build(&params);
        wb.recalculate(RecalcMode::Serial);
        let bytes1 = encode_workbook(&wb.to_image()).expect("encode");
        let back = Workbook::from_image(
            StoreReader::from_bytes(bytes1.clone()).expect("validate").read_all().expect("decode"),
        )
        .expect("restore");
        let bytes2 = encode_workbook(&back.to_image()).expect("re-encode");
        assert_eq!(bytes1, bytes2, "{}: reopen must be a fixed point", params.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn crash_at_arbitrary_wal_offset_replays_the_clean_prefix(seed in 0u64..u64::MAX) {
        let params = PersistParams { sheets: 2, rows: 16, burst_edits: 40, ..persist_enron_like() };
        let w = gen_persist_workload(&params);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("taco_crash_{seed:x}_{}.taco", std::process::id()));
        let wal = taco_engine::wal_path(&path);

        // Build, snapshot, then log the burst without compaction.
        let mut wb = Workbook::with_taco();
        for rec in &w.build {
            wb.apply_edit(rec).expect("build");
        }
        wb.recalculate(RecalcMode::Serial);
        let mut pers = PersistentWorkbook::create(
            &path,
            wb,
            PersistOptions { compact_after_records: 0, sync_every_records: 0 },
        ).expect("create");
        for rec in &w.burst {
            pers.log_edit(rec).expect("burst");
        }
        pers.sync().expect("fsync");
        drop(pers);
        let wal_bytes = std::fs::read(&wal).expect("wal bytes");

        // Crash: cut the WAL at an arbitrary byte offset.
        let cut = (seed % (wal_bytes.len() as u64 + 1)) as usize;
        std::fs::write(&wal, &wal_bytes[..cut]).expect("simulate crash");
        let survived =
            WalReader::parse(&wal_bytes[..cut], ReplayMode::TolerateTear).expect("parse").records;
        let mut reopened = Workbook::open(&path).expect("reopen after crash");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();

        // The live truth: build + recalc (pre-snapshot state) + exactly
        // the surviving burst prefix.
        let mut live = Workbook::with_taco();
        for rec in &w.build {
            live.apply_edit(rec).expect("build");
        }
        live.recalculate(RecalcMode::Serial);
        prop_assert_eq!(&survived[..], &w.burst[..survived.len()]);
        for rec in &survived {
            live.apply_edit(rec).expect("prefix");
        }

        assert_equivalent(&mut live, &mut reopened, &format!("cut={cut}"));
        let (el, er) =
            (live.recalculate(RecalcMode::Serial), reopened.recalculate(RecalcMode::Serial));
        prop_assert_eq!(el, er);
        assert_equivalent(&mut live, &mut reopened, &format!("cut={cut} after recalc"));
    }
}
