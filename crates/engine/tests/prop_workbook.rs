//! Property test for the workbook scheduler: parallel recalculation is
//! observationally identical to serial recalculation — same receipts,
//! same dirty counts, same evaluated-cell counts, bit-identical values —
//! across thread counts {1, 2, 8} on randomized multi-sheet workbooks
//! with cross-sheet chains, rollups, and mid-life edits.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};

const MODES: [RecalcMode; 4] = [
    RecalcMode::Serial,
    RecalcMode::Parallel { threads: 1 },
    RecalcMode::Parallel { threads: 2 },
    RecalcMode::Parallel { threads: 8 },
];

/// Builds one workbook from the seeded script. Sheet names deliberately
/// include spaces so every generated formula exercises quoted qualifiers.
fn build(nsheets: usize, rows: u32, seed: u64) -> Workbook {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wb = Workbook::with_taco();
    let ids: Vec<SheetId> =
        (0..nsheets).map(|i| wb.add_sheet(&format!("Sheet {i}")).expect("fresh name")).collect();
    for (k, &id) in ids.iter().enumerate() {
        for row in 1..=rows {
            wb.set_value(id, Cell::new(1, row), Value::Number(rng.gen_range(-50..50) as f64));
        }
        // Local structure: a cumulative column B.
        wb.set_formula(id, Cell::new(2, 1), "=SUM($A$1:A1)").expect("valid");
        if rows > 1 {
            wb.autofill(id, Cell::new(2, 1), Range::from_coords(2, 2, 2, rows)).expect("fill");
        }
        // Cross-sheet structure into earlier sheets (acyclic), and
        // occasionally a *forward* reference (sheet-level cycle) to pin
        // the cyclic-fallback schedule as deterministic too.
        if k > 0 {
            let j = rng.gen_range(0..k);
            let row = rng.gen_range(1..=rows);
            wb.set_formula(
                id,
                Cell::new(3, 1),
                &format!("='Sheet {j}'!B{row}+SUM('Sheet {j}'!A1:A{rows})"),
            )
            .expect("valid");
            wb.set_formula(id, Cell::new(3, 2), &format!("='Sheet {}'!C1+B{rows}", k - 1))
                .expect("valid");
        }
        if k + 1 < nsheets && rng.gen_range(0..3) == 0 {
            wb.set_formula(id, Cell::new(4, 1), &format!("='Sheet {}'!A1*2", k + 1))
                .expect("valid");
        }
    }
    wb
}

/// The same seeded edit script against any instance.
fn edit(wb: &mut Workbook, nsheets: usize, rows: u32, seed: u64) -> Vec<(SheetId, Range)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xED17);
    let mut receipts = Vec::new();
    for _ in 0..3 {
        let id = SheetId(rng.gen_range(0..nsheets));
        let cell = Cell::new(1, rng.gen_range(1..=rows));
        let receipt = wb.set_value(id, cell, Value::Number(rng.gen_range(-9..9) as f64));
        receipts.extend(receipt.dirty);
    }
    receipts
}

fn snapshot(wb: &Workbook, nsheets: usize, rows: u32) -> Vec<Value> {
    let mut out = Vec::new();
    for s in 0..nsheets {
        for col in 1..=4u32 {
            for row in 1..=rows {
                out.push(wb.value(SheetId(s), Cell::new(col, row)));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_recalc_equals_serial(
        nsheets in 2usize..=5,
        rows in 3u32..=8,
        seed in 0u64..10_000,
    ) {
        // One instance per mode, all driven by identical scripts.
        let mut books: Vec<Workbook> =
            MODES.iter().map(|_| build(nsheets, rows, seed)).collect();

        // Same pre-recalc dirty state everywhere.
        let dirty0 = books[0].dirty_count();
        for wb in &books {
            prop_assert_eq!(wb.dirty_count(), dirty0);
        }

        // First full recalculation.
        let evaluated: Vec<usize> =
            books.iter_mut().zip(MODES).map(|(wb, m)| wb.recalculate(m)).collect();
        for &e in &evaluated[1..] {
            prop_assert_eq!(e, evaluated[0], "evaluated-cell counts diverged");
        }
        let reference = snapshot(&books[0], nsheets, rows);
        for (i, wb) in books.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &snapshot(wb, nsheets, rows), &reference,
                "values diverged after initial recalc (mode #{})", i
            );
        }

        // Mid-life edits: identical receipts (routing is mode-independent),
        // identical dirty counts, identical values after recalc.
        let receipts0 = edit(&mut books[0], nsheets, rows, seed);
        let dirty_after_edit = books[0].dirty_count();
        for (i, wb) in books.iter_mut().enumerate().skip(1) {
            let receipts = edit(wb, nsheets, rows, seed);
            prop_assert_eq!(&receipts, &receipts0, "receipts diverged (mode #{})", i);
            prop_assert_eq!(wb.dirty_count(), dirty_after_edit);
        }
        let evaluated: Vec<usize> =
            books.iter_mut().zip(MODES).map(|(wb, m)| wb.recalculate(m)).collect();
        for &e in &evaluated[1..] {
            prop_assert_eq!(e, evaluated[0], "post-edit evaluated counts diverged");
        }
        let reference = snapshot(&books[0], nsheets, rows);
        for (i, wb) in books.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &snapshot(wb, nsheets, rows), &reference,
                "values diverged after edits (mode #{})", i
            );
        }

        // Nothing left dirty, and the schedule itself is deterministic.
        prop_assert_eq!(books[0].dirty_count(), 0);
        let levels = books[0].sheet_levels();
        for wb in &books[1..] {
            prop_assert_eq!(&wb.sheet_levels(), &levels);
        }
    }
}
