//! Property tests for [`Workbook::apply_batch`]: batched application is
//! observationally identical to serial application — same per-sheet cell
//! values (before and after recalculation), same dirty sets, same graph
//! stats, same cross-edge count — across the persistence workload presets
//! and random script prefixes. Also pins the failure contract: a bad
//! record mid-batch applies and routes the prefix, then reports the index.

use proptest::prelude::*;
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_store::EditRecord;
use taco_workload::{gen_persist_workload, persist_enron_like, persist_github_like, PersistParams};

/// Asserts the two workbooks are observationally identical.
fn assert_same(a: &Workbook, b: &Workbook, what: &str) {
    assert_eq!(a.sheet_count(), b.sheet_count(), "{what}: sheet count");
    assert_eq!(a.dirty_count(), b.dirty_count(), "{what}: dirty count");
    assert_eq!(a.cross_edge_count(), b.cross_edge_count(), "{what}: cross edges");
    for i in 0..a.sheet_count() {
        let id = SheetId(i);
        assert_eq!(
            a.sheet(id).graph().stats(),
            b.sheet(id).graph().stats(),
            "{what}: sheet {i} graph stats"
        );
        assert_eq!(
            a.sheet(id).dirty_count(),
            b.sheet(id).dirty_count(),
            "{what}: sheet {i} dirty count"
        );
        let cells_a: Vec<_> = {
            let mut v: Vec<_> = a.sheet(id).cells().map(|(c, k)| (c, k.clone())).collect();
            v.sort_by_key(|(c, _)| *c);
            v
        };
        let cells_b: Vec<_> = {
            let mut v: Vec<_> = b.sheet(id).cells().map(|(c, k)| (c, k.clone())).collect();
            v.sort_by_key(|(c, _)| *c);
            v
        };
        assert_eq!(cells_a.len(), cells_b.len(), "{what}: sheet {i} cell count");
        for ((ca, ka), (cb, kb)) in cells_a.iter().zip(&cells_b) {
            assert_eq!(ca, cb, "{what}: sheet {i} cell addresses");
            assert_eq!(ka.value(), kb.value(), "{what}: sheet {i} {ca} value");
        }
    }
}

/// Serial reference: one record at a time through the live edit paths.
fn apply_serial(wb: &mut Workbook, records: &[EditRecord]) {
    for rec in records {
        wb.apply_edit(rec).expect("serial record applies");
    }
}

fn check_script(records: &[EditRecord], what: &str) {
    let mut serial = Workbook::with_taco();
    apply_serial(&mut serial, records);
    let mut batched = Workbook::with_taco();
    batched.apply_batch(records).expect("batch applies");
    // Identical before recalculation (dirty sets, graphs, staged values)…
    assert_same(&serial, &batched, &format!("{what} pre-recalc"));
    // …and after (evaluated values).
    serial.recalculate(RecalcMode::Serial);
    batched.recalculate(RecalcMode::Serial);
    assert_same(&serial, &batched, &format!("{what} post-recalc"));
    assert_eq!(batched.dirty_count(), 0, "{what}: recalc must settle the batch");
}

#[test]
fn presets_build_identically_batched_and_serial() {
    for p in [persist_enron_like(), persist_github_like()] {
        let w = gen_persist_workload(&p);
        check_script(&w.build, w.name);
    }
}

#[test]
fn burst_over_built_workbook_is_identical() {
    for p in [persist_enron_like(), persist_github_like()] {
        let w = gen_persist_workload(&p);
        let build = || {
            let mut wb = Workbook::with_taco();
            apply_serial(&mut wb, &w.build);
            wb.recalculate(RecalcMode::Serial);
            wb
        };
        let mut serial = build();
        apply_serial(&mut serial, &w.burst);
        let mut batched = build();
        batched.apply_batch(&w.burst).expect("burst batch applies");
        assert_same(&serial, &batched, &format!("{} burst pre-recalc", w.name));
        serial.recalculate(RecalcMode::Serial);
        batched.recalculate(RecalcMode::Serial);
        assert_same(&serial, &batched, &format!("{} burst post-recalc", w.name));
    }
}

#[test]
fn failing_record_applies_prefix_and_reports_index() {
    let records = vec![
        EditRecord::AddSheet { name: "S".into() },
        EditRecord::SetValue {
            sheet: 0,
            cell: taco_grid::Cell::new(1, 1),
            value: taco_formula::Value::Number(5.0),
        },
        EditRecord::SetFormula { sheet: 0, cell: taco_grid::Cell::new(2, 1), src: "A1*2".into() },
        // Bad: sheet 9 does not exist.
        EditRecord::SetValue {
            sheet: 9,
            cell: taco_grid::Cell::new(1, 1),
            value: taco_formula::Value::Number(1.0),
        },
        EditRecord::SetValue {
            sheet: 0,
            cell: taco_grid::Cell::new(1, 2),
            value: taco_formula::Value::Number(7.0),
        },
    ];
    let mut wb = Workbook::with_taco();
    let err = wb.apply_batch(&records).expect_err("bad sheet must fail");
    assert_eq!(err.index, 3);
    assert_eq!(err.stage, taco_engine::BatchStage::Apply);
    // The prefix was applied and routed exactly as a serial prefix would be.
    let mut serial = Workbook::with_taco();
    apply_serial(&mut serial, &records[..3]);
    assert_same(&serial, &wb, "failed-batch prefix");
    // The suffix was not applied.
    wb.recalculate(RecalcMode::Serial);
    assert_eq!(wb.value(SheetId(0), taco_grid::Cell::new(1, 2)), taco_formula::Value::Empty);
}

proptest! {
    /// Random contiguous windows of the preset scripts — batches that
    /// start and stop at arbitrary points, including mid-sheet-creation —
    /// stay identical to serial application. The window's prefix is
    /// applied serially to both workbooks first so every window is valid.
    #[test]
    fn random_script_windows_are_identical(seed in 0u64..24) {
        let p = if seed % 2 == 0 { persist_enron_like() } else { persist_github_like() };
        let p = PersistParams { seed: 0x5EED ^ seed, ..p };
        let w = gen_persist_workload(&p);
        let all: Vec<EditRecord> = w.build.iter().chain(&w.burst).cloned().collect();
        let cut = (seed as usize * 97) % all.len();
        let (prefix, suffix) = all.split_at(cut);
        let window = &suffix[..suffix.len().min(64 + (seed as usize % 64))];

        let mut serial = Workbook::with_taco();
        apply_serial(&mut serial, prefix);
        let mut batched = Workbook::with_taco();
        apply_serial(&mut batched, prefix);

        apply_serial(&mut serial, window);
        batched.apply_batch(window).expect("window batch applies");
        assert_same(&serial, &batched, "window pre-recalc");
        serial.recalculate(RecalcMode::Serial);
        batched.recalculate(RecalcMode::Serial);
        assert_same(&serial, &batched, "window post-recalc");
    }
}
