//! Structural test for the intra-sheet level scheduler: with
//! evaluation-order tracing on, no formula may be evaluated before any
//! of its precedents that are part of the same dirty set — every dirty
//! precedent must land in a strictly earlier trace batch. Checked over
//! random acyclic corpora for both the serial path (singleton batches)
//! and the leveled path (one batch per level), plus a pinned cyclic
//! case for the leftover fallback.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use taco_engine::Engine;
use taco_formula::{Formula, Value};
use taco_grid::Cell;

const COLS: u32 = 6;
const ROWS: u32 = 20;

/// A random corpus that is acyclic by construction: the formula at
/// column `c` references only cells in columns `< c` (column A is pure
/// data), so precedence always points left. Mixes single-cell refs,
/// in-column ranges, and binary expressions so the leveler sees fan-in.
fn build_random(seed: u64) -> Engine {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = Engine::with_taco();
    for row in 1..=ROWS {
        e.set_value(Cell::new(1, row), Value::Number(rng.gen_range(-50..50) as f64));
    }
    for col in 2..=COLS {
        for row in 1..=ROWS {
            if rng.gen_range(0..4) == 0 {
                continue; // leave gaps so levels are ragged
            }
            let pcol = rng.gen_range(1..col);
            let a = Cell::new(pcol, rng.gen_range(1..=ROWS)).to_a1();
            let src = match rng.gen_range(0..3u32) {
                0 => format!("={a}+{row}"),
                1 => {
                    let top = rng.gen_range(1..=ROWS);
                    let bot = rng.gen_range(top..=ROWS);
                    format!("=SUM({}{top}:{}{bot})", col_letter(pcol), col_letter(pcol))
                }
                _ => {
                    let b = Cell::new(rng.gen_range(1..col), rng.gen_range(1..=ROWS)).to_a1();
                    format!("={a}*2-{b}")
                }
            };
            e.set_formula(Cell::new(col, row), &src).expect("generated formulae parse");
        }
    }
    e
}

fn col_letter(c: u32) -> char {
    char::from(b'A' + (c - 1) as u8)
}

/// Flattens the trace into cell → batch index, checking no cell is
/// evaluated twice.
fn batch_index(trace: &[Vec<Cell>]) -> HashMap<Cell, usize> {
    let mut batch_of = HashMap::new();
    for (i, batch) in trace.iter().enumerate() {
        for &cell in batch {
            assert!(batch_of.insert(cell, i).is_none(), "cell {cell:?} evaluated twice");
        }
    }
    batch_of
}

/// Asserts the scheduling invariant against the formulas themselves:
/// every traced cell's same-sheet precedents that were also evaluated
/// this pass sit in strictly earlier batches.
fn assert_precedence(e: &Engine, batch_of: &HashMap<Cell, usize>) {
    for (&cell, &b) in batch_of {
        let src = e.formula_of(cell).expect("traced cells are formulae");
        let f = Formula::parse(&src).expect("stored source parses");
        for qr in &f.refs {
            if qr.sheet.is_some() {
                continue;
            }
            for p in qr.rref.range().cells() {
                if let Some(&bp) = batch_of.get(&p) {
                    assert!(
                        bp < b,
                        "{cell:?} (batch {b}) ran no later than its precedent {p:?} (batch {bp})"
                    );
                }
            }
        }
    }
}

#[test]
fn leveled_schedule_never_runs_a_cell_before_its_precedents() {
    for seed in 0..24u64 {
        for threads in [2, 4, 8] {
            let mut e = build_random(seed);
            let dirty = e.dirty_count();
            e.set_trace_enabled(true);
            let evaluated = e.recalculate_leveled(threads);
            let trace = e.take_eval_trace();
            let batch_of = batch_index(&trace);
            assert_eq!(batch_of.len(), evaluated, "trace must cover every evaluated cell");
            assert_eq!(evaluated, dirty);
            assert_precedence(&e, &batch_of);
        }
    }
}

#[test]
fn serial_schedule_satisfies_the_same_invariant() {
    for seed in 0..12u64 {
        let mut e = build_random(seed);
        e.set_trace_enabled(true);
        let evaluated = e.recalculate();
        let trace = e.take_eval_trace();
        // Serial tracing is one singleton batch per evaluation.
        assert!(trace.iter().all(|b| b.len() == 1));
        let batch_of = batch_index(&trace);
        assert_eq!(batch_of.len(), evaluated);
        assert_precedence(&e, &batch_of);
    }
}

#[test]
fn cycles_fall_back_without_breaking_the_acyclic_part() {
    let mut e = Engine::with_taco();
    e.set_value(Cell::new(1, 1), Value::Number(3.0));
    e.set_formula(Cell::new(2, 1), "=A1+1").unwrap(); // clean chain
    e.set_formula(Cell::new(3, 1), "=B1*2").unwrap();
    e.set_formula(Cell::new(4, 1), "=E1+1").unwrap(); // 2-cycle D1 <-> E1
    e.set_formula(Cell::new(5, 1), "=D1+1").unwrap();
    e.set_trace_enabled(true);
    let evaluated = e.recalculate_leveled(4);
    assert_eq!(evaluated, 4);
    // The acyclic chain still respects precedence...
    let trace = e.take_eval_trace();
    let batch_of = batch_index(&trace);
    assert!(batch_of[&Cell::new(2, 1)] < batch_of[&Cell::new(3, 1)]);
    // ...and the cycle members are errors, like the serial path.
    assert_eq!(e.value(Cell::new(3, 1)), Value::Number(8.0));
    assert!(matches!(e.value(Cell::new(4, 1)), Value::Error(_)));
    assert!(matches!(e.value(Cell::new(5, 1)), Value::Error(_)));
}
