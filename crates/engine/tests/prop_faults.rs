//! Randomized fault schedules over the persistence presets: every
//! outcome of a save → burst → compact cycle under injected storage
//! faults (short writes, failed fsyncs, torn renames, ENOSPC, crash
//! points) must be a typed [`StoreError`], and once faults clear, the
//! workbook must reopen to a **clean prefix** of the per-client edit
//! order — never a panic, never a half-applied batch, never a
//! double-applied structural record.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use taco_engine::{PersistOptions, PersistentWorkbook, Workbook};
use taco_store::{encode_workbook, FaultPlan, FaultVfs, StoreError, Vfs};
use taco_workload::persistence::{
    gen_persist_workload, persist_enron_like, persist_github_like, PersistParams, PersistWorkload,
};

/// Scaled-down presets so debug-mode property runs stay fast; the mix
/// (and hence the record kinds hitting the WAL) matches the full ones.
fn presets() -> Vec<PersistParams> {
    vec![
        PersistParams { sheets: 2, rows: 20, burst_edits: 48, ..persist_enron_like() },
        PersistParams { sheets: 2, rows: 28, burst_edits: 48, ..persist_github_like() },
    ]
}

fn fingerprint(wb: &Workbook) -> Vec<u8> {
    encode_workbook(&wb.to_image()).expect("encode")
}

fn build_workbook(wl: &PersistWorkload) -> Workbook {
    let mut wb = Workbook::with_taco();
    for rec in &wl.build {
        wb.apply_edit(rec).expect("build script applies");
    }
    wb
}

/// Derives a fault plan from the seed: each dial is off in roughly a
/// third of runs and aggressive in the rest, so schedules range from
/// benign to hostile.
fn plan_from(seed: u64) -> FaultPlan {
    let mut x = seed | 1;
    let mut step = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    let dial = |v: u64| if v.is_multiple_of(3) { 0 } else { 2 + v % 40 };
    FaultPlan {
        short_write_every: dial(step()),
        fail_fsync_every: dial(step()),
        fail_rename_every: dial(step()),
        disk_capacity: if step() % 4 == 0 { Some(20_000 + step() % 400_000) } else { None },
        crash_at_op: if step() % 3 == 0 { Some(step() % 400) } else { None },
        ..FaultPlan::none(seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fault_schedules_always_recover_a_clean_prefix(seed in 0u64..u64::MAX) {
        for params in presets() {
            let wl = gen_persist_workload(&params);
            let path = PathBuf::from("book.taco");

            // Clean-prefix fingerprints of the per-client order.
            let mut fps = Vec::with_capacity(wl.burst.len() + 1);
            {
                let mut live = build_workbook(&wl);
                fps.push(fingerprint(&live));
                for rec in &wl.burst {
                    live.apply_edit(rec).expect("prefix edit");
                    fps.push(fingerprint(&live));
                }
            }

            let fv = FaultVfs::new(plan_from(seed));
            let vfs: Arc<dyn Vfs> = Arc::new(fv.clone());
            let opts = PersistOptions { compact_after_records: 24, sync_every_records: 1 };
            // The cycle under fire: stop at the first storage error (the
            // `BatchStage::Log` discipline — a log that cannot be
            // extended must not be extended further).
            let mut created = false;
            let outcome: Result<(), StoreError> = (|| {
                let mut pers =
                    PersistentWorkbook::create_with(Arc::clone(&vfs), &path, build_workbook(&wl), opts)?;
                created = true;
                for rec in &wl.burst {
                    pers.log_edit(rec)?;
                }
                pers.compact()?;
                Ok(())
            })();
            // Whatever happened, it surfaced as a typed error, not a
            // panic (reaching this line at all is half the property).
            let hits = fv.hits();
            if outcome.is_err() {
                prop_assert!(
                    hits.total() > 0 || fv.crashed(),
                    "cycle failed with {outcome:?} but no fault fired"
                );
            }

            // Faults over: the disk must hold a reopenable clean prefix.
            // A crash freezes the durable image; other faults leave the
            // live files in place.
            let disk: Arc<dyn Vfs> = if fv.crashed() {
                Arc::new(fv.reopen_from_crash())
            } else {
                fv.set_plan(FaultPlan::none(seed));
                vfs
            };
            match Workbook::open_with(disk, &path) {
                Ok(recovered) => {
                    let fp = fingerprint(&recovered);
                    prop_assert!(
                        fps.iter().any(|p| p == &fp),
                        "{} seed {seed:#x}: recovered state matches no clean prefix \
                         (faults: {hits:?}, crashed: {})",
                        params.name,
                        fv.crashed(),
                    );
                }
                Err(e) => {
                    // Only legal when `create` never succeeded: nothing
                    // was ever promised durable.
                    prop_assert!(
                        !created,
                        "{} seed {seed:#x}: reopen failed with {e} after create succeeded \
                         (faults: {hits:?}, crashed: {})",
                        params.name,
                        fv.crashed(),
                    );
                }
            }
        }
    }
}
