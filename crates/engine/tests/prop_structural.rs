//! Property tests for workbook-wide structural edits (insert/delete
//! rows/columns):
//!
//! 1. After a random structural script, the workbook is **bit-identical**
//!    to a fresh workbook rebuilt from the edited cell texts — i.e. the
//!    rewritten formula sources (including `#REF!`) print, re-parse, and
//!    re-evaluate to exactly the state the in-place rewrite produced.
//! 2. The same script produces identical receipts, dirty counts, and
//!    values across `RecalcMode::{Serial, Parallel, CellParallel}` —
//!    structural routing is mode-independent.
//! 3. save → structural burst through the WAL → reopen converges to the
//!    live workbook (values *and* formula source text).
//!
//! Corpora come from the persistence workload presets (Enron-like and
//! Github-like pattern mixes, scaled down), so the scripts cross sheets
//! through quoted qualifiers, rollups, and carry chains.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taco_core::StructuralOp;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, SheetId, Workbook};
use taco_store::EditRecord;
use taco_workload::persistence::{
    gen_persist_workload, persist_enron_like, persist_github_like, PersistParams,
};

fn preset(which: usize, rows: u32) -> PersistParams {
    let base = if which == 0 { persist_enron_like() } else { persist_github_like() };
    PersistParams { rows, burst_edits: 0, ..base }
}

/// Builds and fully recalculates a workbook from a preset's build script.
fn build_from(p: &PersistParams) -> Workbook {
    let w = gen_persist_workload(p);
    let mut wb = Workbook::with_taco();
    for rec in &w.build {
        wb.apply_edit(rec).expect("build script applies");
    }
    wb.recalculate(RecalcMode::Serial);
    wb
}

/// A seeded structural script over the preset's sheets: all four kinds,
/// including deletes that land on formula columns and leave `#REF!`s.
fn structural_script(p: &PersistParams, seed: u64, count: usize) -> Vec<EditRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let sheet = rng.gen_range(0..p.sheets as u32);
            let n = rng.gen_range(1..=2u32);
            let op = match rng.gen_range(0..4u32) {
                0 => StructuralOp::InsertRows { at: rng.gen_range(1..=p.rows), n },
                1 => StructuralOp::DeleteRows { at: rng.gen_range(1..=p.rows), n },
                2 => StructuralOp::InsertCols { at: rng.gen_range(1..=6), n },
                _ => StructuralOp::DeleteCols { at: rng.gen_range(2..=6), n: 1 },
            };
            EditRecord::Structural { sheet, op }
        })
        .collect()
}

/// Every cell of every sheet as sorted `(sheet, cell, formula-src, value)`
/// rows — the full observable state.
fn full_state(wb: &Workbook) -> Vec<(usize, taco_grid::Cell, Option<String>, taco_formula::Value)> {
    let mut out = Vec::new();
    for s in 0..wb.sheet_count() {
        for (cell, content) in wb.sheet(SheetId(s)).cells() {
            out.push((s, cell, content.formula().map(|f| f.src.clone()), content.value().clone()));
        }
    }
    out.sort_unstable_by_key(|(s, c, _, _)| (*s, c.row, c.col));
    out
}

/// Rebuilds a fresh workbook from `wb`'s visible cell texts: formula
/// cells re-enter through their (possibly rewritten) source, pure cells
/// through their value.
fn rebuild_from_texts(wb: &Workbook) -> Workbook {
    let mut out = Workbook::with_taco();
    for s in 0..wb.sheet_count() {
        let id = out.add_sheet(wb.sheet_name(SheetId(s))).expect("fresh name");
        assert_eq!(id.0, s);
    }
    for s in 0..wb.sheet_count() {
        let id = SheetId(s);
        for (cell, content) in wb.sheet(id).cells() {
            match content.formula() {
                Some(f) => {
                    out.set_formula(id, cell, &format!("={}", f.src)).unwrap_or_else(|e| {
                        panic!("rewritten source {:?} must re-parse: {e}", f.src)
                    });
                }
                None => {
                    out.set_value(id, cell, content.value().clone());
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Properties 1 + 2: rebuild-from-texts equivalence and recalc-mode
    /// independence of the structural path.
    #[test]
    fn structural_edits_are_rebuildable_and_mode_independent(
        which in 0usize..=1,
        rows in 8u32..=20,
        seed in 0u64..10_000,
    ) {
        let p = preset(which, rows);
        let script = structural_script(&p, seed, 6);

        let modes = [
            RecalcMode::Serial,
            RecalcMode::Parallel { threads: 4 },
            RecalcMode::CellParallel { threads: 4 },
        ];
        let mut books: Vec<Workbook> = modes.iter().map(|_| build_from(&p)).collect();

        // Apply the script everywhere; receipts and dirty counts must not
        // depend on the recalc mode used before or after.
        let mut reference_receipts = None;
        for wb in &mut books {
            let mut receipts = Vec::new();
            for rec in &script {
                let EditRecord::Structural { sheet, op } = rec else { unreachable!() };
                let receipt = wb.apply_structural(SheetId(*sheet as usize), *op);
                receipts.push(receipt.dirty);
            }
            match &reference_receipts {
                None => reference_receipts = Some((receipts, wb.dirty_count())),
                Some((r0, d0)) => {
                    prop_assert_eq!(&receipts, r0, "structural receipts diverged across modes");
                    prop_assert_eq!(wb.dirty_count(), *d0);
                }
            }
        }
        let evaluated: Vec<usize> =
            books.iter_mut().zip(modes).map(|(wb, m)| wb.recalculate(m)).collect();
        for &e in &evaluated[1..] {
            prop_assert_eq!(e, evaluated[0], "evaluated-cell counts diverged");
        }
        let reference = full_state(&books[0]);
        for (i, wb) in books.iter().enumerate().skip(1) {
            prop_assert_eq!(&full_state(wb), &reference, "state diverged (mode #{})", i);
        }
        prop_assert_eq!(books[0].dirty_count(), 0);

        // Property 1: a fresh workbook rebuilt from the edited cell texts
        // recalculates to the identical state — rewritten sources
        // (including `#REF!`) survive a print → parse → evaluate round
        // trip.
        let mut rebuilt = rebuild_from_texts(&books[0]);
        rebuilt.recalculate(RecalcMode::Serial);
        prop_assert_eq!(
            full_state(&rebuilt), reference,
            "rebuild from edited cell texts must be bit-identical"
        );
        prop_assert_eq!(rebuilt.cross_edge_count(), books[0].cross_edge_count());
    }

    /// Property 3: save → structural burst via the WAL → reopen converges
    /// to the live workbook.
    #[test]
    fn structural_bursts_survive_wal_reopen(
        which in 0usize..=1,
        rows in 8u32..=16,
        seed in 0u64..10_000,
    ) {
        let p = preset(which, rows);
        let script = structural_script(&p, seed ^ 0x5EED, 5);

        let path = std::env::temp_dir().join(format!(
            "taco_prop_structural_{}_{which}_{rows}_{seed}.taco",
            std::process::id()
        ));
        let wal = taco_engine::wal_path(&path);

        let wb = build_from(&p);
        wb.save(&path).expect("save");
        let mut live = PersistentWorkbook::create(
            &path,
            wb,
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .expect("persistent workbook");
        for rec in &script {
            live.log_edit(rec).expect("structural edit logs");
        }
        live.sync().expect("sync");
        live.recalculate(RecalcMode::Serial);

        let mut reopened = Workbook::open(&path).expect("reopen");
        reopened.recalculate(RecalcMode::Serial);
        prop_assert_eq!(
            full_state(&reopened), full_state(live.workbook()),
            "WAL reopen must converge to the live workbook"
        );
        prop_assert_eq!(reopened.cross_edge_count(), live.workbook().cross_edge_count());

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
    }
}
