//! Exhaustive crash-point sweep: for **every** I/O operation in a
//! save → edit burst → compaction → structural burst cycle, crash the
//! simulated disk exactly there, reopen from the durable image, and
//! assert the recovered workbook is bit-identical to some clean prefix
//! of the per-client edit order — with zero double-applied structural
//! edits (a double InsertRows shifts the data region twice and matches
//! no prefix).
//!
//! The sweep runs the cycle once fault-free to count I/O operations,
//! then replays it `op_count` times with the crash point advanced one
//! op at a time. Set `TACO_CRASH_SWEEP=full` to add a second sweep
//! over a larger Github-mix workload (the quick sweep is already
//! exhaustive over every op of its cycle).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use taco_engine::{PersistOptions, PersistentWorkbook, Workbook};
use taco_store::{encode_workbook, EditRecord, FaultPlan, FaultVfs, StoreError, Vfs};
use taco_workload::persistence::{
    gen_persist_workload, persist_enron_like, persist_github_like, PersistParams, PersistWorkload,
};

/// How far a cycle got before an injected fault stopped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Progress {
    /// Crashed inside `create`: nothing was ever promised durable.
    BeforeCreate,
    /// The initial snapshot + WAL are durable.
    Created,
    /// The cycle ran to completion.
    Done,
}

/// The full per-client edit order after the initial save: the preset's
/// burst, then a deterministic structural tail sharp enough that any
/// double application is visible (row inserts move the data column,
/// a column delete leaves `#REF!`s at a known spot).
fn post_edits(wl: &PersistWorkload, sheets: usize) -> Vec<EditRecord> {
    use taco_core::StructuralOp;
    let mut edits = wl.burst.clone();
    edits.push(EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 2, n: 2 } });
    edits.push(EditRecord::SetValue {
        sheet: 0,
        cell: taco_grid::Cell::new(1, 2),
        value: taco_formula::Value::Number(123.5),
    });
    edits.push(EditRecord::Structural { sheet: 0, op: StructuralOp::DeleteCols { at: 2, n: 1 } });
    if sheets > 1 {
        edits.push(EditRecord::Structural {
            sheet: 1,
            op: StructuralOp::InsertCols { at: 1, n: 1 },
        });
    }
    edits
}

/// The canonical fingerprint of a workbook's observable state.
fn fingerprint(wb: &Workbook) -> Vec<u8> {
    encode_workbook(&wb.to_image()).expect("encode")
}

fn build_workbook(wl: &PersistWorkload) -> Workbook {
    let mut wb = Workbook::with_taco();
    for rec in &wl.build {
        wb.apply_edit(rec).expect("build script applies");
    }
    wb
}

/// Fingerprints of every clean prefix: `fps[i]` is the state after the
/// build plus the first `i` post-save edits.
fn clean_prefix_fingerprints(wl: &PersistWorkload, post: &[EditRecord]) -> Vec<Vec<u8>> {
    let mut wb = build_workbook(wl);
    let mut fps = Vec::with_capacity(post.len() + 1);
    fps.push(fingerprint(&wb));
    for rec in post {
        wb.apply_edit(rec).expect("prefix edit applies");
        fps.push(fingerprint(&wb));
    }
    fps
}

/// One save → burst → compact → structural-burst cycle over `vfs`.
/// Stops at the first storage error (the `BatchStage::Log` discipline:
/// once the log cannot be extended, nothing further may be logged).
fn run_cycle(
    vfs: Arc<dyn Vfs>,
    path: &Path,
    wl: &PersistWorkload,
    post: &[EditRecord],
) -> (Progress, Result<(), StoreError>) {
    let opts = PersistOptions { compact_after_records: 0, sync_every_records: 1 };
    let wb = build_workbook(wl);
    let mut pers = match PersistentWorkbook::create_with(vfs, path, wb, opts) {
        Ok(p) => p,
        Err(e) => return (Progress::BeforeCreate, Err(e)),
    };
    // The structural tail runs after a mid-cycle compaction, so its
    // records land in a fresh epoch-bumped log.
    let (burst, tail) = post.split_at(wl.burst.len());
    for rec in burst {
        if let Err(e) = pers.log_edit(rec) {
            return (Progress::Created, Err(e));
        }
    }
    if let Err(e) = pers.compact() {
        return (Progress::Created, Err(e));
    }
    for rec in tail {
        if let Err(e) = pers.log_edit(rec) {
            return (Progress::Created, Err(e));
        }
    }
    if let Err(e) = pers.sync() {
        return (Progress::Created, Err(e));
    }
    (Progress::Done, Ok(()))
}

fn sweep(params: &PersistParams, seed: u64) {
    let wl = gen_persist_workload(params);
    let post = post_edits(&wl, params.sheets);
    let fps = clean_prefix_fingerprints(&wl, &post);
    let path = PathBuf::from("book.taco");

    // Fault-free dry run: counts the cycle's I/O operations.
    let dry = FaultVfs::pristine(seed);
    let (progress, outcome) = run_cycle(Arc::new(dry.clone()), &path, &wl, &post);
    assert_eq!(progress, Progress::Done, "fault-free cycle must complete: {outcome:?}");
    let clean_fp = fingerprint(
        &Workbook::open_with(Arc::new(dry.reopen_from_crash()), &path).expect("clean reopen"),
    );
    assert_eq!(&clean_fp, fps.last().unwrap(), "fault-free cycle recovers the full edit order");
    let total_ops = dry.op_count();
    assert!(total_ops > 50, "the cycle must exercise a real number of I/O ops, got {total_ops}");

    let mut recovered_prefixes = std::collections::BTreeSet::new();
    for k in 0..total_ops {
        let fv = FaultVfs::new(FaultPlan { crash_at_op: Some(k), ..FaultPlan::none(seed) });
        let (progress, outcome) = run_cycle(Arc::new(fv.clone()), &path, &wl, &post);
        assert!(outcome.is_err(), "crash at op {k}/{total_ops} must surface");
        assert!(fv.crashed(), "crash point {k} must have fired");

        // Reopen from the frozen durable image.
        let disk: Arc<dyn Vfs> = Arc::new(fv.reopen_from_crash());
        match Workbook::open_with(disk, &path) {
            Ok(recovered) => {
                let fp = fingerprint(&recovered);
                let prefix = fps.iter().position(|p| p == &fp);
                assert!(
                    prefix.is_some(),
                    "crash at op {k}/{total_ops} ({}): recovered state matches no clean \
                     prefix — a lost, reordered, or double-applied edit",
                    params.name,
                );
                recovered_prefixes.insert(prefix.unwrap());
            }
            Err(e) => {
                // Only legal before `create` returned: nothing durable
                // was ever promised. Afterwards the snapshot must open.
                assert_eq!(
                    progress,
                    Progress::BeforeCreate,
                    "crash at op {k}/{total_ops}: reopen failed with {e} after create succeeded"
                );
            }
        }
    }
    // The sweep must actually observe recovery at many distinct points
    // of the edit order, not collapse to one prefix.
    assert!(
        recovered_prefixes.len() > 10,
        "sweep recovered only {} distinct prefixes",
        recovered_prefixes.len()
    );
}

#[test]
fn every_crash_point_recovers_a_clean_prefix() {
    // Small enough that sweeping every I/O op stays fast; the cycle
    // still covers every record kind, cross-sheet formulas, compaction,
    // and the structural tail.
    let params = PersistParams { sheets: 2, rows: 24, burst_edits: 40, ..persist_enron_like() };
    sweep(&params, 0xC0FFEE);
}

#[test]
fn full_crash_sweep_over_the_github_mix() {
    if std::env::var("TACO_CRASH_SWEEP").as_deref() != Ok("full") {
        eprintln!("skipping full sweep (set TACO_CRASH_SWEEP=full to run)");
        return;
    }
    let params = PersistParams { sheets: 3, rows: 48, burst_edits: 80, ..persist_github_like() };
    sweep(&params, 0xFACADE);
}
