//! Engine-level property: arbitrary edit scripts (values, formulae,
//! autofills, clears, recalcs) produce identical sheets under the TACO and
//! NoComp backends — compression must be invisible to the user.

use proptest::prelude::*;
use taco_engine::Engine;
use taco_formula::Value;
use taco_grid::{Cell, Range};

const W: u32 = 8;
const H: u32 = 14;

#[derive(Debug, Clone)]
enum Op {
    SetValue(Cell, f64),
    SetFormula(Cell, String),
    Autofill(Cell, Range),
    Clear(Range),
    Recalc,
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    (1u32..=W, 1u32..=H).prop_map(|(c, r)| Cell::new(c, r))
}

fn arb_formula_at() -> impl Strategy<Value = (Cell, String)> {
    (arb_cell(), arb_cell(), arb_cell(), 0u8..5).prop_map(|(at, a, b, kind)| {
        let (a, b) = (a.to_a1(), b.to_a1());
        let src = match kind {
            0 => format!("={a}+1"),
            1 => format!("=SUM({}:{})", a.clone().min(b.clone()), a.max(b)),
            2 => format!("=IF({a}>{b},{a},{b})"),
            3 => format!("={a}*2-{b}"),
            _ => format!("=MAX({a},{b},0)"),
        };
        (at, src)
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (arb_cell(), -50i32..50).prop_map(|(c, v)| Op::SetValue(c, f64::from(v))),
        3 => arb_formula_at().prop_map(|(c, s)| Op::SetFormula(c, s)),
        1 => (arb_cell(), arb_cell(), arb_cell()).prop_map(|(src, a, b)| {
            Op::Autofill(src, Range::new(a, b))
        }),
        1 => (arb_cell(), arb_cell()).prop_map(|(a, b)| Op::Clear(Range::new(a, b))),
        1 => Just(Op::Recalc),
    ]
}

fn apply(e: &mut Engine, ops: &[Op]) {
    for op in ops {
        match op {
            Op::SetValue(c, v) => {
                e.set_value(*c, Value::Number(*v));
            }
            Op::SetFormula(c, s) => {
                e.set_formula(*c, s).expect("generated formulae parse");
            }
            Op::Autofill(src, targets) => {
                // Only meaningful if src currently holds a formula.
                let _ = e.autofill(*src, *targets);
            }
            Op::Clear(r) => {
                e.clear_range(*r);
            }
            Op::Recalc => {
                e.recalculate();
            }
        }
    }
    e.recalculate();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn taco_and_nocomp_engines_are_indistinguishable(ops in prop::collection::vec(arb_op(), 1..25)) {
        let mut taco = Engine::with_taco();
        let mut nocomp = Engine::with_nocomp();
        apply(&mut taco, &ops);
        apply(&mut nocomp, &ops);
        for col in 1..=W {
            for row in 1..=H {
                let cell = Cell::new(col, row);
                prop_assert_eq!(
                    taco.value(cell),
                    nocomp.value(cell),
                    "divergence at {} after {:?}",
                    cell,
                    ops
                );
            }
        }
        prop_assert!(taco.graph().num_edges() <= nocomp.graph().num_edges());
    }
}
