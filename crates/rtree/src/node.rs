use taco_grid::Range;

/// Maximum entries per node before a split (Guttman's `M`).
pub const MAX_ENTRIES: usize = 8;
/// Minimum fill per node (Guttman's `m`); underflowing nodes are condensed.
pub const MIN_ENTRIES: usize = 3;

/// Area of a range as `u64` (used by the least-enlargement heuristics).
#[inline]
fn area(r: Range) -> u64 {
    r.area()
}

/// Area growth needed for `mbr` to also cover `add`.
#[inline]
fn enlargement(mbr: Range, add: Range) -> u64 {
    area(mbr.bounding_union(&add)) - area(mbr)
}

#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Leaf { entries: Vec<(Range, T)> },
    Internal { children: Vec<(Range, Box<Node<T>>)> },
}

impl<T> Node<T> {
    pub(crate) fn new_leaf() -> Self {
        Node::Leaf { entries: Vec::new() }
    }

    pub(crate) fn new_internal(children: Vec<(Range, Box<Node<T>>)>) -> Self {
        Node::Internal { children }
    }

    pub(crate) fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children } => 1 + children.first().map_or(0, |(_, c)| c.height()),
        }
    }

    /// Minimal bounding rectangle of this node's contents, `None` if empty.
    pub(crate) fn mbr(&self) -> Option<Range> {
        match self {
            Node::Leaf { entries } => {
                entries.iter().map(|(r, _)| *r).reduce(|a, b| a.bounding_union(&b))
            }
            Node::Internal { children } => {
                children.iter().map(|(r, _)| *r).reduce(|a, b| a.bounding_union(&b))
            }
        }
    }

    /// Inserts and returns `Some((mbr, sibling))` when this node split.
    pub(crate) fn insert(&mut self, range: Range, value: T) -> Option<(Range, Node<T>)> {
        match self {
            Node::Leaf { entries } => {
                entries.push((range, value));
                if entries.len() > MAX_ENTRIES {
                    let split = quadratic_split(entries, |(r, _)| *r);
                    Some((
                        split.iter().map(|(r, _)| *r).reduce(|a, b| a.bounding_union(&b)).unwrap(),
                        Node::Leaf { entries: split },
                    ))
                } else {
                    None
                }
            }
            Node::Internal { children } => {
                // ChooseSubtree: least enlargement, ties by smallest area.
                let idx = children
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (mbr, _))| (enlargement(*mbr, range), area(*mbr)))
                    .map(|(i, _)| i)
                    .expect("internal nodes are never empty");
                let (child_mbr, child) = &mut children[idx];
                let result = child.insert(range, value);
                *child_mbr = child_mbr.bounding_union(&range);
                if let Some((new_mbr, new_node)) = result {
                    // The split may have moved entries out of the child:
                    // recompute its MBR exactly.
                    *child_mbr = child.mbr().expect("child keeps at least half its entries");
                    children.push((new_mbr, Box::new(new_node)));
                    if children.len() > MAX_ENTRIES {
                        let split = quadratic_split(children, |(r, _)| *r);
                        return Some((
                            split
                                .iter()
                                .map(|(r, _)| *r)
                                .reduce(|a, b| a.bounding_union(&b))
                                .unwrap(),
                            Node::Internal { children: split },
                        ));
                    }
                }
                None
            }
        }
    }

    pub(crate) fn search<'a, F>(&'a self, query: Range, f: &mut F)
    where
        F: FnMut(Range, &'a T),
    {
        match self {
            Node::Leaf { entries } => {
                for (r, v) in entries {
                    if r.overlaps(&query) {
                        f(*r, v);
                    }
                }
            }
            Node::Internal { children } => {
                for (mbr, child) in children {
                    if mbr.overlaps(&query) {
                        child.search(query, f);
                    }
                }
            }
        }
    }

    pub(crate) fn any_overlapping(&self, query: Range) -> bool {
        match self {
            Node::Leaf { entries } => entries.iter().any(|(r, _)| r.overlaps(&query)),
            Node::Internal { children } => children
                .iter()
                .any(|(mbr, child)| mbr.overlaps(&query) && child.any_overlapping(query)),
        }
    }

    pub(crate) fn collect_into<'a>(&'a self, out: &mut Vec<(Range, &'a T)>) {
        match self {
            Node::Leaf { entries } => out.extend(entries.iter().map(|(r, v)| (*r, v))),
            Node::Internal { children } => {
                for (_, child) in children {
                    child.collect_into(out);
                }
            }
        }
    }

    /// Drains every leaf entry of the subtree into `out` (used when a node
    /// underflows and its survivors must be re-inserted).
    fn drain_into(self, out: &mut Vec<(Range, T)>) {
        match self {
            Node::Leaf { entries } => out.extend(entries),
            Node::Internal { children } => {
                for (_, child) in children {
                    child.drain_into(out);
                }
            }
        }
    }

    /// Replaces a root of the form `Internal[single child]` by that child.
    pub(crate) fn shrink_root(&mut self) {
        loop {
            match self {
                Node::Internal { children } if children.len() == 1 => {
                    let (_, only) = children.pop().expect("len checked");
                    *self = *only;
                }
                Node::Internal { children } if children.is_empty() => {
                    *self = Node::new_leaf();
                    return;
                }
                _ => return,
            }
        }
    }
}

impl<T: PartialEq> Node<T> {
    /// Removes one `(range, value)` entry. Underflowing descendants are
    /// dissolved and their entries pushed to `orphans` for re-insertion.
    pub(crate) fn remove(
        &mut self,
        range: Range,
        value: &T,
        orphans: &mut Vec<(Range, T)>,
    ) -> bool {
        match self {
            Node::Leaf { entries } => {
                if let Some(pos) = entries.iter().position(|(r, v)| *r == range && v == value) {
                    entries.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal { children } => {
                let mut removed_at = None;
                for (i, (mbr, child)) in children.iter_mut().enumerate() {
                    if mbr.overlaps(&range) && child.remove(range, value, orphans) {
                        removed_at = Some(i);
                        break;
                    }
                }
                let Some(i) = removed_at else { return false };
                let underflow = match children[i].1.as_ref() {
                    Node::Leaf { entries } => entries.len() < MIN_ENTRIES,
                    Node::Internal { children } => children.len() < MIN_ENTRIES,
                };
                if underflow {
                    let (_, child) = children.swap_remove(i);
                    child.drain_into(orphans);
                } else {
                    let (mbr, child) = &mut children[i];
                    *mbr = child.mbr().expect("non-underflowing node is non-empty");
                }
                true
            }
        }
    }
}

/// Guttman's quadratic split: picks the pair of seeds wasting the most
/// area if grouped together, then assigns remaining entries to the group
/// whose MBR grows least (respecting the minimum fill). Returns the entries
/// for the *new* sibling node; the survivors stay in `entries`.
fn quadratic_split<E, K>(entries: &mut Vec<E>, key: K) -> Vec<E>
where
    K: Fn(&E) -> Range,
{
    debug_assert!(entries.len() > MAX_ENTRIES);
    // PickSeeds: the pair with maximal dead space.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, 0i64);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let (ri, rj) = (key(&entries[i]), key(&entries[j]));
            let dead = area(ri.bounding_union(&rj)) as i64 - area(ri) as i64 - area(rj) as i64;
            if dead > worst || (i, j) == (0, 1) {
                (seed_a, seed_b, worst) = (i, j, dead);
            }
        }
    }
    let total = entries.len();
    let mut rest: Vec<E> = Vec::with_capacity(total - 2);
    // Take seed_b first so indices stay valid (seed_b > seed_a).
    let eb = entries.swap_remove(seed_b.max(seed_a));
    let ea = entries.swap_remove(seed_b.min(seed_a));
    rest.append(entries);

    let mut group_a = vec![ea];
    let mut group_b = vec![eb];
    let mut mbr_a = key(&group_a[0]);
    let mut mbr_b = key(&group_b[0]);

    while let Some(e) = rest.pop() {
        let remaining = rest.len() + 1;
        // Force assignment if a group must take all remaining entries to
        // reach minimum fill.
        if group_a.len() + remaining <= MIN_ENTRIES {
            mbr_a = mbr_a.bounding_union(&key(&e));
            group_a.push(e);
            continue;
        }
        if group_b.len() + remaining <= MIN_ENTRIES {
            mbr_b = mbr_b.bounding_union(&key(&e));
            group_b.push(e);
            continue;
        }
        let r = key(&e);
        let grow_a = enlargement(mbr_a, r);
        let grow_b = enlargement(mbr_b, r);
        let pick_a = match grow_a.cmp(&grow_b) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                // Ties: smaller area, then fewer entries.
                (area(mbr_a), group_a.len()) <= (area(mbr_b), group_b.len())
            }
        };
        if pick_a {
            mbr_a = mbr_a.bounding_union(&r);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.bounding_union(&r);
            group_b.push(e);
        }
    }
    *entries = group_a;
    group_b
}
