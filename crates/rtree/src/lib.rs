//! An R-tree spatial index built from scratch (Guttman 1984, quadratic
//! split), specialized to the integer cell grid of a spreadsheet.
//!
//! TACO keeps one R-tree over the precedent vertices and one over the
//! dependent vertices of the compressed formula graph; every core operation
//! (candidate discovery during compression, the modified BFS, visited-set
//! subtraction, clearing cells) starts with "find all stored ranges that
//! overlap an input range", which is exactly the window query this index
//! answers.
//!
//! The tree stores `(Range, T)` entries; `T` is typically an edge id.
//! Duplicate ranges are allowed (several edges can share a vertex range).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;

pub use node::{MAX_ENTRIES, MIN_ENTRIES};

use node::Node;
use taco_grid::Range;

/// A spatial index over `(Range, T)` entries supporting overlap queries.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree { root: Node::new_leaf(), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = Node::new_leaf();
        self.len = 0;
    }

    /// Inserts an entry. Duplicates (same range, same or different payload)
    /// are allowed and stored separately.
    pub fn insert(&mut self, range: Range, value: T) {
        if let Some((mbr, sibling)) = self.root.insert(range, value) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
            let old_mbr = old_root.mbr().expect("split node is non-empty");
            self.root =
                Node::new_internal(vec![(old_mbr, Box::new(old_root)), (mbr, Box::new(sibling))]);
        }
        self.len += 1;
    }

    /// Calls `f` for every stored entry whose range overlaps `query`.
    pub fn for_each_overlapping<'a, F>(&'a self, query: Range, mut f: F)
    where
        F: FnMut(Range, &'a T),
    {
        self.root.search(query, &mut f);
    }

    /// Collects every `(range, &value)` overlapping `query`.
    pub fn overlapping(&self, query: Range) -> Vec<(Range, &T)> {
        let mut out = Vec::new();
        self.for_each_overlapping(query, |r, v| out.push((r, v)));
        out
    }

    /// `true` iff at least one stored range overlaps `query`.
    pub fn any_overlapping(&self, query: Range) -> bool {
        self.root.any_overlapping(query)
    }

    /// Iterates over all entries (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = (Range, &T)> {
        let mut out = Vec::with_capacity(self.len);
        self.root.collect_into(&mut out);
        out.into_iter()
    }

    /// Height of the tree (a single leaf has height 1). Exposed for tests
    /// and diagnostics.
    pub fn height(&self) -> usize {
        self.root.height()
    }
}

impl<T: PartialEq> RTree<T> {
    /// Removes one entry matching `(range, value)` exactly. Returns `true`
    /// if an entry was removed.
    ///
    /// Underflowing nodes are condensed Guttman-style: their surviving
    /// entries are re-inserted from the top.
    pub fn remove(&mut self, range: Range, value: &T) -> bool {
        let mut orphans = Vec::new();
        let removed = self.root.remove(range, value, &mut orphans);
        if removed {
            self.len -= 1;
            // Shrink the root if it became a trivial internal node.
            self.root.shrink_root();
            for (r, v) in orphans {
                // Re-insert orphans without double-counting len.
                if let Some((mbr, sibling)) = self.root.insert(r, v) {
                    let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
                    let old_mbr = old_root.mbr().expect("split node is non-empty");
                    self.root = Node::new_internal(vec![
                        (old_mbr, Box::new(old_root)),
                        (mbr, Box::new(sibling)),
                    ]);
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_grid::Cell;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.overlapping(r("A1:Z100")).is_empty());
        assert!(!t.any_overlapping(r("A1")));
    }

    #[test]
    fn insert_and_query_basics() {
        let mut t = RTree::new();
        t.insert(r("A1:A3"), 1u32);
        t.insert(r("B1"), 2);
        t.insert(r("B2"), 3);
        t.insert(r("B2:B3"), 4);
        assert_eq!(t.len(), 4);

        let mut hits: Vec<u32> = t.overlapping(r("A1")).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1]);

        let mut hits: Vec<u32> = t.overlapping(r("B2")).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![3, 4]);

        assert!(t.any_overlapping(r("A2:B2")));
        assert!(!t.any_overlapping(r("D4:E9")));
    }

    #[test]
    fn duplicate_ranges_are_kept_separately() {
        let mut t = RTree::new();
        t.insert(r("C1:C4"), 10u32);
        t.insert(r("C1:C4"), 11);
        assert_eq!(t.overlapping(r("C2")).len(), 2);
        assert!(t.remove(r("C1:C4"), &10));
        assert_eq!(t.overlapping(r("C2")).len(), 1);
        assert_eq!(*t.overlapping(r("C2"))[0].1, 11);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = RTree::new();
        t.insert(r("A1"), 1u32);
        assert!(!t.remove(r("A1"), &2));
        assert!(!t.remove(r("A2"), &1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(r("A1"), &1));
        assert!(t.is_empty());
    }

    #[test]
    fn grows_and_answers_point_queries() {
        let mut t = RTree::new();
        // A 40x40 block of single cells.
        for col in 1..=40u32 {
            for row in 1..=40u32 {
                t.insert(Range::cell(Cell::new(col, row)), (col, row));
            }
        }
        assert_eq!(t.len(), 1600);
        assert!(t.height() > 1);
        for probe in [(1, 1), (40, 40), (17, 23)] {
            let hits = t.overlapping(Range::cell(Cell::new(probe.0, probe.1)));
            assert_eq!(hits.len(), 1);
            assert_eq!(*hits[0].1, probe);
        }
        // Window query.
        let hits = t.overlapping(Range::from_coords(3, 3, 5, 4));
        assert_eq!(hits.len(), 6);
    }

    #[test]
    fn mass_delete_shrinks_back() {
        let mut t = RTree::new();
        let mut keys = Vec::new();
        for col in 1..=25u32 {
            for row in 1..=25u32 {
                let range = Range::cell(Cell::new(col, row));
                t.insert(range, col * 100 + row);
                keys.push((range, col * 100 + row));
            }
        }
        for (range, v) in &keys {
            assert!(t.remove(*range, v), "missing {range}");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.overlapping(r("A1:Z99")).is_empty());
    }

    #[test]
    fn overlapping_ranges_all_found() {
        let mut t = RTree::new();
        // Nested / overlapping ranges stress the MBR logic.
        t.insert(r("A1:J10"), 0u32);
        t.insert(r("C3:D4"), 1);
        t.insert(r("J10:K11"), 2);
        t.insert(r("K11"), 3);
        let mut hits: Vec<u32> = t.overlapping(r("J10")).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn iter_visits_everything() {
        let mut t = RTree::new();
        for i in 0..100u32 {
            t.insert(Range::cell(Cell::new(i % 10 + 1, i / 10 + 1)), i);
        }
        let mut seen: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets() {
        let mut t = RTree::new();
        for i in 0..50u32 {
            t.insert(Range::cell(Cell::new(i + 1, 1)), i);
        }
        t.clear();
        assert!(t.is_empty());
        assert!(!t.any_overlapping(r("A1:XFD1")));
    }
}
