//! An arena-backed R-tree spatial index (Guttman 1984 insert/condense,
//! quadratic split, STR bulk loading), specialized to the integer cell
//! grid of a spreadsheet.
//!
//! TACO keeps one R-tree over the precedent vertices and one over the
//! dependent vertices of the compressed formula graph; every core
//! operation (candidate discovery during compression, the modified BFS,
//! visited-set subtraction, clearing cells) starts with "find all stored
//! ranges that overlap an input range", which is exactly the window query
//! this index answers.
//!
//! # Layout and allocation discipline
//!
//! Nodes live in a flat `Vec` pool addressed by `u32` ids — no `Box`, no
//! pointer chasing across allocations, no per-node heap traffic. Each
//! node inlines its child MBRs and slot ids in fixed arrays sized by the
//! `F` const parameter (the fanout, default [`DEFAULT_FANOUT`]). Leaf
//! slots point into a second flat arena of `(Range, T)` entries, which
//! doubles as the backing store for the lazy [`FanoutRTree::iter`].
//!
//! Hot-path contract:
//!
//! - [`FanoutRTree::for_each_overlapping`] / [`FanoutRTree::search_with`] /
//!   [`FanoutRTree::any_overlapping`] allocate **nothing** (`search_with` pushes
//!   onto a caller-owned [`SearchScratch`] whose capacity survives calls).
//! - [`FanoutRTree::clear`] retains every buffer's capacity, so a tree reused
//!   as a per-query visited set stops allocating once warm.
//! - [`FanoutRTree::insert`] / [`FanoutRTree::remove`] reuse internal split/condense
//!   scratch buffers; steady-state mutation does not allocate either
//!   (only arena growth does).
//! - [`FanoutRTree::bulk_load`] packs a full corpus bottom-up with
//!   Sort-Tile-Recursive tiling: every node (except the last of each
//!   level) is filled to `F`, which both shrinks the pool and minimizes
//!   overlap, so queries visit measurably fewer nodes than on an
//!   insertion-built tree.
//!
//! The tree stores `(Range, T)` entries; `T` is typically an edge id.
//! Duplicate ranges are allowed (several edges can share a vertex range).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use taco_grid::{Cell, Range};

/// Default node fanout. 16 won the 8-vs-16-vs-32 sweep in
/// `crates/bench/benches/queries_baseline.rs` on the combined
/// build + fig10/fig14 query workload (numbers in DESIGN.md "Index
/// internals"): 8 visits ~1.7–2× more nodes per window query, while 32
/// pays O(F²) quadratic splits on the insert-heavy compression path
/// (~1.5–2× slower corpus builds) for only a marginal visit reduction.
pub const DEFAULT_FANOUT: usize = 16;

/// Minimum fill per node (Guttman's `m`, 40% of `F`); underflowing nodes
/// are condensed and their entries re-inserted.
#[must_use]
pub const fn min_fill(fanout: usize) -> usize {
    let m = fanout * 2 / 5;
    if m < 2 {
        2
    } else {
        m
    }
}

/// Sentinel for "no node"; also the filler for unused slot-array cells.
const NIL: u32 = u32::MAX;

/// Area of a range as `u64` (used by the least-enlargement heuristics).
#[inline]
fn area(r: Range) -> u64 {
    r.area()
}

/// Area growth needed for `mbr` to also cover `add`.
#[inline]
fn enlargement(mbr: Range, add: Range) -> u64 {
    area(mbr.bounding_union(&add)) - area(mbr)
}

/// One pool node: child MBRs and slot ids inline, nothing heap-allocated.
/// For internal nodes `slots[i]` is a node id; for leaves it indexes the
/// entry arena. Whether a node is a leaf is positional — every leaf sits
/// at depth `height`, so traversals carry the depth instead of a tag.
#[derive(Debug, Clone, Copy)]
struct Node<const F: usize> {
    mbrs: [Range; F],
    slots: [u32; F],
    count: u8,
}

impl<const F: usize> Node<F> {
    fn empty() -> Self {
        // Positions past `count` are never read; any `Range` value works
        // as the array filler (`Range` is `Copy`, no niche for `Option`).
        let filler = Range::cell(Cell::new(1, 1));
        Node { mbrs: [filler; F], slots: [NIL; F], count: 0 }
    }

    #[inline]
    fn len(&self) -> usize {
        self.count as usize
    }

    #[inline]
    fn push(&mut self, mbr: Range, slot: u32) {
        let i = self.count as usize;
        self.mbrs[i] = mbr;
        self.slots[i] = slot;
        self.count += 1;
    }

    /// Removes position `i` by swapping the last child in.
    #[inline]
    fn swap_remove(&mut self, i: usize) {
        let last = self.count as usize - 1;
        self.mbrs[i] = self.mbrs[last];
        self.slots[i] = self.slots[last];
        self.count -= 1;
    }

    fn mbr(&self) -> Option<Range> {
        self.mbrs[..self.len()].iter().copied().reduce(|a, b| a.bounding_union(&b))
    }
}

/// Caller-owned traversal stack for [`FanoutRTree::search_with`]: reusing one
/// across queries makes the window search allocation-free once warm.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    /// `(node id, depth)` frames of the iterative descent.
    stack: Vec<(u32, u32)>,
}

impl SearchScratch {
    /// An empty scratch (buffers grow on first use, then persist).
    #[must_use]
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// A spatial index over `(Range, T)` entries supporting overlap queries,
/// generic over the node fanout `F`; the benchmark suite instantiates
/// 8/16/32 to keep the [`DEFAULT_FANOUT`] choice honest. Use the
/// [`RTree`] alias unless you are sweeping fanouts.
#[derive(Debug, Clone)]
pub struct FanoutRTree<T, const F: usize> {
    /// The node pool. Freed ids are recycled via `free_nodes`.
    nodes: Vec<Node<F>>,
    free_nodes: Vec<u32>,
    /// The entry arena: leaf slots index into it; `iter` walks it lazily.
    entries: Vec<Option<(Range, T)>>,
    free_entries: Vec<u32>,
    root: u32,
    /// Levels in the tree; a lone root leaf has height 1.
    height: u32,
    len: usize,
    /// Reusable split scratch (`F + 1` pairs during overflow handling).
    split_buf: Vec<(Range, u32)>,
    /// Reusable condense scratch (orphaned entry ids awaiting re-insert).
    orphan_buf: Vec<u32>,
}

/// The workhorse instantiation: a [`FanoutRTree`] at [`DEFAULT_FANOUT`].
pub type RTree<T> = FanoutRTree<T, DEFAULT_FANOUT>;

impl<T, const F: usize> Default for FanoutRTree<T, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const F: usize> FanoutRTree<T, F> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        assert!((4..=128).contains(&F), "fanout {F} outside the supported 4..=128");
        FanoutRTree {
            nodes: vec![Node::empty()],
            free_nodes: Vec::new(),
            entries: Vec::new(),
            free_entries: Vec::new(),
            root: 0,
            height: 1,
            len: 0,
            split_buf: Vec::new(),
            orphan_buf: Vec::new(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (a single leaf has height 1). Exposed for tests
    /// and diagnostics.
    pub fn height(&self) -> usize {
        self.height as usize
    }

    /// Number of live pool nodes (diagnostics: bulk-loaded trees pack
    /// tighter than insertion-built ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free_nodes.len()
    }

    /// Removes all entries. Every internal buffer keeps its capacity, so
    /// a tree used as a reusable per-query visited set stops allocating
    /// once its high-water mark is reached.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::empty());
        self.free_nodes.clear();
        self.entries.clear();
        self.free_entries.clear();
        self.root = 0;
        self.height = 1;
        self.len = 0;
    }

    // ---- construction ----------------------------------------------------

    /// Builds a tree from a full entry set with Sort-Tile-Recursive
    /// packing: entries are sorted by column center, tiled into vertical
    /// slices, each slice sorted by row center and cut into full leaves;
    /// upper levels repeat the same tiling over node MBRs. The result has
    /// minimal node count and near-minimal overlap, which is what makes
    /// window queries on bulk-loaded graphs visit fewer nodes than on
    /// insertion-built ones.
    #[must_use]
    pub fn bulk_load(items: Vec<(Range, T)>) -> Self {
        let mut t = Self::new();
        if items.is_empty() {
            return t;
        }
        t.len = items.len();
        t.entries = items.into_iter().map(Some).collect();
        t.nodes.clear();
        let mut level: Vec<(Range, u32)> = t
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.as_ref().expect("fresh arena has no holes").0, i as u32))
            .collect();
        let mut height = 1;
        loop {
            level = t.str_pack(level);
            if level.len() == 1 {
                t.root = level[0].1;
                t.height = height;
                return t;
            }
            height += 1;
        }
    }

    /// Packs one level's `(mbr, slot)` pairs into nodes, returning the
    /// `(mbr, node id)` pairs of the level above.
    fn str_pack(&mut self, mut items: Vec<(Range, u32)>) -> Vec<(Range, u32)> {
        // 2× the center coordinates (head + tail), avoiding division.
        #[inline]
        fn c2(r: &Range) -> (u64, u64) {
            (
                u64::from(r.head().col) + u64::from(r.tail().col),
                u64::from(r.head().row) + u64::from(r.tail().row),
            )
        }
        let leaves = items.len().div_ceil(F);
        let slices = (leaves as f64).sqrt().ceil() as usize;
        let slice_cap = slices.max(1) * F;
        items.sort_unstable_by_key(|(r, _)| {
            let (x, y) = c2(r);
            (x, y)
        });
        let mut out = Vec::with_capacity(leaves);
        for slice in items.chunks_mut(slice_cap) {
            slice.sort_unstable_by_key(|(r, _)| {
                let (x, y) = c2(r);
                (y, x)
            });
            for tile in slice.chunks(F) {
                let id = self.alloc_node();
                let node = &mut self.nodes[id as usize];
                for &(mbr, slot) in tile {
                    node.push(mbr, slot);
                }
                let mbr = node.mbr().expect("STR tiles are non-empty");
                out.push((mbr, id));
            }
        }
        out
    }

    // ---- queries ---------------------------------------------------------

    /// Calls `f` for every stored entry whose range overlaps `query`.
    /// Returns the number of tree nodes visited (the complexity metric
    /// the benches assert on). Allocation-free: the descent recurses.
    pub fn for_each_overlapping<'a, G>(&'a self, query: Range, mut f: G) -> u64
    where
        G: FnMut(Range, &'a T),
    {
        let mut visited = 0;
        self.search_rec(self.root, 1, query, &mut f, &mut visited);
        visited
    }

    fn search_rec<'a, G>(
        &'a self,
        node: u32,
        depth: u32,
        query: Range,
        f: &mut G,
        visited: &mut u64,
    ) where
        G: FnMut(Range, &'a T),
    {
        *visited += 1;
        let n = &self.nodes[node as usize];
        if depth == self.height {
            for i in 0..n.len() {
                if n.mbrs[i].overlaps(&query) {
                    let (r, v) = self.entries[n.slots[i] as usize]
                        .as_ref()
                        .expect("leaf slots reference live entries");
                    f(*r, v);
                }
            }
        } else {
            for i in 0..n.len() {
                if n.mbrs[i].overlaps(&query) {
                    self.search_rec(n.slots[i], depth + 1, query, f, visited);
                }
            }
        }
    }

    /// [`Self::for_each_overlapping`] driven by an explicit caller-owned
    /// stack instead of recursion: with a warmed [`SearchScratch`] the
    /// whole query performs zero allocations regardless of tree shape.
    pub fn search_with<'a, G>(&'a self, query: Range, scratch: &mut SearchScratch, mut f: G) -> u64
    where
        G: FnMut(Range, &'a T),
    {
        let mut visited = 0;
        scratch.stack.clear();
        scratch.stack.push((self.root, 1));
        while let Some((node, depth)) = scratch.stack.pop() {
            visited += 1;
            let n = &self.nodes[node as usize];
            if depth == self.height {
                for i in 0..n.len() {
                    if n.mbrs[i].overlaps(&query) {
                        let (r, v) = self.entries[n.slots[i] as usize]
                            .as_ref()
                            .expect("leaf slots reference live entries");
                        f(*r, v);
                    }
                }
            } else {
                for i in 0..n.len() {
                    if n.mbrs[i].overlaps(&query) {
                        scratch.stack.push((n.slots[i], depth + 1));
                    }
                }
            }
        }
        visited
    }

    /// Collects every `(range, &value)` overlapping `query`.
    pub fn overlapping(&self, query: Range) -> Vec<(Range, &T)> {
        let mut out = Vec::new();
        self.for_each_overlapping(query, |r, v| out.push((r, v)));
        out
    }

    /// `true` iff at least one stored range overlaps `query`.
    /// Allocation-free.
    pub fn any_overlapping(&self, query: Range) -> bool {
        self.any_rec(self.root, 1, query)
    }

    fn any_rec(&self, node: u32, depth: u32, query: Range) -> bool {
        let n = &self.nodes[node as usize];
        if depth == self.height {
            n.mbrs[..n.len()].iter().any(|r| r.overlaps(&query))
        } else {
            (0..n.len())
                .any(|i| n.mbrs[i].overlaps(&query) && self.any_rec(n.slots[i], depth + 1, query))
        }
    }

    /// Iterates over all entries (no particular order). Lazy: walks the
    /// entry arena directly, allocating nothing.
    pub fn iter(&self) -> impl Iterator<Item = (Range, &T)> {
        self.entries.iter().filter_map(|e| e.as_ref().map(|(r, v)| (*r, v)))
    }

    // ---- mutation --------------------------------------------------------

    /// Inserts an entry. Duplicates (same range, same or different
    /// payload) are allowed and stored separately.
    pub fn insert(&mut self, range: Range, value: T) {
        let entry = self.alloc_entry(range, value);
        self.insert_slot(range, entry);
        self.len += 1;
    }

    /// Inserts an already-allocated entry arena slot (shared by `insert`
    /// and condense re-insertion; does not touch `len`).
    fn insert_slot(&mut self, range: Range, entry: u32) {
        if let Some((sib_mbr, sib_id)) = self.insert_rec(self.root, 1, range, entry) {
            // Root split: grow the tree by one level.
            let old_mbr = self.nodes[self.root as usize].mbr().expect("split root is non-empty");
            let new_root = self.alloc_node();
            let old_root = self.root;
            let n = &mut self.nodes[new_root as usize];
            n.push(old_mbr, old_root);
            n.push(sib_mbr, sib_id);
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Inserts below `node` (at `depth`); returns the `(mbr, id)` of a
    /// new sibling when `node` split.
    fn insert_rec(
        &mut self,
        node: u32,
        depth: u32,
        range: Range,
        entry: u32,
    ) -> Option<(Range, u32)> {
        if depth == self.height {
            let n = &mut self.nodes[node as usize];
            if n.len() < F {
                n.push(range, entry);
                None
            } else {
                Some(self.split_node(node, range, entry))
            }
        } else {
            // ChooseSubtree: least enlargement, ties by smallest area.
            let n = &self.nodes[node as usize];
            let best = (0..n.len())
                .min_by_key(|&i| (enlargement(n.mbrs[i], range), area(n.mbrs[i])))
                .expect("internal nodes are never empty");
            let child = n.slots[best];
            let split = self.insert_rec(child, depth + 1, range, entry);
            match split {
                None => {
                    let n = &mut self.nodes[node as usize];
                    n.mbrs[best] = n.mbrs[best].bounding_union(&range);
                    None
                }
                Some((new_mbr, new_id)) => {
                    // The split moved entries out of the child: recompute
                    // its MBR exactly.
                    let child_mbr =
                        self.nodes[child as usize].mbr().expect("child keeps min_fill entries");
                    let n = &mut self.nodes[node as usize];
                    n.mbrs[best] = child_mbr;
                    if n.len() < F {
                        n.push(new_mbr, new_id);
                        None
                    } else {
                        Some(self.split_node(node, new_mbr, new_id))
                    }
                }
            }
        }
    }

    /// Guttman's quadratic split of `node`'s `F` children plus one
    /// overflow `(extra_mbr, extra_slot)`: picks the seed pair wasting the
    /// most area together, then assigns the rest to the group whose MBR
    /// grows least (respecting minimum fill). `node` keeps group A; the
    /// returned `(mbr, id)` is the freshly allocated group-B sibling.
    fn split_node(&mut self, node: u32, extra_mbr: Range, extra_slot: u32) -> (Range, u32) {
        let mut buf = std::mem::take(&mut self.split_buf);
        buf.clear();
        {
            let n = &self.nodes[node as usize];
            buf.extend((0..n.len()).map(|i| (n.mbrs[i], n.slots[i])));
        }
        buf.push((extra_mbr, extra_slot));

        // PickSeeds: the pair with maximal dead space.
        let (mut seed_a, mut seed_b, mut worst) = (0, 1, i64::MIN);
        for i in 0..buf.len() {
            for j in (i + 1)..buf.len() {
                let (ri, rj) = (buf[i].0, buf[j].0);
                let dead = area(ri.bounding_union(&rj)) as i64 - area(ri) as i64 - area(rj) as i64;
                if dead > worst {
                    (seed_a, seed_b, worst) = (i, j, dead);
                }
            }
        }
        // Group A reuses `node`; group B is the new sibling.
        let sibling = self.alloc_node();
        let a = &mut self.nodes[node as usize];
        a.count = 0;
        let (ra, sa) = buf[seed_a];
        a.push(ra, sa);
        let mut mbr_a = ra;
        let (rb, sb) = buf[seed_b];
        let b = &mut self.nodes[sibling as usize];
        b.push(rb, sb);
        let mut mbr_b = rb;
        // Drop the seeds (larger index first so the smaller stays valid).
        buf.swap_remove(seed_a.max(seed_b));
        buf.swap_remove(seed_a.min(seed_b));

        let min = min_fill(F);
        while let Some((r, slot)) = buf.pop() {
            let remaining = buf.len() + 1;
            let (len_a, len_b) =
                (self.nodes[node as usize].len(), self.nodes[sibling as usize].len());
            // Force assignment if a group must take all remaining entries
            // to reach minimum fill.
            let pick_a = if len_a + remaining <= min {
                true
            } else if len_b + remaining <= min {
                false
            } else {
                let grow_a = enlargement(mbr_a, r);
                let grow_b = enlargement(mbr_b, r);
                match grow_a.cmp(&grow_b) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    // Ties: smaller area, then fewer entries.
                    std::cmp::Ordering::Equal => (area(mbr_a), len_a) <= (area(mbr_b), len_b),
                }
            };
            if pick_a {
                mbr_a = mbr_a.bounding_union(&r);
                self.nodes[node as usize].push(r, slot);
            } else {
                mbr_b = mbr_b.bounding_union(&r);
                self.nodes[sibling as usize].push(r, slot);
            }
        }
        self.split_buf = buf;
        (mbr_b, sibling)
    }

    // ---- arena plumbing --------------------------------------------------

    fn alloc_node(&mut self) -> u32 {
        match self.free_nodes.pop() {
            Some(id) => {
                self.nodes[id as usize] = Node::empty();
                id
            }
            None => {
                self.nodes.push(Node::empty());
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn free_node(&mut self, id: u32) {
        self.free_nodes.push(id);
    }

    fn alloc_entry(&mut self, range: Range, value: T) -> u32 {
        match self.free_entries.pop() {
            Some(id) => {
                debug_assert!(self.entries[id as usize].is_none());
                self.entries[id as usize] = Some((range, value));
                id
            }
            None => {
                self.entries.push(Some((range, value)));
                (self.entries.len() - 1) as u32
            }
        }
    }
}

impl<T: PartialEq, const F: usize> FanoutRTree<T, F> {
    /// Removes one entry matching `(range, value)` exactly. Returns
    /// `true` if an entry was removed.
    ///
    /// Underflowing nodes are condensed Guttman-style: their surviving
    /// entries are re-inserted from the top (entry arena slots move
    /// between leaves without being reallocated).
    pub fn remove(&mut self, range: Range, value: &T) -> bool {
        let mut orphans = std::mem::take(&mut self.orphan_buf);
        orphans.clear();
        let removed = self.remove_rec(self.root, 1, range, value, &mut orphans);
        if removed {
            self.len -= 1;
            self.shrink_root();
            for entry in orphans.drain(..) {
                let r = self.entries[entry as usize]
                    .as_ref()
                    .expect("orphaned entries stay live in the arena")
                    .0;
                self.insert_slot(r, entry);
            }
        }
        self.orphan_buf = orphans;
        removed
    }

    /// Removes one matching entry below `node`; condenses underflowing
    /// descendants by pushing their surviving entry ids onto `orphans`.
    fn remove_rec(
        &mut self,
        node: u32,
        depth: u32,
        range: Range,
        value: &T,
        orphans: &mut Vec<u32>,
    ) -> bool {
        if depth == self.height {
            let n = &self.nodes[node as usize];
            let hit = (0..n.len()).find(|&i| {
                n.mbrs[i] == range
                    && self.entries[n.slots[i] as usize]
                        .as_ref()
                        .is_some_and(|(r, v)| *r == range && v == value)
            });
            match hit {
                Some(i) => {
                    let slot = self.nodes[node as usize].slots[i];
                    self.entries[slot as usize] = None;
                    self.free_entries.push(slot);
                    self.nodes[node as usize].swap_remove(i);
                    true
                }
                None => false,
            }
        } else {
            let mut removed_at = None;
            for i in 0..self.nodes[node as usize].len() {
                let n = &self.nodes[node as usize];
                if n.mbrs[i].overlaps(&range) {
                    let child = n.slots[i];
                    if self.remove_rec(child, depth + 1, range, value, orphans) {
                        removed_at = Some(i);
                        break;
                    }
                }
            }
            let Some(i) = removed_at else { return false };
            let child = self.nodes[node as usize].slots[i];
            if self.nodes[child as usize].len() < min_fill(F) {
                // Condense: dissolve the child subtree into orphans.
                self.nodes[node as usize].swap_remove(i);
                self.dissolve(child, depth + 1, orphans);
            } else {
                let child_mbr =
                    self.nodes[child as usize].mbr().expect("non-underflowing node is non-empty");
                self.nodes[node as usize].mbrs[i] = child_mbr;
            }
            true
        }
    }

    /// Frees every node of the subtree, pushing its leaf entry ids onto
    /// `orphans` for re-insertion.
    fn dissolve(&mut self, node: u32, depth: u32, orphans: &mut Vec<u32>) {
        let n = self.nodes[node as usize];
        if depth == self.height {
            orphans.extend(n.slots[..n.len()].iter().copied());
        } else {
            for &child in &n.slots[..n.len()] {
                self.dissolve(child, depth + 1, orphans);
            }
        }
        self.free_node(node);
    }

    /// Collapses a root chain of single-child internal nodes; an empty
    /// internal root becomes a fresh leaf.
    fn shrink_root(&mut self) {
        while self.height > 1 {
            let root = &self.nodes[self.root as usize];
            match root.len() {
                1 => {
                    let only = root.slots[0];
                    self.free_node(self.root);
                    self.root = only;
                    self.height -= 1;
                }
                0 => {
                    self.free_node(self.root);
                    self.root = self.alloc_node();
                    self.height = 1;
                    return;
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.overlapping(r("A1:Z100")).is_empty());
        assert!(!t.any_overlapping(r("A1")));
    }

    #[test]
    fn insert_and_query_basics() {
        let mut t = RTree::new();
        t.insert(r("A1:A3"), 1u32);
        t.insert(r("B1"), 2);
        t.insert(r("B2"), 3);
        t.insert(r("B2:B3"), 4);
        assert_eq!(t.len(), 4);

        let mut hits: Vec<u32> = t.overlapping(r("A1")).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1]);

        let mut hits: Vec<u32> = t.overlapping(r("B2")).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![3, 4]);

        assert!(t.any_overlapping(r("A2:B2")));
        assert!(!t.any_overlapping(r("D4:E9")));
    }

    #[test]
    fn duplicate_ranges_are_kept_separately() {
        let mut t = RTree::new();
        t.insert(r("C1:C4"), 10u32);
        t.insert(r("C1:C4"), 11);
        assert_eq!(t.overlapping(r("C2")).len(), 2);
        assert!(t.remove(r("C1:C4"), &10));
        assert_eq!(t.overlapping(r("C2")).len(), 1);
        assert_eq!(*t.overlapping(r("C2"))[0].1, 11);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = RTree::new();
        t.insert(r("A1"), 1u32);
        assert!(!t.remove(r("A1"), &2));
        assert!(!t.remove(r("A2"), &1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(r("A1"), &1));
        assert!(t.is_empty());
    }

    #[test]
    fn grows_and_answers_point_queries() {
        let mut t = RTree::new();
        // A 40x40 block of single cells.
        for col in 1..=40u32 {
            for row in 1..=40u32 {
                t.insert(Range::cell(Cell::new(col, row)), (col, row));
            }
        }
        assert_eq!(t.len(), 1600);
        assert!(t.height() > 1);
        for probe in [(1, 1), (40, 40), (17, 23)] {
            let hits = t.overlapping(Range::cell(Cell::new(probe.0, probe.1)));
            assert_eq!(hits.len(), 1);
            assert_eq!(*hits[0].1, probe);
        }
        // Window query.
        let hits = t.overlapping(Range::from_coords(3, 3, 5, 4));
        assert_eq!(hits.len(), 6);
    }

    #[test]
    fn mass_delete_shrinks_back() {
        let mut t = RTree::new();
        let mut keys = Vec::new();
        for col in 1..=25u32 {
            for row in 1..=25u32 {
                let range = Range::cell(Cell::new(col, row));
                t.insert(range, col * 100 + row);
                keys.push((range, col * 100 + row));
            }
        }
        for (range, v) in &keys {
            assert!(t.remove(*range, v), "missing {range}");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.overlapping(r("A1:Z99")).is_empty());
    }

    #[test]
    fn overlapping_ranges_all_found() {
        let mut t = RTree::new();
        // Nested / overlapping ranges stress the MBR logic.
        t.insert(r("A1:J10"), 0u32);
        t.insert(r("C3:D4"), 1);
        t.insert(r("J10:K11"), 2);
        t.insert(r("K11"), 3);
        let mut hits: Vec<u32> = t.overlapping(r("J10")).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn iter_visits_everything_lazily() {
        let mut t = RTree::new();
        for i in 0..100u32 {
            t.insert(Range::cell(Cell::new(i % 10 + 1, i / 10 + 1)), i);
        }
        // Partial consumption is fine (true iterator, not a snapshot).
        let first_three: Vec<u32> = t.iter().take(3).map(|(_, v)| *v).collect();
        assert_eq!(first_three.len(), 3);
        let mut seen: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_and_reuses_capacity() {
        let mut t = RTree::new();
        for i in 0..50u32 {
            t.insert(Range::cell(Cell::new(i + 1, 1)), i);
        }
        let node_cap = t.nodes.capacity();
        t.clear();
        assert!(t.is_empty());
        assert!(!t.any_overlapping(r("A1:XFD1")));
        assert_eq!(t.nodes.capacity(), node_cap, "clear must keep the pool");
        for i in 0..50u32 {
            t.insert(Range::cell(Cell::new(i + 1, 1)), i);
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut items = Vec::new();
        for col in 1..=30u32 {
            for row in 1..=20u32 {
                items.push((Range::from_coords(col, row, col + 2, row + 1), col * 100 + row));
            }
        }
        let bulk: RTree<u32> = RTree::bulk_load(items.clone());
        let mut inc: RTree<u32> = RTree::new();
        for (r, v) in &items {
            inc.insert(*r, *v);
        }
        assert_eq!(bulk.len(), inc.len());
        for probe in [r("A1"), r("C3:E9"), r("AA1:AB30"), r("Z99")] {
            let mut a: Vec<u32> = bulk.overlapping(probe).iter().map(|(_, v)| **v).collect();
            let mut b: Vec<u32> = inc.overlapping(probe).iter().map(|(_, v)| **v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "probe {probe}");
        }
        // STR packs at least as tight as incremental insertion.
        assert!(bulk.node_count() <= inc.node_count());
        assert!(bulk.height() <= inc.height());
    }

    #[test]
    fn bulk_load_small_and_empty() {
        let empty: RTree<u8> = RTree::bulk_load(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 1);
        let one: RTree<u8> = RTree::bulk_load(vec![(r("B2"), 7)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.height(), 1);
        assert_eq!(one.overlapping(r("A1:C3")).len(), 1);
    }

    #[test]
    fn bulk_loaded_tree_remains_mutable() {
        let items: Vec<(Range, u32)> =
            (1..=200u32).map(|i| (Range::cell(Cell::new(i % 20 + 1, i / 20 + 1)), i)).collect();
        let mut t: RTree<u32> = RTree::bulk_load(items.clone());
        t.insert(r("Z99"), 999);
        assert_eq!(t.len(), 201);
        assert!(t.remove(r("Z99"), &999));
        for (range, v) in &items {
            assert!(t.remove(*range, v), "missing {range}");
        }
        assert!(t.is_empty());
    }

    #[test]
    fn search_with_matches_recursive_and_counts_nodes() {
        let mut t = RTree::new();
        for col in 1..=40u32 {
            for row in 1..=40u32 {
                t.insert(Range::cell(Cell::new(col, row)), (col, row));
            }
        }
        let mut scratch = SearchScratch::new();
        for probe in [r("A1"), r("C3:F9"), r("AN40"), r("A1:AN40")] {
            let mut a = Vec::new();
            let va = t.for_each_overlapping(probe, |r, v| a.push((r, *v)));
            let mut b = Vec::new();
            let vb = t.search_with(probe, &mut scratch, |r, v| b.push((r, *v)));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(va, vb, "both traversals visit the same node set");
            assert!(va >= 1);
        }
        // A point query on a packed tree touches one path, not the pool.
        let visits = t.for_each_overlapping(r("A1"), |_, _| {});
        assert!(
            visits <= t.height() as u64 * F_FOR_TEST,
            "point query visited {visits} nodes at height {}",
            t.height()
        );
    }

    /// Loose per-level bound used by the visit assertions above.
    const F_FOR_TEST: u64 = DEFAULT_FANOUT as u64;

    #[test]
    fn alternate_fanouts_work() {
        fn drive<const F: usize>() {
            let items: Vec<(Range, u32)> =
                (0..500u32).map(|i| (Range::cell(Cell::new(i % 25 + 1, i / 25 + 1)), i)).collect();
            let mut t: FanoutRTree<u32, F> = FanoutRTree::bulk_load(items.clone());
            assert_eq!(t.len(), 500);
            let hits = t.overlapping(Range::from_coords(1, 1, 25, 20));
            assert_eq!(hits.len(), 500);
            for (range, v) in items.iter().take(250) {
                assert!(t.remove(*range, v));
            }
            assert_eq!(t.len(), 250);
        }
        drive::<4>();
        drive::<8>();
        drive::<16>();
        drive::<32>();
    }

    #[test]
    fn min_fill_is_sane() {
        assert_eq!(min_fill(8), 3);
        assert_eq!(min_fill(16), 6);
        assert_eq!(min_fill(32), 12);
        assert_eq!(min_fill(4), 2);
    }
}
