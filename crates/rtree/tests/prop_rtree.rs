//! Property tests: the R-tree must agree with a brute-force scan on every
//! query, through arbitrary interleavings of inserts and removes.

use proptest::prelude::*;
use taco_grid::{Cell, Range};
use taco_rtree::RTree;

fn arb_range() -> impl Strategy<Value = Range> {
    ((1u32..60, 1u32..60), (0u32..5, 0u32..8))
        .prop_map(|((c, r), (w, h))| Range::new(Cell::new(c, r), Cell::new(c + w, r + h)))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Range),
    RemoveNth(usize),
    Query(Range),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => arb_range().prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::RemoveNth),
        2 => arb_range().prop_map(Op::Query),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn matches_brute_force(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut tree: RTree<u64> = RTree::new();
        let mut shadow: Vec<(Range, u64)> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Insert(r) => {
                    tree.insert(r, next_id);
                    shadow.push((r, next_id));
                    next_id += 1;
                }
                Op::RemoveNth(n) => {
                    if !shadow.is_empty() {
                        let (r, id) = shadow.remove(n % shadow.len());
                        prop_assert!(tree.remove(r, &id));
                    }
                }
                Op::Query(q) => {
                    let mut got: Vec<u64> = tree.overlapping(q).iter().map(|(_, v)| **v).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = shadow
                        .iter()
                        .filter(|(r, _)| r.overlaps(&q))
                        .map(|(_, id)| *id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(&got, &want);
                    prop_assert_eq!(tree.any_overlapping(q), !want.is_empty());
                }
            }
            prop_assert_eq!(tree.len(), shadow.len());
        }

        let mut all: Vec<u64> = tree.iter().map(|(_, v)| *v).collect();
        all.sort_unstable();
        let mut want: Vec<u64> = shadow.iter().map(|(_, id)| *id).collect();
        want.sort_unstable();
        prop_assert_eq!(all, want);
    }
}
