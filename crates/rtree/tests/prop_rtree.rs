//! Property tests: the R-tree must agree with a brute-force scan on every
//! query, through arbitrary interleavings of bulk loading, inserts, and
//! removes — and the structural invariants (len, height, packing) must
//! hold at every step.

use proptest::prelude::*;
use taco_grid::{Cell, Range};
use taco_rtree::{min_fill, FanoutRTree, RTree, SearchScratch, DEFAULT_FANOUT};

fn arb_range() -> impl Strategy<Value = Range> {
    ((1u32..60, 1u32..60), (0u32..5, 0u32..8))
        .prop_map(|((c, r), (w, h))| Range::new(Cell::new(c, r), Cell::new(c + w, r + h)))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Range),
    RemoveNth(usize),
    Query(Range),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => arb_range().prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::RemoveNth),
        2 => arb_range().prop_map(Op::Query),
    ]
}

/// `ceil(log_m(n)) + 1` style sanity bound on the height of a tree with
/// minimum fill `m` — every level except the root holds at least `m`
/// entries per node, so the height cannot exceed this.
fn height_bound(len: usize, m: usize) -> usize {
    if len <= 1 {
        return 1;
    }
    let mut h = 1;
    let mut cap = m;
    while cap < len {
        cap *= m;
        h += 1;
    }
    h + 1
}

/// Drives `tree` against `shadow` through `ops`, checking every query
/// three ways (recursive, scratch-driven, any_overlapping) and the
/// len/height invariants after every step.
fn drive<const F: usize>(
    tree: &mut FanoutRTree<u64, F>,
    shadow: &mut Vec<(Range, u64)>,
    next_id: &mut u64,
    ops: Vec<Op>,
) {
    let mut scratch = SearchScratch::new();
    for op in ops {
        match op {
            Op::Insert(r) => {
                tree.insert(r, *next_id);
                shadow.push((r, *next_id));
                *next_id += 1;
            }
            Op::RemoveNth(n) => {
                if !shadow.is_empty() {
                    let (r, id) = shadow.remove(n % shadow.len());
                    prop_assert!(tree.remove(r, &id));
                    // Double-remove must fail.
                    prop_assert!(!tree.remove(r, &id));
                }
            }
            Op::Query(q) => {
                let mut got: Vec<u64> = tree.overlapping(q).iter().map(|(_, v)| **v).collect();
                got.sort_unstable();
                let mut via_scratch: Vec<u64> = Vec::new();
                let visited = tree.search_with(q, &mut scratch, |_, v| via_scratch.push(*v));
                via_scratch.sort_unstable();
                let mut want: Vec<u64> =
                    shadow.iter().filter(|(r, _)| r.overlaps(&q)).map(|(_, id)| *id).collect();
                want.sort_unstable();
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(&via_scratch, &want, "scratch search must agree");
                prop_assert_eq!(tree.any_overlapping(q), !want.is_empty());
                prop_assert!(visited >= 1);
            }
        }
        prop_assert_eq!(tree.len(), shadow.len());
        prop_assert!(
            tree.height() <= height_bound(tree.len().max(1), min_fill(F)),
            "height {} too tall for {} entries at fanout {}",
            tree.height(),
            tree.len(),
            F
        );
    }

    let mut all: Vec<u64> = tree.iter().map(|(_, v)| *v).collect();
    all.sort_unstable();
    let mut want: Vec<u64> = shadow.iter().map(|(_, id)| *id).collect();
    want.sort_unstable();
    prop_assert_eq!(all, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn matches_brute_force(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut tree: RTree<u64> = RTree::new();
        let mut shadow: Vec<(Range, u64)> = Vec::new();
        let mut next_id = 0u64;
        drive(&mut tree, &mut shadow, &mut next_id, ops);
    }

    /// Start from a bulk-loaded corpus, then mutate: STR construction
    /// must be indistinguishable from incremental construction under
    /// every later operation.
    #[test]
    fn bulk_load_matches_brute_force_through_mutation(
        init in prop::collection::vec(arb_range(), 0..300),
        ops in prop::collection::vec(arb_op(), 1..150),
    ) {
        let mut shadow: Vec<(Range, u64)> =
            init.iter().enumerate().map(|(i, r)| (*r, i as u64)).collect();
        let mut next_id = shadow.len() as u64;
        let mut tree: RTree<u64> = RTree::bulk_load(shadow.clone());
        prop_assert_eq!(tree.len(), shadow.len());
        prop_assert!(tree.height() <= height_bound(tree.len().max(1), min_fill(DEFAULT_FANOUT)));
        drive(&mut tree, &mut shadow, &mut next_id, ops);

        // A fresh bulk load of the surviving set answers every window
        // query identically to the mutated tree (sorted result sets).
        let rebuilt: RTree<u64> = RTree::bulk_load(shadow.clone());
        prop_assert_eq!(rebuilt.len(), tree.len());
        for q in [
            Range::from_coords(1, 1, 70, 70),
            Range::from_coords(10, 10, 20, 20),
            Range::from_coords(1, 30, 70, 31),
            Range::from_coords(33, 1, 34, 70),
        ] {
            let mut a: Vec<u64> = tree.overlapping(q).iter().map(|(_, v)| **v).collect();
            let mut b: Vec<u64> = rebuilt.overlapping(q).iter().map(|(_, v)| **v).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// The fanout sweep instantiations behave identically (they share an
    /// implementation, but the packing/split paths branch on `F`).
    #[test]
    fn alternate_fanouts_match_brute_force(
        init in prop::collection::vec(arb_range(), 0..120),
        ops in prop::collection::vec(arb_op(), 1..80),
    ) {
        fn run<const F: usize>(init: &[Range], ops: &[Op]) -> Vec<u64> {
            let mut shadow: Vec<(Range, u64)> =
                init.iter().enumerate().map(|(i, r)| (*r, i as u64)).collect();
            let mut next_id = shadow.len() as u64;
            let mut tree: FanoutRTree<u64, F> = FanoutRTree::bulk_load(shadow.clone());
            drive(&mut tree, &mut shadow, &mut next_id, ops.to_vec());
            let mut left: Vec<u64> = tree.iter().map(|(_, v)| *v).collect();
            left.sort_unstable();
            left
        }
        let a = run::<8>(&init, &ops);
        let b = run::<16>(&init, &ops);
        let c = run::<32>(&init, &ops);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}
