//! Property tests for the formula pipeline: printing and re-parsing an
//! arbitrary expression tree is the identity, reference extraction matches
//! a structural walk, autofill respects `$` semantics, and the evaluator
//! never panics on arbitrary generated expressions.

use proptest::prelude::*;
use taco_formula::eval::{eval, CellProvider};
use taco_formula::{parser, BinOp, Expr, Formula, UnOp, Value};
use taco_grid::a1::{CellRef, QualifiedRef, RangeRef, SheetRef};
use taco_grid::{Cell, Range};

fn arb_cell_ref() -> impl Strategy<Value = CellRef> {
    (1u32..60, 1u32..60, any::<bool>(), any::<bool>()).prop_map(|(c, r, ca, ra)| CellRef {
        cell: Cell::new(c, r),
        col_abs: ca,
        row_abs: ra,
    })
}

fn arb_range_ref() -> impl Strategy<Value = RangeRef> {
    (arb_cell_ref(), arb_cell_ref()).prop_map(|(a, b)| RangeRef::from_corners(a, b))
}

/// `None` (local), a bare identifier sheet, or a name that needs quoting
/// (spaces, digits-first, embedded apostrophe).
fn arb_sheet() -> impl Strategy<Value = Option<SheetRef>> {
    prop_oneof![
        3 => Just(None),
        1 => proptest::string::string_regex("[A-Za-z_][A-Za-z0-9_]{0,6}")
            .expect("valid regex")
            .prop_map(|s| Some(SheetRef::new(s).expect("valid sheet name"))),
        // Bracketing with letters keeps the quote rule (no leading or
        // trailing apostrophe) satisfied by construction.
        1 => proptest::string::string_regex("[A-Za-z0-9' ]{0,6}")
            .expect("valid regex")
            .prop_map(|s| Some(SheetRef::new(format!("q{s}z")).expect("valid sheet name"))),
    ]
}

fn arb_qref() -> impl Strategy<Value = QualifiedRef> {
    (arb_sheet(), arb_range_ref()).prop_map(|(sheet, rref)| QualifiedRef { sheet, rref })
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes quotes to exercise escaping.
    proptest::string::string_regex("[a-zA-Z0-9 \"]{0,8}").expect("valid regex")
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u32..1000, 0u32..100)
            .prop_map(|(a, b)| Expr::Number(f64::from(a) + f64::from(b) / 100.0)),
        arb_text().prop_map(Expr::Text),
        any::<bool>().prop_map(Expr::Bool),
        arb_qref().prop_map(Expr::Ref),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Pow),
            Just(BinOp::Concat),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
        ];
        prop_oneof![
            (bin, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnOp::Neg, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Percent(Box::new(e))),
            (
                prop_oneof![
                    Just("SUM"),
                    Just("AVERAGE"),
                    Just("MIN"),
                    Just("MAX"),
                    Just("COUNT"),
                    Just("IF"),
                    Just("AND"),
                    Just("NOT"),
                    Just("LEN"),
                ],
                prop::collection::vec(inner, 1..3),
            )
                .prop_map(|(name, args)| Expr::Func { name: name.to_string(), args }),
        ]
    })
}

struct Zeros;
impl CellProvider for Zeros {
    fn value(&self, _c: Cell) -> Value {
        Value::Number(0.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(expr in arb_expr()) {
        let printed = expr.to_string();
        let reparsed = parser::parse(&printed)
            .unwrap_or_else(|e| panic!("printed form must re-parse: {printed:?}: {e}"));
        prop_assert_eq!(&reparsed, &expr, "printed = {}", printed);
    }

    #[test]
    fn collect_refs_matches_formula_parse(expr in arb_expr()) {
        let f = Formula::parse(&expr.to_string()).expect("valid");
        prop_assert_eq!(f.refs, expr.collect_refs());
    }

    #[test]
    fn eval_never_panics(expr in arb_expr()) {
        // Any generated expression must evaluate to *some* Value.
        let _ = eval(&expr, &Zeros);
    }

    #[test]
    fn autofill_moves_only_relative_coords(r in arb_range_ref(), dc in -5i64..5, dr in -5i64..5) {
        if let Some(filled) = r.autofill(dc, dr) {
            for (orig, new) in [(r.head, filled.head), (r.tail, filled.tail)] {
                let want_col = if orig.col_abs { i64::from(orig.cell.col) } else { i64::from(orig.cell.col) + dc };
                let want_row = if orig.row_abs { i64::from(orig.cell.row) } else { i64::from(orig.cell.row) + dr };
                prop_assert_eq!(i64::from(new.cell.col), want_col);
                prop_assert_eq!(i64::from(new.cell.row), want_row);
            }
        }
    }

    #[test]
    fn range_ref_display_round_trips(r in arb_range_ref()) {
        let printed = r.to_string();
        let parsed = RangeRef::parse(&printed).expect("printed refs re-parse");
        prop_assert_eq!(parsed, r);
    }

    #[test]
    fn qualified_ref_display_round_trips(q in arb_qref()) {
        let printed = q.to_string();
        let parsed = QualifiedRef::parse(&printed).expect("printed refs re-parse");
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn qualified_autofill_pins_sheet(q in arb_qref(), dc in -5i64..5, dr in -5i64..5) {
        if let Some(filled) = q.autofill(dc, dr) {
            prop_assert_eq!(filled.sheet_name(), q.sheet_name());
            prop_assert_eq!(filled.rref, q.rref.autofill(dc, dr).expect("corner fill agrees"));
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~]{0,40}") {
        let _ = Formula::parse(&s); // Ok or Err, never panic.
    }

    #[test]
    fn refs_are_within_parsed_ranges(expr in arb_expr()) {
        for r in expr.collect_refs() {
            let range: Range = r.range();
            prop_assert!(range.head() <= range.tail());
        }
    }
}
