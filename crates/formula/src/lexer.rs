//! Tokenizer for the formula grammar.

use crate::FormulaError;

/// A lexical token with its byte offset in the formula body.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token start.
    pub pos: usize,
    /// Token payload.
    pub kind: TokenKind,
}

/// Token kinds. Identifiers and cell references are both lexed as
/// [`TokenKind::Name`]; the parser disambiguates (a `Name` followed by `(`
/// is a function call, otherwise it must parse as a reference or a boolean
/// literal).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped, `""` unescaped).
    Str(String),
    /// Identifier or cell reference text, `$` markers included.
    Name(String),
    /// A single-quoted sheet name (`'My Sheet'`, quotes stripped, `''`
    /// unescaped). Only valid immediately before a `!`.
    Sheet(String),
    /// The broken-reference literal `#REF!`.
    RefErr,
    /// `!` (sheet-qualifier separator)
    Bang,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `&`
    Amp,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Tokenizes a formula body (no leading `=`).
pub fn lex(src: &str) -> Result<Vec<Token>, FormulaError> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 2 + 1);
    let mut i = 0;
    while i < bytes.len() {
        let pos = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => {
                out.push(Token { pos, kind: TokenKind::LParen });
                i += 1;
            }
            b')' => {
                out.push(Token { pos, kind: TokenKind::RParen });
                i += 1;
            }
            b',' => {
                out.push(Token { pos, kind: TokenKind::Comma });
                i += 1;
            }
            b':' => {
                out.push(Token { pos, kind: TokenKind::Colon });
                i += 1;
            }
            b'+' => {
                out.push(Token { pos, kind: TokenKind::Plus });
                i += 1;
            }
            b'-' => {
                out.push(Token { pos, kind: TokenKind::Minus });
                i += 1;
            }
            b'*' => {
                out.push(Token { pos, kind: TokenKind::Star });
                i += 1;
            }
            b'/' => {
                out.push(Token { pos, kind: TokenKind::Slash });
                i += 1;
            }
            b'^' => {
                out.push(Token { pos, kind: TokenKind::Caret });
                i += 1;
            }
            b'&' => {
                out.push(Token { pos, kind: TokenKind::Amp });
                i += 1;
            }
            b'%' => {
                out.push(Token { pos, kind: TokenKind::Percent });
                i += 1;
            }
            b'!' => {
                out.push(Token { pos, kind: TokenKind::Bang });
                i += 1;
            }
            b'#' => {
                // `#REF!` is the only error literal a formula can contain
                // (structural deletes rewrite dead references to it); any
                // other `#...` is still a bad character.
                if bytes[i..].starts_with(b"#REF!") {
                    out.push(Token { pos, kind: TokenKind::RefErr });
                    i += 5;
                } else {
                    return Err(FormulaError::BadChar { pos, ch: '#' });
                }
            }
            b'=' => {
                out.push(Token { pos, kind: TokenKind::Eq });
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token { pos, kind: TokenKind::Ne });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { pos, kind: TokenKind::Le });
                    i += 2;
                } else {
                    out.push(Token { pos, kind: TokenKind::Lt });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { pos, kind: TokenKind::Ge });
                    i += 2;
                } else {
                    out.push(Token { pos, kind: TokenKind::Gt });
                    i += 1;
                }
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(FormulaError::BadToken {
                                pos,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8 safe: walk char boundaries.
                            let ch = src[i..].chars().next().expect("in-bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token { pos, kind: TokenKind::Str(s) });
            }
            b'\'' => {
                // Single quotes delimit sheet names (`'My Sheet'!A1`), with
                // `''` escaping an embedded apostrophe.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(FormulaError::BadToken {
                                pos,
                                msg: "unterminated sheet name".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch = src[i..].chars().next().expect("in-bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token { pos, kind: TokenKind::Sheet(s) });
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // Exponent part.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| FormulaError::BadToken {
                    pos,
                    msg: format!("invalid number {text:?}"),
                })?;
                out.push(Token { pos, kind: TokenKind::Number(n) });
            }
            b'$' | b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                // Name: `$`s, letters, digits, underscores. Covers both
                // identifiers (SUM, TRUE) and references ($B$12).
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'$' || bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
                out.push(Token { pos, kind: TokenKind::Name(src[start..i].to_string()) });
            }
            _ => {
                let ch = src[i..].chars().next().expect("in-bounds");
                return Err(FormulaError::BadChar { pos, ch });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn operators_and_whitespace() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 + 2*3 <= 4 <> 5 >= 6 < 7 > 8 & \"x\" ^ 9 %"),
            vec![
                Number(1.0),
                Plus,
                Number(2.0),
                Star,
                Number(3.0),
                Le,
                Number(4.0),
                Ne,
                Number(5.0),
                Ge,
                Number(6.0),
                Lt,
                Number(7.0),
                Gt,
                Number(8.0),
                Amp,
                Str("x".into()),
                Caret,
                Number(9.0),
                Percent,
            ]
        );
    }

    #[test]
    fn names_capture_dollars() {
        use TokenKind::*;
        assert_eq!(
            kinds("SUM($B$1:B4)"),
            vec![Name("SUM".into()), LParen, Name("$B$1".into()), Colon, Name("B4".into()), RParen,]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1.5"), vec![TokenKind::Number(1.5)]);
        assert_eq!(kinds("2e3"), vec![TokenKind::Number(2000.0)]);
        assert_eq!(kinds("2.5E-1"), vec![TokenKind::Number(0.25)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
        assert!(lex("1.2.3").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""he said ""hi""""#), vec![TokenKind::Str(r#"he said "hi""#.into())]);
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn sheet_names_and_bang() {
        use TokenKind::*;
        assert_eq!(
            kinds("Sheet1!A1+'My Sheet'!B2"),
            vec![
                Name("Sheet1".into()),
                Bang,
                Name("A1".into()),
                Plus,
                Sheet("My Sheet".into()),
                Bang,
                Name("B2".into()),
            ]
        );
        assert_eq!(kinds("'it''s'!C3")[0], Sheet("it's".into()));
        assert!(lex("'open sheet!A1").is_err());
    }

    #[test]
    fn ref_error_literal() {
        use TokenKind::*;
        assert_eq!(kinds("#REF!*2"), vec![RefErr, Star, Number(2.0)]);
        assert_eq!(kinds("#REF!+#REF!"), vec![RefErr, Plus, RefErr]);
        // Only the exact literal lexes; `#REF` without the bang does not.
        assert!(matches!(lex("#REF"), Err(FormulaError::BadChar { pos: 0, ch: '#' })));
        assert!(matches!(lex("#NAME?"), Err(FormulaError::BadChar { pos: 0, ch: '#' })));
    }

    #[test]
    fn bad_char_reports_position() {
        match lex("1 + #REF") {
            Err(FormulaError::BadChar { pos, ch }) => {
                assert_eq!(pos, 4);
                assert_eq!(ch, '#');
            }
            other => panic!("expected BadChar, got {other:?}"),
        }
    }
}
