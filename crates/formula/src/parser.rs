//! Recursive-descent parser for the formula grammar.
//!
//! Grammar (standard Excel precedence, all binary operators
//! left-associative):
//!
//! ```text
//! expr       := concat (cmp_op concat)*
//! concat     := additive ('&' additive)*
//! additive   := term (('+' | '-') term)*
//! term       := power (('*' | '/') power)*
//! power      := unary ('^' unary)*
//! unary      := ('-' | '+')* postfix
//! postfix    := primary '%'*
//! primary    := NUMBER | STRING | TRUE | FALSE | '#REF!'
//!             | NAME '(' args ')'          -- function call
//!             | sheet? REF (':' REF)?      -- cell or range reference
//!             | '(' expr ')'
//! sheet      := (NAME | QUOTED) '!'        -- `Sheet1!` or `'My Sheet'!`
//! ```

use crate::ast::{BinOp, Expr, UnOp};
use crate::lexer::{lex, Token, TokenKind};
use crate::FormulaError;
use taco_grid::a1::{CellRef, QualifiedRef, RangeRef, SheetRef};

/// Parses a formula body (no leading `=`) into an expression tree.
pub fn parse(src: &str) -> Result<Expr, FormulaError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0, src_len: src.len() };
    let expr = p.expr()?;
    if let Some(t) = p.peek() {
        return Err(FormulaError::Syntax {
            pos: t.pos,
            msg: format!("unexpected trailing token {:?}", t.kind),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.i)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.i + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), FormulaError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, msg: String) -> FormulaError {
        FormulaError::Syntax { pos: self.peek().map_or(self.src_len, |t| t.pos), msg }
    }

    fn expr(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.concat()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Eq) => BinOp::Eq,
                Some(TokenKind::Ne) => BinOp::Ne,
                Some(TokenKind::Lt) => BinOp::Lt,
                Some(TokenKind::Le) => BinOp::Le,
                Some(TokenKind::Gt) => BinOp::Gt,
                Some(TokenKind::Ge) => BinOp::Ge,
                _ => break,
            };
            self.i += 1;
            let rhs = self.concat()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.additive()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.additive()?;
            lhs = Expr::Binary { op: BinOp::Concat, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.i += 1;
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.i += 1;
            let rhs = self.power()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.unary()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.unary()?;
            lhs = Expr::Binary { op: BinOp::Pow, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, FormulaError> {
        if self.eat(&TokenKind::Minus) {
            let expr = self.unary()?;
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(expr) });
        }
        if self.eat(&TokenKind::Plus) {
            let expr = self.unary()?;
            return Ok(Expr::Unary { op: UnOp::Plus, expr: Box::new(expr) });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, FormulaError> {
        let mut e = self.primary()?;
        while self.eat(&TokenKind::Percent) {
            e = Expr::Percent(Box::new(e));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, FormulaError> {
        let Some(t) = self.peek().cloned() else {
            return Err(self.err("unexpected end of formula".into()));
        };
        match t.kind {
            TokenKind::Number(n) => {
                self.i += 1;
                Ok(Expr::Number(n))
            }
            TokenKind::Str(s) => {
                self.i += 1;
                Ok(Expr::Text(s))
            }
            TokenKind::RefErr => {
                self.i += 1;
                Ok(Expr::RefError)
            }
            TokenKind::LParen => {
                self.i += 1;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Name(name) => {
                // Function call?
                if self.peek2().map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    self.i += 2;
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(&TokenKind::RParen, "`,` or `)`")?;
                            break;
                        }
                    }
                    return Ok(Expr::Func { name: name.to_ascii_uppercase(), args });
                }
                // Sheet qualifier (`Sheet1!A1`)?
                if self.peek2().map(|t| &t.kind) == Some(&TokenKind::Bang) {
                    let sheet = SheetRef::new(name.as_str()).map_err(|e| FormulaError::Syntax {
                        pos: t.pos,
                        msg: format!("invalid sheet name: {e}"),
                    })?;
                    // Bare qualifiers must be identifiers; `X$1!A1` needs
                    // quotes (`'X$1'!A1`), same as `QualifiedRef::parse`.
                    if sheet.needs_quoting() {
                        return Err(FormulaError::Syntax {
                            pos: t.pos,
                            msg: format!("sheet name {name:?} must be quoted"),
                        });
                    }
                    self.i += 2;
                    return self.reference(Some(sheet));
                }
                // Boolean literals.
                if name.eq_ignore_ascii_case("TRUE") {
                    self.i += 1;
                    return Ok(Expr::Bool(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.i += 1;
                    return Ok(Expr::Bool(false));
                }
                self.reference(None)
            }
            TokenKind::Sheet(name) => {
                // A quoted sheet name must qualify a reference.
                let sheet = SheetRef::new(name.as_str()).map_err(|e| FormulaError::Syntax {
                    pos: t.pos,
                    msg: format!("invalid sheet name: {e}"),
                })?;
                self.i += 1;
                self.expect(&TokenKind::Bang, "`!` after sheet name")?;
                self.reference(Some(sheet))
            }
            other => {
                Err(FormulaError::Syntax { pos: t.pos, msg: format!("unexpected token {other:?}") })
            }
        }
    }

    /// Parses `REF (':' REF)?` at the current position, attaching an
    /// already-consumed sheet qualifier if one preceded it. The qualifier
    /// covers the whole range (`Sheet2!A1:B3`).
    fn reference(&mut self, sheet: Option<SheetRef>) -> Result<Expr, FormulaError> {
        let Some(Token { pos, kind: TokenKind::Name(name) }) = self.peek().cloned() else {
            return Err(self.err("expected cell reference".into()));
        };
        let head = CellRef::parse(&name)
            .map_err(|_| FormulaError::Syntax { pos, msg: format!("unknown name {name:?}") })?;
        self.i += 1;
        let rref = if self.eat(&TokenKind::Colon) {
            let Some(Token { pos, kind: TokenKind::Name(tail_name) }) = self.bump() else {
                return Err(self.err("expected reference after `:`".into()));
            };
            let tail = CellRef::parse(&tail_name).map_err(|_| FormulaError::Syntax {
                pos,
                msg: format!("invalid range tail {tail_name:?}"),
            })?;
            RangeRef::from_corners(head, tail)
        } else {
            RangeRef::single(head)
        };
        Ok(Expr::Ref(QualifiedRef { sheet, rref }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_grid::Range;

    fn refs(src: &str) -> Vec<String> {
        parse(src).unwrap().collect_refs().iter().map(|r| r.range().to_a1()).collect()
    }

    #[test]
    fn precedence() {
        assert_eq!(parse("1+2*3").unwrap().to_string(), "1+2*3");
        assert_eq!(parse("1*2+3").unwrap().to_string(), "1*2+3");
        assert_eq!(parse("(1+2)*3").unwrap().to_string(), "(1+2)*3");
        // Comparison binds loosest.
        assert_eq!(parse("A1=A2+1").unwrap().to_string(), "A1=A2+1");
        // Concat sits between comparison and additive.
        assert_eq!(parse("\"a\"&\"b\"=\"ab\"").unwrap().to_string(), "\"a\"&\"b\"=\"ab\"");
    }

    #[test]
    fn unary_chain() {
        let e = parse("--1").unwrap();
        assert_eq!(e.to_string(), "--1");
        assert!(parse("-A1%").is_ok());
    }

    #[test]
    fn function_calls() {
        let e = parse("SUM(A1:A3)").unwrap();
        match &e {
            Expr::Func { name, args } => {
                assert_eq!(name, "SUM");
                assert_eq!(args.len(), 1);
            }
            _ => panic!("expected Func"),
        }
        // Case-insensitive names, zero-arg functions.
        assert_eq!(parse("sum(A1)").unwrap().to_string(), "SUM(A1)");
        assert!(parse("NOW()").is_ok());
        // Nested calls with multiple args.
        assert_eq!(refs("IF(A1>0,SUM(B1:B9),MAX(C1,C2))"), vec!["A1", "B1:B9", "C1", "C2"]);
    }

    #[test]
    fn references() {
        assert_eq!(refs("A1"), vec!["A1"]);
        assert_eq!(refs("$A$1:B2"), vec!["A1:B2"]);
        // Reversed corners normalize.
        assert_eq!(refs("B2:A1"), vec!["A1:B2"]);
    }

    #[test]
    fn booleans_vs_refs() {
        assert_eq!(parse("TRUE").unwrap(), Expr::Bool(true));
        assert_eq!(parse("false").unwrap(), Expr::Bool(false));
        // TRUE( ) would be a function call.
        assert!(matches!(parse("TRUE()").unwrap(), Expr::Func { .. }));
    }

    #[test]
    fn fig2_formula() {
        let e = parse("IF(A3=A2,N2+M3,M3)").unwrap();
        let rs = e.collect_refs();
        assert_eq!(rs.len(), 5); // A3, A2, N2, M3, M3
        assert_eq!(rs[0].range(), Range::parse_a1("A3").unwrap());
    }

    #[test]
    fn sheet_qualified_references() {
        // Bare and quoted qualifiers, on cells and ranges.
        assert_eq!(refs("Sheet2!A1"), vec!["A1"]);
        let e = parse("'My Sheet'!A1:B3").unwrap();
        match &e {
            Expr::Ref(q) => {
                assert_eq!(q.sheet_name(), Some("My Sheet"));
                assert_eq!(q.range(), Range::parse_a1("A1:B3").unwrap());
            }
            other => panic!("expected Ref, got {other:?}"),
        }
        // Round-trips through the printer, quoting preserved.
        for src in
            ["Sheet2!A1+1", "SUM('My Sheet'!$A$1:B3)*data!C1", "'it''s'!A1", "'Q4 2023'!B2:B9"]
        {
            let ast = parse(src).unwrap();
            assert_eq!(parse(&ast.to_string()).unwrap(), ast, "src={src}");
        }
        // The qualifier does not turn function names into references.
        assert!(matches!(parse("SUM(Sheet1!A1)").unwrap(), Expr::Func { .. }));
    }

    #[test]
    fn ref_error_parses_prints_and_round_trips() {
        assert_eq!(parse("#REF!").unwrap(), Expr::RefError);
        // Structural deletes store sources like `#REF!*2`: they must
        // survive a parse → print → parse cycle for persistence replay.
        for src in ["#REF!", "#REF!*2", "SUM(#REF!)+1", "#REF!+#REF!", "IF(A1>0,#REF!,B2)"] {
            let ast = parse(src).unwrap();
            let printed = ast.to_string();
            assert_eq!(parse(&printed).unwrap(), ast, "src={src} printed={printed}");
        }
        assert!(parse("#REF!").unwrap().collect_refs().is_empty());
    }

    #[test]
    fn malformed_sheet_qualifiers_err() {
        for bad in [
            "Sheet1!",
            "!A1",
            "Sheet1!!A1",
            "'My Sheet'A1",
            "'My Sheet'!",
            "Sheet1!TRUE",
            "Sheet1!SUM(A1)",
            "A1:Sheet2!B2",
            "''!A1",
            "Sheet1!A1:!B2",
            "X$1!A1", // non-identifier bare name must be quoted: 'X$1'!A1
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn syntax_errors() {
        for bad in ["", "1+", "SUM(", "SUM(A1", "SUM(A1,)", "(1+2", "1 2", "FOO", "A1:", "A1:SUM"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
