//! Spreadsheet formula language substrate for the TACO reproduction.
//!
//! The paper's prototype parses real `xls`/`xlsx` formulae (via Apache POI)
//! to extract, for every formula cell, the set of ranges it references —
//! those `(referenced range → formula cell)` pairs are the dependencies the
//! formula graph stores. This crate provides that pipeline natively:
//!
//! - [`lexer`]/[`parser`] — an Excel-style formula grammar (`=IF(A3=A2,
//!   N2+M3, M3)`, `SUM($B$1:B4)*A1`, …) with `$` absolute markers preserved,
//! - [`ast::Expr`] — the parsed tree; [`Formula`] bundles source, AST and
//!   the extracted references,
//! - [`eval`] — an interpreter (SUM/AVERAGE/IF/VLOOKUP/arithmetic/…) so the
//!   `taco-engine` substrate can actually recalculate cells,
//! - [`autofill`] — the reference-adjustment transform whose `$` rules are
//!   what make autofilled spreadsheets exhibit the RR/RF/FR/FF patterns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod autofill;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod value;

mod error;

pub use ast::{BinOp, Expr, UnOp};
pub use error::FormulaError;
pub use eval::{EvalClock, VolatileCtx};
pub use value::{CellError, Value};

use taco_grid::a1::QualifiedRef;

/// A parsed formula: original source, AST, and the extracted references.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    /// Source text with any leading `=` stripped.
    pub src: String,
    /// Parsed expression tree.
    pub ast: Expr,
    /// Every cell/range reference in the formula, in source order, with
    /// `$` fixed/relative flags per corner and the sheet qualifier (if
    /// any). Same-sheet references become the formula graph's
    /// dependencies; qualified ones become the workbook's inter-sheet
    /// edges.
    pub refs: Vec<QualifiedRef>,
}

impl Formula {
    /// Parses a formula (leading `=` optional).
    pub fn parse(src: &str) -> Result<Self, FormulaError> {
        let body = src.strip_prefix('=').unwrap_or(src);
        let ast = parser::parse(body)?;
        let refs = ast.collect_refs();
        Ok(Formula { src: body.to_string(), ast, refs })
    }

    /// Renders the formula with a leading `=` (canonical, fully
    /// parenthesized form — not necessarily byte-identical to the source).
    pub fn to_string_with_eq(&self) -> String {
        format!("={}", self.ast)
    }

    /// Whether the formula calls a volatile function (`NOW`, `TODAY`,
    /// `RAND`) anywhere in its tree. Volatile formulae re-dirty when the
    /// engine's injected [`EvalClock`] changes, not only when a referenced
    /// cell does.
    pub fn is_volatile(&self) -> bool {
        fn walk(e: &Expr) -> bool {
            match e {
                Expr::Func { name, args } => {
                    matches!(name.as_str(), "NOW" | "TODAY" | "RAND") || args.iter().any(walk)
                }
                Expr::Binary { lhs, rhs, .. } => walk(lhs) || walk(rhs),
                Expr::Unary { expr, .. } | Expr::Percent(expr) => walk(expr),
                Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::Ref(_) | Expr::RefError => {
                    false
                }
            }
        }
        walk(&self.ast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_grid::Range;

    #[test]
    fn parse_extracts_refs_in_order() {
        // The running example from Fig. 2.
        let f = Formula::parse("=IF(A3=A2,N2+M3,M3)").unwrap();
        let got: Vec<Range> = f.refs.iter().map(|r| r.range()).collect();
        let want: Vec<Range> =
            ["A3", "A2", "N2", "M3", "M3"].iter().map(|s| Range::parse_a1(s).unwrap()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn dollar_flags_survive() {
        let f = Formula::parse("=SUM($B$1:B4)*A1").unwrap();
        assert_eq!(f.refs.len(), 2);
        assert!(f.refs[0].rref.head.is_fixed());
        assert!(f.refs[0].rref.tail.is_relative());
        assert!(f.refs[1].rref.head.is_relative());
    }

    #[test]
    fn equals_prefix_is_optional() {
        let a = Formula::parse("=SUM(A1:A3)").unwrap();
        let b = Formula::parse("SUM(A1:A3)").unwrap();
        assert_eq!(a.ast, b.ast);
    }

    #[test]
    fn volatility_is_detected_anywhere_in_the_tree() {
        assert!(Formula::parse("=NOW()").unwrap().is_volatile());
        assert!(Formula::parse("=SUM(A1:A3)+IF(A1>0,RAND(),2)").unwrap().is_volatile());
        assert!(Formula::parse("=-TODAY()%").unwrap().is_volatile());
        assert!(!Formula::parse("=SUM(A1:A3)*2").unwrap().is_volatile());
        // The function set is exact: other names are not volatile.
        assert!(!Formula::parse("=ROUND(A1,2)").unwrap().is_volatile());
    }

    #[test]
    fn sheet_qualifiers_survive() {
        let f = Formula::parse("=SUM('My Sheet'!B1:B4)+Sheet2!A1*C1").unwrap();
        assert_eq!(f.refs.len(), 3);
        assert_eq!(f.refs[0].sheet_name(), Some("My Sheet"));
        assert_eq!(f.refs[1].sheet_name(), Some("Sheet2"));
        assert_eq!(f.refs[2].sheet_name(), None);
    }
}
