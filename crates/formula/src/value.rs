//! Cell value types shared by the evaluator and the spreadsheet engine.

use std::fmt;

/// Spreadsheet error values (`#DIV/0!`, `#VALUE!`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellError {
    /// Division by zero.
    Div0,
    /// Wrong operand type.
    Value,
    /// Broken reference.
    Ref,
    /// Unknown function or name.
    Name,
    /// Lookup found nothing.
    Na,
    /// Circular dependency.
    Cycle,
}

impl CellError {
    /// Excel-style display text.
    pub fn code(self) -> &'static str {
        match self {
            CellError::Div0 => "#DIV/0!",
            CellError::Value => "#VALUE!",
            CellError::Ref => "#REF!",
            CellError::Name => "#NAME?",
            CellError::Na => "#N/A",
            CellError::Cycle => "#CYCLE!",
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// The value of a cell: pure or evaluated (the paper's "value").
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An empty cell.
    Empty,
    /// Numeric value.
    Number(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// An error value.
    Error(CellError),
}

impl Value {
    /// Numeric coercion following Excel rules: numbers pass through, bools
    /// map to 0/1, empty maps to 0, numeric-looking text parses, everything
    /// else is a `#VALUE!` error.
    pub fn as_number(&self) -> Result<f64, CellError> {
        match self {
            Value::Number(n) => Ok(*n),
            Value::Bool(b) => Ok(f64::from(u8::from(*b))),
            Value::Empty => Ok(0.0),
            Value::Text(s) => s.trim().parse().map_err(|_| CellError::Value),
            Value::Error(e) => Err(*e),
        }
    }

    /// Boolean coercion: bools pass, numbers are `!= 0`, text
    /// `TRUE`/`FALSE` parses, empty is `false`.
    pub fn as_bool(&self) -> Result<bool, CellError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Number(n) => Ok(*n != 0.0),
            Value::Empty => Ok(false),
            Value::Text(s) => {
                if s.eq_ignore_ascii_case("TRUE") {
                    Ok(true)
                } else if s.eq_ignore_ascii_case("FALSE") {
                    Ok(false)
                } else {
                    Err(CellError::Value)
                }
            }
            Value::Error(e) => Err(*e),
        }
    }

    /// Text coercion for `&` concatenation.
    pub fn as_text(&self) -> Result<String, CellError> {
        match self {
            Value::Text(s) => Ok(s.clone()),
            Value::Number(n) => Ok(format_number(*n)),
            Value::Bool(b) => Ok(if *b { "TRUE" } else { "FALSE" }.to_string()),
            Value::Empty => Ok(String::new()),
            Value::Error(e) => Err(*e),
        }
    }

    /// `true` for `Value::Error`.
    pub fn is_error(&self) -> bool {
        matches!(self, Value::Error(_))
    }

    /// `true` for `Value::Empty`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Value::Empty)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<CellError> for Value {
    fn from(e: CellError) -> Self {
        Value::Error(e)
    }
}

fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Empty => Ok(()),
            Value::Number(n) => f.write_str(&format_number(*n)),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Error(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_coercions() {
        assert_eq!(Value::Number(2.5).as_number(), Ok(2.5));
        assert_eq!(Value::Bool(true).as_number(), Ok(1.0));
        assert_eq!(Value::Empty.as_number(), Ok(0.0));
        assert_eq!(Value::Text(" 42 ".into()).as_number(), Ok(42.0));
        assert_eq!(Value::Text("x".into()).as_number(), Err(CellError::Value));
        assert_eq!(Value::Error(CellError::Div0).as_number(), Err(CellError::Div0));
    }

    #[test]
    fn bool_coercions() {
        assert_eq!(Value::Number(0.0).as_bool(), Ok(false));
        assert_eq!(Value::Number(-3.0).as_bool(), Ok(true));
        assert_eq!(Value::Text("true".into()).as_bool(), Ok(true));
        assert_eq!(Value::Text("nah".into()).as_bool(), Err(CellError::Value));
        assert_eq!(Value::Empty.as_bool(), Ok(false));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.5).to_string(), "3.5");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
        assert_eq!(Value::Error(CellError::Na).to_string(), "#N/A");
        assert_eq!(Value::Empty.to_string(), "");
    }
}
