//! Autofill: the formula-generation mechanism behind tabular locality.
//!
//! Autofill "generates formulae by applying the pattern of one source
//! formula cell to adjacent cells": the function structure is copied and
//! each reference is shifted by the fill delta, except coordinates pinned
//! with `$`, which stay fixed. §III-A of the paper spells out the
//! correspondence this crate reproduces:
//!
//! - no `$` anywhere            → generated ranges follow **RR**,
//! - relative head, `$` tail    → **RF**,
//! - `$` head, relative tail    → **FR**,
//! - `$` on both corners        → **FF**.

use crate::{Expr, Formula};
use taco_grid::{Cell, Range};

/// The result of autofilling one target cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FilledCell {
    /// The target cell that received a generated formula.
    pub cell: Cell,
    /// The generated formula.
    pub formula: Formula,
}

/// Applies the source formula at `src` to every cell of `targets`
/// (excluding `src` itself if it lies inside), exactly like dragging the
/// fill handle. References that fall off the grid become `#REF!`.
pub fn autofill(src: Cell, formula: &Formula, targets: Range) -> Vec<FilledCell> {
    let mut out = Vec::with_capacity(targets.area() as usize);
    for cell in targets.cells() {
        if cell == src {
            continue;
        }
        let dc = i64::from(cell.col) - i64::from(src.col);
        let dr = i64::from(cell.row) - i64::from(src.row);
        let ast = formula.ast.map_refs(&mut |r| r.autofill(dc, dr));
        out.push(FilledCell { cell, formula: from_ast(ast) });
    }
    out
}

fn from_ast(ast: Expr) -> Formula {
    let refs = ast.collect_refs();
    Formula { src: ast.to_string(), ast, refs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_grid::Range;

    fn fill(src: &str, formula: &str, targets: &str) -> Vec<(String, String)> {
        let f = Formula::parse(formula).unwrap();
        autofill(Cell::parse_a1(src).unwrap(), &f, Range::parse_a1(targets).unwrap())
            .into_iter()
            .map(|fc| (fc.cell.to_a1(), fc.formula.src))
            .collect()
    }

    #[test]
    fn rr_sliding_window() {
        // Fig. 4a: SUM(A1:B3) at C1 filled down → sliding windows.
        let got = fill("C1", "=SUM(A1:B3)", "C2:C4");
        assert_eq!(
            got,
            vec![
                ("C2".to_string(), "SUM(A2:B4)".to_string()),
                ("C3".to_string(), "SUM(A3:B5)".to_string()),
                ("C4".to_string(), "SUM(A4:B6)".to_string()),
            ]
        );
    }

    #[test]
    fn rf_shrinking_window() {
        // Fig. 4b: relative head, fixed tail.
        let got = fill("C1", "=SUM(A1:$B$4)", "C2:C3");
        assert_eq!(got[0].1, "SUM(A2:$B$4)");
        assert_eq!(got[1].1, "SUM(A3:$B$4)");
    }

    #[test]
    fn fr_expanding_window() {
        // Fig. 4c: fixed head, relative tail (cumulative sums).
        let got = fill("C1", "=SUM($A$1:B1)", "C2:C3");
        assert_eq!(got[0].1, "SUM($A$1:B2)");
        assert_eq!(got[1].1, "SUM($A$1:B3)");
    }

    #[test]
    fn ff_fixed_window() {
        // Fig. 4d: both corners fixed — every fill references A1:B3.
        let got = fill("C1", "=SUM($A$1:$B$3)", "C2:C4");
        for (_, f) in &got {
            assert_eq!(f, "SUM($A$1:$B$3)");
        }
    }

    #[test]
    fn source_cell_is_skipped_when_inside_targets() {
        let got = fill("C2", "=A2", "C1:C3");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], ("C1".to_string(), "A1".to_string()));
        assert_eq!(got[1], ("C3".to_string(), "A3".to_string()));
    }

    #[test]
    fn falling_off_grid_becomes_ref_error() {
        let f = Formula::parse("=A1").unwrap();
        let got = autofill(Cell::parse_a1("B2").unwrap(), &f, Range::parse_a1("B1").unwrap());
        assert_eq!(got[0].formula.src, "#REF!");
        assert!(got[0].formula.refs.is_empty());
    }

    #[test]
    fn horizontal_fill_shifts_columns() {
        let got = fill("A2", "=A1*2", "B2:C2");
        assert_eq!(got[0].1, "B1*2");
        assert_eq!(got[1].1, "C1*2");
    }

    #[test]
    fn mixed_anchors() {
        // Column pinned, row free.
        let got = fill("B1", "=$A1", "C2");
        assert_eq!(got[0].1, "$A2");
    }

    #[test]
    fn fig2_running_example_fills_correctly() {
        // N3 = IF(A3=A2,N2+M3,M3); filling down one row must produce the N4
        // formula from Fig. 2.
        let got = fill("N3", "=IF(A3=A2,N2+M3,M3)", "N4");
        assert_eq!(got[0].1, "IF(A4=A3,N3+M4,M4)");
    }
}
