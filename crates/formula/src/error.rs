use std::fmt;

/// Errors from lexing or parsing a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// An unexpected character at the given byte offset.
    BadChar {
        /// Byte offset into the formula body.
        pos: usize,
        /// The offending character.
        ch: char,
    },
    /// A malformed token (e.g. an unterminated string literal).
    BadToken {
        /// Byte offset into the formula body.
        pos: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The token stream did not match the grammar.
    Syntax {
        /// Byte offset of the offending token.
        pos: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::BadChar { pos, ch } => {
                write!(f, "unexpected character {ch:?} at offset {pos}")
            }
            FormulaError::BadToken { pos, msg } => write!(f, "bad token at offset {pos}: {msg}"),
            FormulaError::Syntax { pos, msg } => write!(f, "syntax error at offset {pos}: {msg}"),
        }
    }
}

impl std::error::Error for FormulaError {}
