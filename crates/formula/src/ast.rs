//! Expression tree for parsed formulae.

use std::fmt;
use taco_grid::a1::QualifiedRef;

/// Binary operators, in Excel semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^`
    Pow,
    /// `&` string concatenation
    Concat,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Operator symbol as written in a formula.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Concat => "&",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }

    /// Binding strength, higher binds tighter (used when rendering).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::Concat => 2,
            BinOp::Add | BinOp::Sub => 3,
            BinOp::Mul | BinOp::Div => 4,
            BinOp::Pow => 5,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// Unary plus (no-op, kept for round-tripping).
    Plus,
}

/// A parsed formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Text(String),
    /// Boolean literal (`TRUE`/`FALSE`).
    Bool(bool),
    /// A cell or range reference, optionally sheet-qualified
    /// (`Sheet2!A1`).
    Ref(QualifiedRef),
    /// A broken reference (produced by autofill falling off the grid —
    /// Excel's `#REF!`).
    RefError,
    /// Function call.
    Func {
        /// Upper-cased function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Postfix percent (`50%` = 0.5).
    Percent(Box<Expr>),
}

impl Expr {
    /// Collects every reference in the expression, in source order, as the
    /// *dependency read set*: the cells evaluation may actually touch.
    ///
    /// This is function-aware where evaluation reads outside the literal
    /// reference: `SUMIF`/`AVERAGEIF` shape their sum range to the
    /// criteria range's dimensions (Excel's implicit resize), so the sum
    /// reference is resized here the same way — otherwise the formula
    /// graph would miss dependencies on the cells the aggregate reads
    /// beyond the written range, and edits there would never dirty the
    /// formula.
    pub fn collect_refs(&self) -> Vec<QualifiedRef> {
        let mut out = Vec::new();
        self.collect_read_set(&mut out);
        out
    }

    fn collect_read_set(&self, out: &mut Vec<QualifiedRef>) {
        match self {
            Expr::Func { name, args }
                if args.len() == 3 && (name == "SUMIF" || name == "AVERAGEIF") =>
            {
                args[0].collect_read_set(out);
                args[1].collect_read_set(out);
                match (&args[0], &args[2]) {
                    (Expr::Ref(crit), Expr::Ref(sum)) => {
                        let shape = crit.range();
                        out.push(sum.resized(shape.width(), shape.height()));
                    }
                    _ => args[2].collect_read_set(out),
                }
            }
            _ => {
                // Every other node reads exactly its literal references;
                // recurse one level and delegate.
                match self {
                    Expr::Ref(r) => out.push(r.clone()),
                    Expr::Func { args, .. } => {
                        for a in args {
                            a.collect_read_set(out);
                        }
                    }
                    Expr::Binary { lhs, rhs, .. } => {
                        lhs.collect_read_set(out);
                        rhs.collect_read_set(out);
                    }
                    Expr::Unary { expr, .. } | Expr::Percent(expr) => expr.collect_read_set(out),
                    Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::RefError => {}
                }
            }
        }
    }

    /// Visits every reference in source order, *as written* (no
    /// function-aware resizing — see [`Expr::collect_refs`] for the
    /// dependency read set).
    pub fn visit_refs<F: FnMut(&QualifiedRef)>(&self, f: &mut F) {
        match self {
            Expr::Ref(r) => f(r),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit_refs(f);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_refs(f);
                rhs.visit_refs(f);
            }
            Expr::Unary { expr, .. } | Expr::Percent(expr) => expr.visit_refs(f),
            Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::RefError => {}
        }
    }

    /// Rewrites every reference with `f`; `None` marks the reference broken
    /// (replaced by `#REF!`). Used by autofill.
    pub fn map_refs<F: FnMut(&QualifiedRef) -> Option<QualifiedRef>>(&self, f: &mut F) -> Expr {
        match self {
            Expr::Ref(r) => match f(r) {
                Some(nr) => Expr::Ref(nr),
                None => Expr::RefError,
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.map_refs(f)).collect(),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.map_refs(f)),
                rhs: Box::new(rhs.map_refs(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(expr.map_refs(f)) },
            Expr::Percent(expr) => Expr::Percent(Box::new(expr.map_refs(f))),
            other => other.clone(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Text(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            Expr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::RefError => write!(f, "#REF!"),
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Binary { op, lhs, rhs } => {
                let p = op.precedence();
                let need = p < parent;
                if need {
                    write!(f, "(")?;
                }
                lhs.fmt_prec(f, p)?;
                write!(f, "{}", op.symbol())?;
                // Left-associative: right child parenthesizes at p+1.
                rhs.fmt_prec(f, p + 1)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Unary { op, expr } => {
                // Unary binds at level 6; postfix `%` binds tighter (7), so
                // a unary operand of `%` needs parentheses: `(-1)%`.
                let need = parent > 6;
                if need {
                    write!(f, "(")?;
                }
                write!(f, "{}", if *op == UnOp::Neg { "-" } else { "+" })?;
                expr.fmt_prec(f, 6)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Percent(expr) => {
                expr.fmt_prec(f, 7)?;
                write!(f, "%")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn display_round_trips_through_parser() {
        for src in [
            "IF(A3=A2,N2+M3,M3)",
            "SUM($B$1:B4)*A1",
            "1+2*3",
            "(1+2)*3",
            "-A1+B2%",
            "A1&\"x\"&B1",
            "2^3^2",
            "VLOOKUP(A1,$D$1:$E$9,2,FALSE)",
        ] {
            let ast = parse(src).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(ast, reparsed, "src={src} printed={printed}");
        }
    }

    #[test]
    fn precedence_printing_minimal_parens() {
        let ast = parse("(1+2)*3").unwrap();
        assert_eq!(ast.to_string(), "(1+2)*3");
        let ast = parse("1+2*3").unwrap();
        assert_eq!(ast.to_string(), "1+2*3");
    }

    #[test]
    fn map_refs_to_ref_error() {
        let ast = parse("A1+B2").unwrap();
        let broken = ast.map_refs(&mut |_| None);
        assert_eq!(broken.to_string(), "#REF!+#REF!");
        assert!(broken.collect_refs().is_empty());
    }

    #[test]
    fn sumif_sum_range_is_resized_to_criteria_shape() {
        // Evaluation reads B1..B3 (criteria shape at the sum head), so the
        // read set must too — while the AST keeps what was written.
        let ast = parse("SUMIF(A1:A3,\">0\",B1:B1)").unwrap();
        let refs = ast.collect_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[1].range().to_a1(), "B1:B3");
        // (a single-cell range prints collapsed, but is still as written)
        assert_eq!(ast.to_string(), "SUMIF(A1:A3,\">0\",B1)");
        // Sheet qualifiers survive the resize.
        let refs = parse("SUMIF(Data!A1:A3,1,Data!B1:B1)").unwrap().collect_refs();
        assert_eq!(refs[1].sheet_name(), Some("Data"));
        assert_eq!(refs[1].range().to_a1(), "B1:B3");
        // An oversized sum range shrinks to what is actually read.
        let refs = parse("AVERAGEIF(A1:A2,1,B1:B9)").unwrap().collect_refs();
        assert_eq!(refs[1].range().to_a1(), "B1:B2");
        // COUNTIF and 2-arg SUMIF have no sum range to shape.
        assert_eq!(parse("SUMIF(A1:A3,1)").unwrap().collect_refs().len(), 1);
        assert_eq!(parse("COUNTIF(A1:A3,1)").unwrap().collect_refs().len(), 1);
    }

    #[test]
    fn resized_read_set_follows_denormalized_autofilled_corners() {
        // Autofill can leave stored corners inverted (B1:B$2 filled four
        // rows down stores B5:B$2); evaluation anchors at the normalized
        // head (B2, criteria shape 3 tall → reads B2:B4), and the
        // dependency read set must match.
        let ast = parse("SUMIF($A$1:$A$3,\">0\",B1:B$2)").unwrap();
        let filled = ast.map_refs(&mut |q| q.autofill(0, 4));
        let refs = filled.collect_refs();
        assert_eq!(refs[1].range().to_a1(), "B2:B4");
    }
}
