//! Expression tree for parsed formulae.

use std::fmt;
use taco_grid::a1::RangeRef;

/// Binary operators, in Excel semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^`
    Pow,
    /// `&` string concatenation
    Concat,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Operator symbol as written in a formula.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Concat => "&",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }

    /// Binding strength, higher binds tighter (used when rendering).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::Concat => 2,
            BinOp::Add | BinOp::Sub => 3,
            BinOp::Mul | BinOp::Div => 4,
            BinOp::Pow => 5,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// Unary plus (no-op, kept for round-tripping).
    Plus,
}

/// A parsed formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Text(String),
    /// Boolean literal (`TRUE`/`FALSE`).
    Bool(bool),
    /// A cell or range reference.
    Ref(RangeRef),
    /// A broken reference (produced by autofill falling off the grid —
    /// Excel's `#REF!`).
    RefError,
    /// Function call.
    Func {
        /// Upper-cased function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Postfix percent (`50%` = 0.5).
    Percent(Box<Expr>),
}

impl Expr {
    /// Collects every reference in the expression, in source order.
    pub fn collect_refs(&self) -> Vec<RangeRef> {
        let mut out = Vec::new();
        self.visit_refs(&mut |r| out.push(*r));
        out
    }

    /// Visits every reference in source order.
    pub fn visit_refs<F: FnMut(&RangeRef)>(&self, f: &mut F) {
        match self {
            Expr::Ref(r) => f(r),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit_refs(f);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_refs(f);
                rhs.visit_refs(f);
            }
            Expr::Unary { expr, .. } | Expr::Percent(expr) => expr.visit_refs(f),
            Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::RefError => {}
        }
    }

    /// Rewrites every reference with `f`; `None` marks the reference broken
    /// (replaced by `#REF!`). Used by autofill.
    pub fn map_refs<F: FnMut(&RangeRef) -> Option<RangeRef>>(&self, f: &mut F) -> Expr {
        match self {
            Expr::Ref(r) => match f(r) {
                Some(nr) => Expr::Ref(nr),
                None => Expr::RefError,
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.map_refs(f)).collect(),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.map_refs(f)),
                rhs: Box::new(rhs.map_refs(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(expr.map_refs(f)) },
            Expr::Percent(expr) => Expr::Percent(Box::new(expr.map_refs(f))),
            other => other.clone(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Text(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            Expr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::RefError => write!(f, "#REF!"),
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Binary { op, lhs, rhs } => {
                let p = op.precedence();
                let need = p < parent;
                if need {
                    write!(f, "(")?;
                }
                lhs.fmt_prec(f, p)?;
                write!(f, "{}", op.symbol())?;
                // Left-associative: right child parenthesizes at p+1.
                rhs.fmt_prec(f, p + 1)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Unary { op, expr } => {
                // Unary binds at level 6; postfix `%` binds tighter (7), so
                // a unary operand of `%` needs parentheses: `(-1)%`.
                let need = parent > 6;
                if need {
                    write!(f, "(")?;
                }
                write!(f, "{}", if *op == UnOp::Neg { "-" } else { "+" })?;
                expr.fmt_prec(f, 6)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Percent(expr) => {
                expr.fmt_prec(f, 7)?;
                write!(f, "%")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn display_round_trips_through_parser() {
        for src in [
            "IF(A3=A2,N2+M3,M3)",
            "SUM($B$1:B4)*A1",
            "1+2*3",
            "(1+2)*3",
            "-A1+B2%",
            "A1&\"x\"&B1",
            "2^3^2",
            "VLOOKUP(A1,$D$1:$E$9,2,FALSE)",
        ] {
            let ast = parse(src).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(ast, reparsed, "src={src} printed={printed}");
        }
    }

    #[test]
    fn precedence_printing_minimal_parens() {
        let ast = parse("(1+2)*3").unwrap();
        assert_eq!(ast.to_string(), "(1+2)*3");
        let ast = parse("1+2*3").unwrap();
        assert_eq!(ast.to_string(), "1+2*3");
    }

    #[test]
    fn map_refs_to_ref_error() {
        let ast = parse("A1+B2").unwrap();
        let broken = ast.map_refs(&mut |_| None);
        assert_eq!(broken.to_string(), "#REF!+#REF!");
        assert!(broken.collect_refs().is_empty());
    }
}
