//! Formula interpreter.
//!
//! Evaluation is a substrate concern (the paper's contribution is the
//! formula *graph*, not the calculator), but the engine needs real
//! recalculation to demonstrate the end-to-end "update → find dependents →
//! re-evaluate" loop, and the workload generator needs evaluable formulae.

use crate::ast::{BinOp, Expr, UnOp};
use crate::value::{CellError, Value};
use taco_grid::{Cell, Range};

/// An injected time/randomness source for the volatile functions
/// (`NOW`, `TODAY`, `RAND`).
///
/// Real wall-clock time and OS entropy would break the engine's core
/// determinism contract — serial, cell-parallel, and demand-driven
/// recalculation must produce bit-identical values, and a replayed WAL
/// must reproduce the workbook exactly. Hosts therefore *inject* the
/// clock: two evaluations under the same `EvalClock` are bit-identical,
/// and advancing the clock is an explicit edit-like event (the engine
/// re-dirties volatile formulae when its clock changes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalClock {
    /// Value `NOW()` returns (an Excel-style serial date-time number).
    pub now: f64,
    /// Value `TODAY()` returns (an Excel-style serial date number).
    pub today: f64,
    /// Seed for `RAND()`. Draws are a pure function of
    /// `(rand_seed, cell, draw index within the cell)`, so they do not
    /// depend on evaluation order across cells — the property that keeps
    /// parallel and demand-driven schedules bit-identical to serial.
    pub rand_seed: u64,
}

/// Per-evaluation volatile context: the injected [`EvalClock`] plus the
/// identity of the cell being evaluated, which salts `RAND()` so distinct
/// cells draw distinct (but reproducible) values.
#[derive(Debug)]
pub struct VolatileCtx {
    clock: EvalClock,
    salt: u64,
    draws: std::cell::Cell<u32>,
}

impl VolatileCtx {
    /// A context for evaluating the formula at `cell` under `clock`.
    pub fn for_cell(clock: EvalClock, cell: Cell) -> Self {
        let salt = (u64::from(cell.col) << 32) | u64::from(cell.row);
        VolatileCtx { clock, salt, draws: std::cell::Cell::new(0) }
    }

    /// The injected `NOW()` value.
    pub fn now(&self) -> f64 {
        self.clock.now
    }

    /// The injected `TODAY()` value.
    pub fn today(&self) -> f64 {
        self.clock.today
    }

    /// The next `RAND()` draw in `[0, 1)`: a splitmix64 hash of
    /// `(seed, cell, draw index)`, independent of the order cells are
    /// evaluated in.
    pub fn next_rand(&self) -> f64 {
        let i = self.draws.get();
        self.draws.set(i + 1);
        let mut z = self.clock.rand_seed ^ self.salt.rotate_left(17) ^ (u64::from(i) << 1);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map the top 53 bits onto [0, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Provides cell values to the evaluator. Implemented by the sheet model
/// in `taco-engine` and by test fixtures here.
pub trait CellProvider {
    /// Current value of `cell` (`Value::Empty` when blank).
    fn value(&self, cell: Cell) -> Value;

    /// Value of a cell on the named sheet (for `Sheet2!A1`-style
    /// references). Single-sheet providers keep the default, which treats
    /// every sheet qualifier as a broken reference (`#REF!`); the workbook
    /// engine overrides it to route across sheets.
    fn sheet_value(&self, sheet: &str, cell: Cell) -> Value {
        let _ = (sheet, cell);
        Value::Error(CellError::Ref)
    }

    /// The volatile-function context for the evaluation in progress.
    /// Providers that don't inject a clock keep the default (`None`),
    /// under which `NOW()`/`TODAY()`/`RAND()` all evaluate to `0`.
    fn volatile(&self) -> Option<&VolatileCtx> {
        None
    }
}

impl<F: Fn(Cell) -> Value> CellProvider for F {
    fn value(&self, cell: Cell) -> Value {
        self(cell)
    }
}

/// Resolves a possibly sheet-qualified cell read through the provider.
fn value_on<P: CellProvider>(cells: &P, sheet: Option<&str>, cell: Cell) -> Value {
    match sheet {
        None => cells.value(cell),
        Some(s) => cells.sheet_value(s, cell),
    }
}

/// Maximum number of cells a single range argument may cover during
/// evaluation; larger ranges produce `#VALUE!` instead of hanging.
pub const MAX_RANGE_CELLS: u64 = 4_000_000;

/// Evaluates an expression against a provider.
pub fn eval<P: CellProvider>(expr: &Expr, cells: &P) -> Value {
    eval_operand(expr, cells).scalar(cells)
}

/// An intermediate operand: functions like SUM accept ranges, scalar
/// operators do not. A range carries the sheet qualifier of the reference
/// it came from (`None` = the formula's own sheet).
enum Operand<'a> {
    Scalar(Value),
    Range(Option<&'a str>, Range),
}

impl Operand<'_> {
    fn scalar<P: CellProvider>(self, cells: &P) -> Value {
        match self {
            Operand::Scalar(v) => v,
            // A bare multi-cell range in scalar position (e.g. `=A1:A3`)
            // is a #VALUE! error in classic evaluation.
            Operand::Range(sheet, r) => {
                if r.is_cell() {
                    value_on(cells, sheet, r.head())
                } else {
                    Value::Error(CellError::Value)
                }
            }
        }
    }
}

fn eval_operand<'a, P: CellProvider>(expr: &'a Expr, cells: &P) -> Operand<'a> {
    match expr {
        Expr::Number(n) => Operand::Scalar(Value::Number(*n)),
        Expr::Text(s) => Operand::Scalar(Value::Text(s.clone())),
        Expr::Bool(b) => Operand::Scalar(Value::Bool(*b)),
        Expr::RefError => Operand::Scalar(Value::Error(CellError::Ref)),
        Expr::Ref(r) => Operand::Range(r.sheet_name(), r.range()),
        Expr::Percent(e) => {
            let v = eval_operand(e, cells).scalar(cells);
            Operand::Scalar(match v.as_number() {
                Ok(n) => Value::Number(n / 100.0),
                Err(e) => Value::Error(e),
            })
        }
        Expr::Unary { op, expr } => {
            let v = eval_operand(expr, cells).scalar(cells);
            Operand::Scalar(match (op, v.as_number()) {
                (UnOp::Neg, Ok(n)) => Value::Number(-n),
                (UnOp::Plus, Ok(n)) => Value::Number(n),
                (_, Err(e)) => Value::Error(e),
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_operand(lhs, cells).scalar(cells);
            let r = eval_operand(rhs, cells).scalar(cells);
            Operand::Scalar(eval_binary(*op, l, r))
        }
        Expr::Func { name, args } => Operand::Scalar(eval_func(name, args, cells)),
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Value {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Pow => {
            let (a, b) = match (l.as_number(), r.as_number()) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return Value::Error(e),
            };
            match op {
                Add => Value::Number(a + b),
                Sub => Value::Number(a - b),
                Mul => Value::Number(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Error(CellError::Div0)
                    } else {
                        Value::Number(a / b)
                    }
                }
                Pow => Value::Number(a.powf(b)),
                _ => unreachable!(),
            }
        }
        Concat => match (l.as_text(), r.as_text()) {
            (Ok(a), Ok(b)) => Value::Text(a + &b),
            (Err(e), _) | (_, Err(e)) => Value::Error(e),
        },
        Eq | Ne | Lt | Le | Gt | Ge => compare(op, &l, &r),
    }
}

/// Excel-style comparison: numbers compare numerically, text
/// case-insensitively; mixed number/text compares with text high.
fn compare(op: BinOp, l: &Value, r: &Value) -> Value {
    use std::cmp::Ordering;
    if let Value::Error(e) = l {
        return Value::Error(*e);
    }
    if let Value::Error(e) = r {
        return Value::Error(*e);
    }
    let ord = match (l, r) {
        (Value::Text(a), Value::Text(b)) => a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()),
        (Value::Text(_), _) => Ordering::Greater,
        (_, Value::Text(_)) => Ordering::Less,
        _ => {
            let a = l.as_number().unwrap_or(0.0);
            let b = r.as_number().unwrap_or(0.0);
            a.partial_cmp(&b).unwrap_or(Ordering::Equal)
        }
    };
    let b = match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("compare called with non-comparison op"),
    };
    Value::Bool(b)
}

/// Iterates the scalar values of an argument: a scalar yields itself, a
/// range yields every cell value.
fn for_each_value<P: CellProvider>(
    arg: &Expr,
    cells: &P,
    f: &mut impl FnMut(Value) -> Result<(), CellError>,
) -> Result<(), CellError> {
    match eval_operand(arg, cells) {
        Operand::Scalar(v) => f(v),
        Operand::Range(sheet, r) => {
            if r.area() > MAX_RANGE_CELLS {
                return Err(CellError::Value);
            }
            for c in r.cells() {
                f(value_on(cells, sheet, c))?;
            }
            Ok(())
        }
    }
}

fn eval_func<P: CellProvider>(name: &str, args: &[Expr], cells: &P) -> Value {
    let result = match name {
        "SUM" => fold_numbers(args, cells, 0.0, |acc, n| acc + n).map(Value::Number),
        "PRODUCT" => fold_numbers(args, cells, 1.0, |acc, n| acc * n).map(Value::Number),
        "COUNT" => {
            // Counts numeric values only, like Excel.
            let mut count = 0u64;
            visit_all(args, cells, &mut |v| {
                if matches!(v, Value::Number(_)) {
                    count += 1;
                }
                Ok(())
            })
            .map(|()| Value::Number(count as f64))
        }
        "COUNTA" => {
            let mut count = 0u64;
            visit_all(args, cells, &mut |v| {
                if !v.is_empty() {
                    count += 1;
                }
                Ok(())
            })
            .map(|()| Value::Number(count as f64))
        }
        "AVERAGE" | "AVG" => {
            let mut sum = 0.0;
            let mut count = 0u64;
            visit_numbers(args, cells, &mut |n| {
                sum += n;
                count += 1;
            })
            .and_then(|()| {
                if count == 0 {
                    Err(CellError::Div0)
                } else {
                    Ok(Value::Number(sum / count as f64))
                }
            })
        }
        "MIN" | "MAX" => {
            let mut best: Option<f64> = None;
            let take_max = name == "MAX";
            visit_numbers(args, cells, &mut |n| {
                best = Some(match best {
                    None => n,
                    Some(b) => {
                        if take_max {
                            b.max(n)
                        } else {
                            b.min(n)
                        }
                    }
                });
            })
            .map(|()| Value::Number(best.unwrap_or(0.0)))
        }
        "IF" => {
            if args.is_empty() || args.len() > 3 {
                Err(CellError::Value)
            } else {
                match eval(&args[0], cells).as_bool() {
                    Err(e) => Err(e),
                    Ok(true) => Ok(args.get(1).map_or(Value::Bool(true), |a| eval(a, cells))),
                    Ok(false) => Ok(args.get(2).map_or(Value::Bool(false), |a| eval(a, cells))),
                }
            }
        }
        "AND" | "OR" => {
            let is_and = name == "AND";
            let mut acc = is_and;
            visit_all(args, cells, &mut |v| {
                if v.is_empty() {
                    return Ok(());
                }
                let b = v.as_bool()?;
                acc = if is_and { acc && b } else { acc || b };
                Ok(())
            })
            .map(|()| Value::Bool(acc))
        }
        "NOT" => single_arg(args, cells).and_then(|v| v.as_bool()).map(|b| Value::Bool(!b)),
        "ABS" => num1(args, cells, f64::abs),
        "SQRT" => num1(args, cells, f64::sqrt),
        "INT" => num1(args, cells, f64::floor),
        "ROUND" => {
            if args.len() != 2 {
                Err(CellError::Value)
            } else {
                let n = eval(&args[0], cells).as_number();
                let d = eval(&args[1], cells).as_number();
                match (n, d) {
                    (Ok(n), Ok(d)) => {
                        let m = 10f64.powi(d as i32);
                        Ok(Value::Number((n * m).round() / m))
                    }
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
        }
        "LEN" => single_arg(args, cells)
            .and_then(|v| v.as_text())
            .map(|s| Value::Number(s.chars().count() as f64)),
        "CONCATENATE" => {
            let mut s = String::new();
            let mut err = None;
            for a in args {
                match eval(a, cells).as_text() {
                    Ok(t) => s.push_str(&t),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            match err {
                Some(e) => Err(e),
                None => Ok(Value::Text(s)),
            }
        }
        "VLOOKUP" => vlookup(args, cells),
        "SUMIF" | "COUNTIF" | "AVERAGEIF" => cond_aggregate(name, args, cells),
        "INDEX" => index(args, cells),
        "MATCH" => match_fn(args, cells),
        // Volatile functions read the injected clock (see [`EvalClock`]);
        // without one they fall back to deterministic zeros.
        "NOW" => Ok(Value::Number(cells.volatile().map_or(0.0, VolatileCtx::now))),
        "TODAY" => Ok(Value::Number(cells.volatile().map_or(0.0, VolatileCtx::today))),
        "RAND" => {
            if args.is_empty() {
                Ok(Value::Number(cells.volatile().map_or(0.0, VolatileCtx::next_rand)))
            } else {
                Err(CellError::Value)
            }
        }
        _ => Err(CellError::Name),
    };
    result.unwrap_or_else(Value::Error)
}

fn single_arg<P: CellProvider>(args: &[Expr], cells: &P) -> Result<Value, CellError> {
    if args.len() != 1 {
        return Err(CellError::Value);
    }
    let v = eval(&args[0], cells);
    if let Value::Error(e) = v {
        return Err(e);
    }
    Ok(v)
}

fn num1<P: CellProvider>(
    args: &[Expr],
    cells: &P,
    f: impl Fn(f64) -> f64,
) -> Result<Value, CellError> {
    single_arg(args, cells).and_then(|v| v.as_number()).map(|n| Value::Number(f(n)))
}

fn visit_all<P: CellProvider>(
    args: &[Expr],
    cells: &P,
    f: &mut impl FnMut(Value) -> Result<(), CellError>,
) -> Result<(), CellError> {
    for a in args {
        for_each_value(a, cells, f)?;
    }
    Ok(())
}

/// Visits numeric values; non-numeric and empty cells inside ranges are
/// skipped (Excel SUM semantics), but error values propagate.
fn visit_numbers<P: CellProvider>(
    args: &[Expr],
    cells: &P,
    f: &mut impl FnMut(f64),
) -> Result<(), CellError> {
    visit_all(args, cells, &mut |v| match v {
        Value::Number(n) => {
            f(n);
            Ok(())
        }
        Value::Error(e) => Err(e),
        _ => Ok(()),
    })
}

fn fold_numbers<P: CellProvider>(
    args: &[Expr],
    cells: &P,
    init: f64,
    f: impl Fn(f64, f64) -> f64,
) -> Result<f64, CellError> {
    let mut acc = init;
    visit_numbers(args, cells, &mut |n| acc = f(acc, n))?;
    Ok(acc)
}

/// SUMIF/COUNTIF/AVERAGEIF: criteria over one range, optionally summing a
/// second, same-shaped range.
fn cond_aggregate<P: CellProvider>(
    name: &str,
    args: &[Expr],
    cells: &P,
) -> Result<Value, CellError> {
    let want_sum_range = name != "COUNTIF";
    if args.len() < 2 || args.len() > if want_sum_range { 3 } else { 2 } {
        return Err(CellError::Value);
    }
    let Operand::Range(crit_sheet, crit_range) = eval_operand(&args[0], cells) else {
        return Err(CellError::Value);
    };
    let criterion = eval(&args[1], cells);
    if let Value::Error(e) = criterion {
        return Err(e);
    }
    let (sum_sheet, sum_range) = match args.get(2) {
        None => (crit_sheet, crit_range),
        Some(a) => match eval_operand(a, cells) {
            Operand::Range(s, r) => (s, r),
            Operand::Scalar(_) => return Err(CellError::Value),
        },
    };
    if crit_range.area() > MAX_RANGE_CELLS {
        return Err(CellError::Value);
    }
    let (dc, dr) = (
        i64::from(sum_range.head().col) - i64::from(crit_range.head().col),
        i64::from(sum_range.head().row) - i64::from(crit_range.head().row),
    );
    let mut sum = 0.0;
    let mut count = 0u64;
    for c in crit_range.cells() {
        if !criterion_matches(&value_on(cells, crit_sheet, c), &criterion) {
            continue;
        }
        count += 1;
        if want_sum_range {
            let sc = Cell::try_new(i64::from(c.col) + dc, i64::from(c.row) + dr)
                .map_err(|_| CellError::Ref)?;
            if let Ok(n) = value_on(cells, sum_sheet, sc).as_number() {
                sum += n;
            }
        }
    }
    Ok(match name {
        "COUNTIF" => Value::Number(count as f64),
        "SUMIF" => Value::Number(sum),
        _ => {
            if count == 0 {
                return Err(CellError::Div0);
            }
            Value::Number(sum / count as f64)
        }
    })
}

/// Excel-style criterion matching: a plain value means equality; a text
/// criterion may start with a comparison operator (`">=10"`).
fn criterion_matches(v: &Value, criterion: &Value) -> bool {
    if let Value::Text(s) = criterion {
        for (op, f) in [
            (">=", BinOp::Ge),
            ("<=", BinOp::Le),
            ("<>", BinOp::Ne),
            (">", BinOp::Gt),
            ("<", BinOp::Lt),
            ("=", BinOp::Eq),
        ] {
            if let Some(rest) = s.strip_prefix(op) {
                let rhs = rest
                    .trim()
                    .parse::<f64>()
                    .map(Value::Number)
                    .unwrap_or_else(|_| Value::Text(rest.trim().to_string()));
                return compare(f, v, &rhs) == Value::Bool(true);
            }
        }
    }
    values_equal(v, criterion)
}

/// INDEX(range, row, [col]): the value at a 1-based position in a range.
fn index<P: CellProvider>(args: &[Expr], cells: &P) -> Result<Value, CellError> {
    if args.len() < 2 || args.len() > 3 {
        return Err(CellError::Value);
    }
    let Operand::Range(sheet, table) = eval_operand(&args[0], cells) else {
        return Err(CellError::Value);
    };
    let row = eval(&args[1], cells).as_number()? as i64;
    let col = match args.get(2) {
        None => 1,
        Some(a) => eval(a, cells).as_number()? as i64,
    };
    if row < 1 || col < 1 || row > i64::from(table.height()) || col > i64::from(table.width()) {
        return Err(CellError::Ref);
    }
    Ok(value_on(
        cells,
        sheet,
        Cell::new(table.head().col + (col - 1) as u32, table.head().row + (row - 1) as u32),
    ))
}

/// MATCH(value, range, [0|1]): 1-based position of a value in a one-
/// dimensional range (0 = exact, 1 = largest ≤ value, the default).
fn match_fn<P: CellProvider>(args: &[Expr], cells: &P) -> Result<Value, CellError> {
    if args.len() < 2 || args.len() > 3 {
        return Err(CellError::Value);
    }
    let needle = eval(&args[0], cells);
    if let Value::Error(e) = needle {
        return Err(e);
    }
    let Operand::Range(sheet, range) = eval_operand(&args[1], cells) else {
        return Err(CellError::Value);
    };
    if !range.is_line() || range.area() > MAX_RANGE_CELLS {
        return Err(CellError::Value);
    }
    let exact = match args.get(2) {
        None => false,
        Some(a) => eval(a, cells).as_number()? == 0.0,
    };
    let mut best: Option<u64> = None;
    for (i, c) in range.cells().enumerate() {
        let v = value_on(cells, sheet, c);
        if exact {
            if values_equal(&v, &needle) {
                return Ok(Value::Number(i as f64 + 1.0));
            }
        } else if let (Ok(a), Ok(b)) = (v.as_number(), needle.as_number()) {
            if a <= b {
                best = Some(i as u64 + 1);
            }
        }
    }
    best.map(|i| Value::Number(i as f64)).ok_or(CellError::Na)
}

fn vlookup<P: CellProvider>(args: &[Expr], cells: &P) -> Result<Value, CellError> {
    if args.len() < 3 || args.len() > 4 {
        return Err(CellError::Value);
    }
    let needle = eval(&args[0], cells);
    if let Value::Error(e) = needle {
        return Err(e);
    }
    let Operand::Range(sheet, table) = eval_operand(&args[1], cells) else {
        return Err(CellError::Value);
    };
    let col_index = eval(&args[2], cells).as_number()? as i64;
    if col_index < 1 || col_index > i64::from(table.width()) {
        return Err(CellError::Ref);
    }
    let exact = match args.get(3) {
        None => false, // Excel default is approximate match
        Some(a) => !eval(a, cells).as_bool()?,
    };
    let lookup_col = table.head().col;
    let result_col = table.head().col + (col_index - 1) as u32;
    let mut best_row: Option<u32> = None;
    for row in table.head().row..=table.tail().row {
        let v = value_on(cells, sheet, Cell::new(lookup_col, row));
        if exact {
            if values_equal(&v, &needle) {
                best_row = Some(row);
                break;
            }
        } else {
            // Approximate: largest value <= needle (assumes sorted column).
            match (v.as_number(), needle.as_number()) {
                (Ok(a), Ok(b)) if a <= b => best_row = Some(row),
                _ => {}
            }
        }
    }
    match best_row {
        Some(row) => Ok(value_on(cells, sheet, Cell::new(result_col, row))),
        None => Err(CellError::Na),
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Text(x), Value::Text(y)) => x.eq_ignore_ascii_case(y),
        _ => match (a.as_number(), b.as_number()) {
            (Ok(x), Ok(y)) => x == y,
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::HashMap;

    struct Fixture(HashMap<Cell, Value>);

    impl CellProvider for Fixture {
        fn value(&self, cell: Cell) -> Value {
            self.0.get(&cell).cloned().unwrap_or(Value::Empty)
        }
    }

    fn fixture(entries: &[(&str, Value)]) -> Fixture {
        Fixture(entries.iter().map(|(a1, v)| (Cell::parse_a1(a1).unwrap(), v.clone())).collect())
    }

    fn run(src: &str, fix: &Fixture) -> Value {
        eval(&parse(src).unwrap(), fix)
    }

    /// A fixture carrying a [`VolatileCtx`], the way the engine's sheet
    /// view does.
    struct ClockFixture(Fixture, VolatileCtx);

    impl CellProvider for ClockFixture {
        fn value(&self, cell: Cell) -> Value {
            self.0.value(cell)
        }

        fn volatile(&self) -> Option<&VolatileCtx> {
            Some(&self.1)
        }
    }

    #[test]
    fn volatile_functions_default_to_zero_without_a_clock() {
        let fx = fixture(&[]);
        assert_eq!(run("NOW()", &fx), Value::Number(0.0));
        assert_eq!(run("TODAY()", &fx), Value::Number(0.0));
        assert_eq!(run("RAND()", &fx), Value::Number(0.0));
        assert_eq!(run("RAND(1)", &fx), Value::Error(CellError::Value));
    }

    #[test]
    fn volatile_functions_read_the_injected_clock() {
        let clock = EvalClock { now: 45000.5, today: 45000.0, rand_seed: 7 };
        let cell = Cell::parse_a1("C3").unwrap();
        let fx = ClockFixture(fixture(&[]), VolatileCtx::for_cell(clock, cell));
        assert_eq!(eval(&parse("NOW()").unwrap(), &fx), Value::Number(45000.5));
        assert_eq!(eval(&parse("TODAY()+1").unwrap(), &fx), Value::Number(45001.0));
    }

    #[test]
    fn rand_is_deterministic_per_cell_and_draw() {
        let clock = EvalClock { rand_seed: 0xDEAD_BEEF, ..EvalClock::default() };
        let cell = Cell::parse_a1("B2").unwrap();
        let draw = |cell| {
            let fx = ClockFixture(fixture(&[]), VolatileCtx::for_cell(clock, cell));
            eval(&parse("RAND()+RAND()").unwrap(), &fx)
        };
        // Same cell, fresh context → bit-identical; values stay in [0, 2).
        assert_eq!(draw(cell), draw(cell));
        match draw(cell) {
            Value::Number(n) => assert!((0.0..2.0).contains(&n), "{n}"),
            other => panic!("expected number, got {other:?}"),
        }
        // A different cell draws a different stream.
        assert_ne!(draw(cell), draw(Cell::parse_a1("B3").unwrap()));
        // Successive draws within one evaluation differ (index salt).
        let fx = ClockFixture(fixture(&[]), VolatileCtx::for_cell(clock, cell));
        let a = eval(&parse("RAND()").unwrap(), &fx);
        let b = eval(&parse("RAND()").unwrap(), &fx);
        assert_ne!(a, b);
    }

    #[test]
    fn arithmetic_and_precedence() {
        let fx = fixture(&[]);
        assert_eq!(run("1+2*3", &fx), Value::Number(7.0));
        assert_eq!(run("(1+2)*3", &fx), Value::Number(9.0));
        assert_eq!(run("2^3", &fx), Value::Number(8.0));
        assert_eq!(run("10/4", &fx), Value::Number(2.5));
        assert_eq!(run("1/0", &fx), Value::Error(CellError::Div0));
        assert_eq!(run("50%", &fx), Value::Number(0.5));
        assert_eq!(run("-5", &fx), Value::Number(-5.0));
    }

    #[test]
    fn references_and_sum() {
        let fx = fixture(&[
            ("A1", Value::Number(1.0)),
            ("A2", Value::Number(2.0)),
            ("A3", Value::Number(3.0)),
            ("B1", Value::Text("x".into())),
        ]);
        assert_eq!(run("A1+A2", &fx), Value::Number(3.0));
        assert_eq!(run("SUM(A1:A3)", &fx), Value::Number(6.0));
        // Text inside SUM range is skipped.
        assert_eq!(run("SUM(A1:B3)", &fx), Value::Number(6.0));
        // Bare multi-cell range in scalar context errors.
        assert_eq!(run("A1:A3", &fx), Value::Error(CellError::Value));
        // Empty cell numeric coercion.
        assert_eq!(run("A9+1", &fx), Value::Number(1.0));
    }

    #[test]
    fn aggregates() {
        let fx = fixture(&[
            ("A1", Value::Number(4.0)),
            ("A2", Value::Number(-1.0)),
            ("A3", Value::Number(9.0)),
        ]);
        assert_eq!(run("MIN(A1:A3)", &fx), Value::Number(-1.0));
        assert_eq!(run("MAX(A1:A3)", &fx), Value::Number(9.0));
        assert_eq!(run("AVERAGE(A1:A3)", &fx), Value::Number(4.0));
        assert_eq!(run("COUNT(A1:A9)", &fx), Value::Number(3.0));
        assert_eq!(run("COUNTA(A1:A9)", &fx), Value::Number(3.0));
        assert_eq!(run("AVERAGE(B1:B9)", &fx), Value::Error(CellError::Div0));
        assert_eq!(run("PRODUCT(A1,A3)", &fx), Value::Number(36.0));
    }

    #[test]
    fn if_and_logic() {
        let fx = fixture(&[("A1", Value::Number(5.0)), ("A2", Value::Number(5.0))]);
        // The Fig. 2 shape: IF(A1=A2, then, else).
        assert_eq!(run("IF(A1=A2,1,2)", &fx), Value::Number(1.0));
        assert_eq!(run("IF(A1>9,1,2)", &fx), Value::Number(2.0));
        assert_eq!(run("AND(TRUE,A1=5)", &fx), Value::Bool(true));
        assert_eq!(run("OR(FALSE,A1<0)", &fx), Value::Bool(false));
        assert_eq!(run("NOT(TRUE)", &fx), Value::Bool(false));
    }

    #[test]
    fn comparisons_mixed_types() {
        let fx = fixture(&[]);
        assert_eq!(run("\"abc\"=\"ABC\"", &fx), Value::Bool(true));
        assert_eq!(run("\"a\"<\"b\"", &fx), Value::Bool(true));
        // Text sorts above numbers.
        assert_eq!(run("\"a\">99", &fx), Value::Bool(true));
        assert_eq!(run("1<>2", &fx), Value::Bool(true));
    }

    #[test]
    fn text_functions() {
        let fx = fixture(&[("A1", Value::Number(7.0))]);
        assert_eq!(run("\"v=\"&A1", &fx), Value::Text("v=7".into()));
        assert_eq!(run("LEN(\"hello\")", &fx), Value::Number(5.0));
        assert_eq!(run("CONCATENATE(\"a\",1,TRUE)", &fx), Value::Text("a1TRUE".into()));
    }

    #[test]
    fn vlookup_exact_and_approx() {
        let fx = fixture(&[
            ("D1", Value::Number(10.0)),
            ("E1", Value::Text("ten".into())),
            ("D2", Value::Number(20.0)),
            ("E2", Value::Text("twenty".into())),
            ("D3", Value::Number(30.0)),
            ("E3", Value::Text("thirty".into())),
        ]);
        assert_eq!(run("VLOOKUP(20,D1:E3,2,FALSE)", &fx), Value::Text("twenty".into()));
        assert_eq!(run("VLOOKUP(25,D1:E3,2)", &fx), Value::Text("twenty".into()));
        assert_eq!(run("VLOOKUP(5,D1:E3,2)", &fx), Value::Error(CellError::Na));
        assert_eq!(run("VLOOKUP(20,D1:E3,2,TRUE)", &fx), Value::Text("twenty".into()));
        assert_eq!(run("VLOOKUP(20,D1:E3,9,FALSE)", &fx), Value::Error(CellError::Ref));
    }

    #[test]
    fn unknown_function_is_name_error() {
        let fx = fixture(&[]);
        assert_eq!(run("FROBNICATE(1)", &fx), Value::Error(CellError::Name));
    }

    #[test]
    fn error_propagation() {
        let fx = fixture(&[("A1", Value::Error(CellError::Div0))]);
        assert_eq!(run("A1+1", &fx), Value::Error(CellError::Div0));
        assert_eq!(run("SUM(A1:A3)", &fx), Value::Error(CellError::Div0));
        assert_eq!(run("IF(A1,1,2)", &fx), Value::Error(CellError::Div0));
    }

    #[test]
    fn sheet_qualified_reads_route_through_provider() {
        struct TwoSheets;
        impl CellProvider for TwoSheets {
            fn value(&self, _c: Cell) -> Value {
                Value::Number(1.0)
            }
            fn sheet_value(&self, sheet: &str, c: Cell) -> Value {
                if sheet.eq_ignore_ascii_case("Data") {
                    Value::Number(f64::from(c.row) * 10.0)
                } else {
                    Value::Error(CellError::Ref)
                }
            }
        }
        let fx = TwoSheets;
        assert_eq!(eval(&parse("Data!A3").unwrap(), &fx), Value::Number(30.0));
        assert_eq!(eval(&parse("SUM(Data!A1:A4)").unwrap(), &fx), Value::Number(100.0));
        assert_eq!(eval(&parse("'DATA'!A2+A1").unwrap(), &fx), Value::Number(21.0));
        assert_eq!(eval(&parse("Other!A1").unwrap(), &fx), Value::Error(CellError::Ref));
        assert_eq!(eval(&parse("VLOOKUP(10,Data!A1:B1,2)").unwrap(), &fx), Value::Number(10.0));
    }

    #[test]
    fn default_provider_rejects_sheet_qualifiers() {
        let fx = fixture(&[("A1", Value::Number(5.0))]);
        assert_eq!(run("Sheet2!A1", &fx), Value::Error(CellError::Ref));
        assert_eq!(run("SUM(Sheet2!A1:A3)", &fx), Value::Error(CellError::Ref));
    }
}

#[cfg(test)]
mod lookup_tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::HashMap;

    struct Fixture(HashMap<Cell, Value>);

    impl CellProvider for Fixture {
        fn value(&self, cell: Cell) -> Value {
            self.0.get(&cell).cloned().unwrap_or(Value::Empty)
        }
    }

    fn grid(entries: &[(&str, f64)]) -> Fixture {
        Fixture(
            entries
                .iter()
                .map(|(a1, v)| (Cell::parse_a1(a1).unwrap(), Value::Number(*v)))
                .collect(),
        )
    }

    fn run(src: &str, fix: &Fixture) -> Value {
        eval(&parse(src).unwrap(), fix)
    }

    #[test]
    fn sumif_with_criteria_range_only() {
        let fx = grid(&[("A1", 1.0), ("A2", 5.0), ("A3", 10.0), ("A4", 5.0)]);
        assert_eq!(run("SUMIF(A1:A4,5)", &fx), Value::Number(10.0));
        assert_eq!(run("SUMIF(A1:A4,\">4\")", &fx), Value::Number(20.0));
        assert_eq!(run("SUMIF(A1:A4,\"<=5\")", &fx), Value::Number(11.0));
    }

    #[test]
    fn sumif_with_separate_sum_range() {
        let fx = grid(&[
            ("A1", 1.0),
            ("A2", 2.0),
            ("A3", 1.0),
            ("B1", 10.0),
            ("B2", 20.0),
            ("B3", 30.0),
        ]);
        assert_eq!(run("SUMIF(A1:A3,1,B1:B3)", &fx), Value::Number(40.0));
    }

    #[test]
    fn countif_and_averageif() {
        let fx = grid(&[("A1", 2.0), ("A2", 4.0), ("A3", 6.0)]);
        assert_eq!(run("COUNTIF(A1:A3,\">3\")", &fx), Value::Number(2.0));
        assert_eq!(run("AVERAGEIF(A1:A3,\">2\")", &fx), Value::Number(5.0));
        assert_eq!(run("AVERAGEIF(A1:A3,\">99\")", &fx), Value::Error(CellError::Div0));
        assert_eq!(run("COUNTIF(A1:A3,\"<>4\")", &fx), Value::Number(2.0));
    }

    #[test]
    fn index_two_dimensional() {
        let fx = grid(&[("A1", 1.0), ("B1", 2.0), ("A2", 3.0), ("B2", 4.0)]);
        assert_eq!(run("INDEX(A1:B2,2,2)", &fx), Value::Number(4.0));
        assert_eq!(run("INDEX(A1:A2,2)", &fx), Value::Number(3.0));
        assert_eq!(run("INDEX(A1:B2,3,1)", &fx), Value::Error(CellError::Ref));
        assert_eq!(run("INDEX(A1:B2,0,1)", &fx), Value::Error(CellError::Ref));
    }

    #[test]
    fn match_exact_and_approx() {
        let fx = grid(&[("A1", 10.0), ("A2", 20.0), ("A3", 30.0)]);
        assert_eq!(run("MATCH(20,A1:A3,0)", &fx), Value::Number(2.0));
        assert_eq!(run("MATCH(25,A1:A3,1)", &fx), Value::Number(2.0));
        assert_eq!(run("MATCH(25,A1:A3)", &fx), Value::Number(2.0));
        assert_eq!(run("MATCH(5,A1:A3,0)", &fx), Value::Error(CellError::Na));
        // MATCH needs a 1-D range.
        let fx2 = grid(&[("A1", 1.0), ("B2", 2.0)]);
        assert_eq!(run("MATCH(1,A1:B2,0)", &fx2), Value::Error(CellError::Value));
    }

    #[test]
    fn index_match_idiom() {
        // The INDEX/MATCH lookup idiom common in real sheets.
        let fx = grid(&[
            ("A1", 100.0),
            ("A2", 200.0),
            ("A3", 300.0),
            ("B1", 7.0),
            ("B2", 8.0),
            ("B3", 9.0),
        ]);
        assert_eq!(run("INDEX(B1:B3,MATCH(200,A1:A3,0))", &fx), Value::Number(8.0));
    }
}
