//! Compressor configurations: which patterns are enabled and which
//! selection heuristics apply. `NoComp` and `TACO-InRow` from the paper's
//! evaluation are configurations of the same framework, so performance
//! comparisons isolate exactly the compression contribution.

use crate::pattern::{PatternMeta, PatternType};
use serde::{Deserialize, Serialize};
use taco_grid::Axis;

/// Compressor configuration for a [`crate::FormulaGraph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Config {
    /// Enabled patterns in the order the compressor tries them against a
    /// `Single` candidate edge. Empty means no compression (NoComp).
    pub patterns: Vec<PatternType>,
    /// Restrict compression to derived-column shapes: RR edges whose
    /// referenced ranges lie in the same row(s) as the formula cell
    /// (TACO-InRow, §VI-B).
    pub in_row_only: bool,
    /// Heuristic (1) of §IV-A: prefer column-wise over row-wise
    /// compression. Disable for ablation.
    pub column_priority: bool,
    /// Heuristic (3): use `$`-marker cues from formula strings when
    /// choosing among valid candidate edges. Disable for ablation.
    pub use_cues: bool,
}

impl Config {
    /// Full TACO: all basic patterns plus RR-Chain, all heuristics on.
    pub fn taco_full() -> Self {
        Config {
            patterns: vec![
                PatternType::RRChain,
                PatternType::RR,
                PatternType::RF,
                PatternType::FR,
                PatternType::FF,
            ],
            in_row_only: false,
            column_priority: true,
            use_cues: true,
        }
    }

    /// Full TACO plus the exploratory RR-GapOne pattern from §V.
    pub fn taco_with_gap_one() -> Self {
        let mut c = Self::taco_full();
        c.patterns.push(PatternType::RRGapOne);
        c
    }

    /// TACO-InRow (§VI-B): only RR, only same-row references, column axis.
    /// Captures derived columns (normalized copies, extracted substrings…).
    pub fn taco_in_row() -> Self {
        Config {
            patterns: vec![PatternType::RR],
            in_row_only: true,
            column_priority: true,
            use_cues: true,
        }
    }

    /// No compression: every dependency is stored as a `Single` edge. This
    /// is the paper's NoComp baseline, implemented in the same framework.
    pub fn nocomp() -> Self {
        Config { patterns: Vec::new(), in_row_only: false, column_priority: true, use_cues: true }
    }

    /// Full TACO minus one pattern (pattern-ablation benches).
    pub fn taco_without(p: PatternType) -> Self {
        let mut c = Self::taco_full();
        c.patterns.retain(|&q| q != p);
        c
    }

    /// `true` iff any enabled pattern pairs dependents two rows/columns
    /// apart (widens candidate discovery).
    pub fn has_gap_pattern(&self) -> bool {
        self.patterns.contains(&PatternType::RRGapOne)
    }

    /// Checks a candidate compressed edge against configuration
    /// restrictions (currently the TACO-InRow shape constraint).
    pub fn allows(&self, meta: &PatternMeta, axis: Axis) -> bool {
        if !self.in_row_only {
            return true;
        }
        // Derived-column shape: a vertical run of formulae whose windows
        // stay on the formula's own row(s) — both rel offsets have zero row
        // delta in canonical coordinates.
        axis == Axis::Col
            && matches!(meta, PatternMeta::RR { h_rel, t_rel } if h_rel.dr == 0 && t_rel.dr == 0)
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::taco_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_grid::Offset;

    #[test]
    fn presets() {
        assert!(Config::nocomp().patterns.is_empty());
        assert!(Config::taco_full().patterns.contains(&PatternType::RRChain));
        assert!(!Config::taco_full().has_gap_pattern());
        assert!(Config::taco_with_gap_one().has_gap_pattern());
        let no_ff = Config::taco_without(PatternType::FF);
        assert!(!no_ff.patterns.contains(&PatternType::FF));
        assert_eq!(no_ff.patterns.len(), Config::taco_full().patterns.len() - 1);
    }

    #[test]
    fn in_row_restriction() {
        let c = Config::taco_in_row();
        let in_row = PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 0) };
        let off_row = PatternMeta::RR { h_rel: Offset::new(-2, -1), t_rel: Offset::new(-1, 0) };
        assert!(c.allows(&in_row, Axis::Col));
        assert!(!c.allows(&in_row, Axis::Row));
        assert!(!c.allows(&off_row, Axis::Col));
        // Full TACO allows everything.
        assert!(Config::taco_full().allows(&off_row, Axis::Row));
    }
}
