//! Level scheduling over the compressed graph.
//!
//! The paper's pitch is that compressed-graph probes are cheap enough to
//! run *inside* hot loops. Recalculation is the loop that matters: to
//! evaluate a dirty set in parallel, the scheduler must group cells into
//! levels such that every cell's dirty precedents land in strictly
//! earlier levels — then each level is embarrassingly parallel and the
//! whole schedule is value-equivalent to any serial topological order.
//!
//! [`Leveler`] is the reusable Kahn machinery: it consumes a
//! predecessor relation over `0..n` (delivered by a caller-supplied
//! probe, so the engine can feed it formula references and graph callers
//! can feed it compressed-edge hops) and produces longest-path levels
//! plus the *leftover* set — cells on or downstream of a cycle, which
//! can never be leveled and must be evaluated by the serial fallback.
//! All buffers live in the `Leveler` and are reused across runs, so
//! steady-state leveling performs no heap allocations.
//!
//! [`level_dirty`] wires the leveler to a [`FormulaGraph`]: each dirty
//! cell's predecessors come from a one-hop
//! [`FormulaGraph::direct_precedents_with_scratch`] probe over the
//! compressed edges (reusing one [`QueryScratch`]), intersected with the
//! dirty set.

use crate::graph::{FormulaGraph, QueryScratch, QueryStats};
use taco_grid::{Cell, Range};

/// Reusable Kahn-leveling scratch and its outputs. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Leveler {
    // Predecessor CSR (built from the caller's probe).
    pred_off: Vec<u32>,
    preds: Vec<u32>,
    // Successor CSR (transposed from the predecessors).
    succ_off: Vec<u32>,
    succ_fill: Vec<u32>,
    succs: Vec<u32>,
    // Kahn state.
    indeg: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    probe_buf: Vec<u32>,
    // Outputs.
    level_of: Vec<u32>,
    offsets: Vec<u32>,
    order: Vec<u32>,
    leftover: Vec<u32>,
}

const UNLEVELED: u32 = u32::MAX;

impl Leveler {
    /// An empty leveler; buffers grow to the workload's high-water mark
    /// on first use and then stop allocating.
    #[must_use]
    pub fn new() -> Self {
        Leveler::default()
    }

    /// Levels the nodes `0..n` by longest path over the predecessor
    /// relation: `preds(i, out)` must push `i`'s predecessor indices into
    /// `out` (duplicates are tolerated; indices `>= n` are ignored).
    ///
    /// Afterwards [`Self::levels`] yields the schedule — every node in
    /// level `k` has all its predecessors in levels `< k`, each level
    /// sorted ascending — and [`Self::leftover`] holds the nodes on or
    /// downstream of a cycle (never leveled), sorted ascending.
    pub fn run<F: FnMut(u32, &mut Vec<u32>)>(&mut self, n: usize, mut preds: F) {
        let n32 = u32::try_from(n).expect("level set fits in u32");
        self.pred_off.clear();
        self.preds.clear();
        self.pred_off.push(0);
        for i in 0..n32 {
            self.probe_buf.clear();
            preds(i, &mut self.probe_buf);
            self.preds.extend(self.probe_buf.iter().copied().filter(|&p| p < n32));
            self.pred_off.push(self.preds.len() as u32);
        }

        // Transpose into the successor CSR with counting sort.
        self.succ_off.clear();
        self.succ_off.resize(n + 1, 0);
        for &p in &self.preds {
            self.succ_off[p as usize + 1] += 1;
        }
        for i in 0..n {
            self.succ_off[i + 1] += self.succ_off[i];
        }
        self.succs.clear();
        self.succs.resize(self.preds.len(), 0);
        self.succ_fill.clear();
        self.succ_fill.extend_from_slice(&self.succ_off[..n]);
        for i in 0..n32 {
            let (s, e) = (self.pred_off[i as usize], self.pred_off[i as usize + 1]);
            for k in s..e {
                let p = self.preds[k as usize] as usize;
                self.succs[self.succ_fill[p] as usize] = i;
                self.succ_fill[p] += 1;
            }
        }

        // Kahn by level: the frontier is every node whose (remaining)
        // in-degree is zero; peeling one frontier per round yields
        // longest-path levels.
        self.indeg.clear();
        self.level_of.clear();
        self.level_of.resize(n, UNLEVELED);
        self.frontier.clear();
        for i in 0..n32 {
            let d = self.pred_off[i as usize + 1] - self.pred_off[i as usize];
            self.indeg.push(d);
            if d == 0 {
                self.frontier.push(i);
            }
        }
        self.offsets.clear();
        self.offsets.push(0);
        self.order.clear();
        let mut level = 0u32;
        while !self.frontier.is_empty() {
            // Ascending order within a level keeps the schedule
            // deterministic regardless of discovery order.
            self.frontier.sort_unstable();
            self.next.clear();
            for &v in &self.frontier {
                self.level_of[v as usize] = level;
                self.order.push(v);
                let (s, e) = (self.succ_off[v as usize], self.succ_off[v as usize + 1]);
                for k in s..e {
                    let d = self.succs[k as usize];
                    self.indeg[d as usize] -= 1;
                    if self.indeg[d as usize] == 0 {
                        self.next.push(d);
                    }
                }
            }
            self.offsets.push(self.order.len() as u32);
            std::mem::swap(&mut self.frontier, &mut self.next);
            level += 1;
        }

        self.leftover.clear();
        self.leftover.extend((0..n32).filter(|&i| self.level_of[i as usize] == UNLEVELED));
    }

    /// Number of levels the last [`Self::run`] produced.
    pub fn num_levels(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The nodes of level `k`, ascending.
    pub fn level(&self, k: usize) -> &[u32] {
        &self.order[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// All levels in order.
    pub fn levels(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.num_levels()).map(|k| self.level(k))
    }

    /// Nodes on or downstream of a cycle (never leveled), ascending.
    pub fn leftover(&self) -> &[u32] {
        &self.leftover
    }

    /// The level assigned to node `i`, or `None` if it is leftover.
    pub fn level_of(&self, i: u32) -> Option<u32> {
        match self.level_of[i as usize] {
            UNLEVELED => None,
            l => Some(l),
        }
    }
}

/// Levels a dirty set against the compressed graph: each cell's
/// predecessor set is `direct precedents ∩ dirty`, discovered with
/// one-hop probes over the compressed edges. `dirty` must be sorted
/// ascending (`Cell`'s column-major order). Returns the accumulated
/// probe statistics; the schedule is read from `leveler`.
pub fn level_dirty(
    graph: &FormulaGraph,
    dirty: &[Cell],
    scratch: &mut QueryScratch,
    leveler: &mut Leveler,
) -> QueryStats {
    let mut stats = QueryStats::default();
    let mut ranges = Vec::new();
    leveler.run(dirty.len(), |i, out| {
        let s = graph.direct_precedents_with_scratch(
            Range::cell(dirty[i as usize]),
            scratch,
            &mut ranges,
        );
        stats.edges_accessed += s.edges_accessed;
        stats.enqueued += s.enqueued;
        stats.rtree_searches += s.rtree_searches;
        stats.nodes_visited += s.nodes_visited;
        for r in &ranges {
            dirty_cells_in(dirty, *r, out);
        }
    });
    stats
}

/// Pushes the indices of every dirty cell inside `r`, using per-column
/// binary searches when the range is narrow relative to the dirty set
/// and a linear scan otherwise.
fn dirty_cells_in(dirty: &[Cell], r: Range, out: &mut Vec<u32>) {
    let (head, tail) = (r.head(), r.tail());
    if (r.width() as usize) <= dirty.len() {
        for col in head.col..=tail.col {
            let lo = dirty.partition_point(|c| (c.col, c.row) < (col, head.row));
            let hi = dirty.partition_point(|c| (c.col, c.row) <= (col, tail.row));
            out.extend((lo..hi).map(|j| j as u32));
        }
    } else {
        for (j, c) in dirty.iter().enumerate() {
            if r.contains_cell(*c) {
                out.push(j as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dependency;

    fn dep(prec: &str, cell: &str) -> Dependency {
        Dependency::new(Range::parse_a1(prec).unwrap(), Cell::parse_a1(cell).unwrap())
    }

    fn cells(names: &[&str]) -> Vec<Cell> {
        let mut v: Vec<Cell> = names.iter().map(|n| Cell::parse_a1(n).unwrap()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn chain_levels_one_cell_per_level() {
        // B1 -> B2 -> B3 -> B4 (an RR-Chain after compression).
        let mut g = FormulaGraph::taco();
        for r in 2..=4 {
            g.add_dependency(&dep(&format!("B{}", r - 1), &format!("B{r}")));
        }
        let dirty = cells(&["B1", "B2", "B3", "B4"]);
        let mut leveler = Leveler::new();
        level_dirty(&g, &dirty, &mut QueryScratch::new(), &mut leveler);
        assert_eq!(leveler.num_levels(), 4);
        for (k, lvl) in leveler.levels().enumerate() {
            assert_eq!(lvl, &[k as u32]);
        }
        assert!(leveler.leftover().is_empty());
    }

    #[test]
    fn sliding_window_levels_by_longest_path() {
        // C_r = SUM(A_r:A_{r+2}): every C is level 1 over the dirty A's.
        let mut g = FormulaGraph::taco();
        for r in 1..=8u32 {
            g.add_dependency(&dep(&format!("A{r}:A{}", r + 2), &format!("C{r}")));
        }
        let dirty = cells(&["A1", "A2", "A3", "C1", "C2", "C3"]);
        let mut leveler = Leveler::new();
        level_dirty(&g, &dirty, &mut QueryScratch::new(), &mut leveler);
        assert_eq!(leveler.num_levels(), 2);
        // Level 0 = the A's, level 1 = the C's (dirty is sorted by
        // column, so A's are indices 0..3).
        assert_eq!(leveler.level(0), &[0, 1, 2]);
        assert_eq!(leveler.level(1), &[3, 4, 5]);
    }

    #[test]
    fn cycles_and_their_downstream_are_leftover() {
        // D1 <-> D2 cycle, D3 reads D2, E1 independent.
        let mut g = FormulaGraph::taco();
        g.add_dependency(&dep("D2", "D1"));
        g.add_dependency(&dep("D1", "D2"));
        g.add_dependency(&dep("D2", "D3"));
        g.add_dependency(&dep("A1", "E1"));
        let dirty = cells(&["D1", "D2", "D3", "E1"]);
        let mut leveler = Leveler::new();
        level_dirty(&g, &dirty, &mut QueryScratch::new(), &mut leveler);
        // E1 levels; the cycle and its downstream never do.
        let e1 = dirty.iter().position(|c| *c == Cell::parse_a1("E1").unwrap()).unwrap() as u32;
        assert_eq!(leveler.level_of(e1), Some(0));
        let mut leftover: Vec<Cell> =
            leveler.leftover().iter().map(|&i| dirty[i as usize]).collect();
        leftover.sort_unstable();
        assert_eq!(leftover, cells(&["D1", "D2", "D3"]));
    }

    #[test]
    fn levels_respect_every_edge_on_random_graphs() {
        // Structural invariant: for every dirty cell, every dirty direct
        // precedent sits in a strictly lower level.
        let mut g = FormulaGraph::taco();
        let mut deps = Vec::new();
        // A deterministic pseudo-random DAG: F_{c,r} reads earlier rows.
        let mut state = 0x9E37u64;
        for c in 1..=4u32 {
            for r in 2..=30u32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let back = 1 + (state >> 33) as u32 % (r - 1);
                let src_col = 1 + (state >> 17) as u32 % 4;
                let d = dep(
                    &format!("{}{}", crate::test_col(src_col), r - back),
                    &format!("{}{}", crate::test_col(c), r),
                );
                g.add_dependency(&d);
                deps.push(d);
            }
        }
        let mut dirty: Vec<Cell> =
            (1..=4u32).flat_map(|c| (1..=30u32).map(move |r| Cell::new(c, r))).collect();
        dirty.sort_unstable();
        let mut leveler = Leveler::new();
        level_dirty(&g, &dirty, &mut QueryScratch::new(), &mut leveler);
        assert!(leveler.leftover().is_empty());
        for d in &deps {
            let prec = dirty.binary_search(&d.prec.head()).unwrap() as u32;
            let dep_cell = dirty.binary_search(&d.dep).unwrap() as u32;
            assert!(
                leveler.level_of(prec).unwrap() < leveler.level_of(dep_cell).unwrap(),
                "{:?} must precede {:?}",
                d.prec,
                d.dep
            );
        }
        // Leveling is allocation-free once warm: a second run on the same
        // buffers must produce the identical schedule.
        let before: Vec<Vec<u32>> = leveler.levels().map(<[u32]>::to_vec).collect();
        level_dirty(&g, &dirty, &mut QueryScratch::new(), &mut leveler);
        let after: Vec<Vec<u32>> = leveler.levels().map(<[u32]>::to_vec).collect();
        assert_eq!(before, after);
    }
}
