//! Graph persistence: serialize a compressed formula graph and restore it
//! without recompressing.
//!
//! Compression happens once at load time (§VI-C measures it in seconds for
//! the largest sheets); a workbook that persists its compressed graph
//! alongside the file skips that work on reopen. A snapshot is exactly the
//! edge list — the R-tree indexes are rebuilt on restore, since they are
//! derived state.

use crate::config::Config;
use crate::edge::Edge;
use crate::graph::FormulaGraph;
use serde::{Deserialize, Serialize};

/// A serializable image of a [`FormulaGraph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSnapshot {
    /// The compressor configuration the graph was built with.
    pub config: Config,
    /// Every (possibly compressed) edge.
    pub edges: Vec<Edge>,
    /// Lifetime insert counter (restored for stats continuity).
    pub dependencies_inserted: u64,
}

impl FormulaGraph {
    /// Captures the graph as a snapshot (edge order is unspecified).
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            config: self.config().clone(),
            edges: self.edges().cloned().collect(),
            dependencies_inserted: self.dependencies_inserted(),
        }
    }

    /// Restores a graph from a snapshot, rebuilding the spatial indexes.
    /// No recompression is attempted: edges come back exactly as saved.
    pub fn restore(snapshot: GraphSnapshot) -> FormulaGraph {
        let mut g = FormulaGraph::new(snapshot.config);
        for e in snapshot.edges {
            g.put_edge(e);
        }
        g.set_dependencies_inserted(snapshot.dependencies_inserted);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dependency;
    use std::collections::BTreeSet;
    use taco_grid::{Cell, Range};

    fn build_sample() -> FormulaGraph {
        let deps = [
            ("A1:B3", "C1"),
            ("A2:B4", "C2"),
            ("A3:B5", "C3"),
            ("G1:G9", "H1"),
            ("G1:G9", "H2"),
            ("J1", "K1"),
        ];
        FormulaGraph::build(
            Config::taco_full(),
            deps.iter().map(|(p, d)| {
                Dependency::new(Range::parse_a1(p).unwrap(), Cell::parse_a1(d).unwrap())
            }),
        )
    }

    fn cells(v: &[Range]) -> BTreeSet<Cell> {
        v.iter().flat_map(|r| r.cells()).collect()
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let g = build_sample();
        let snap = g.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: GraphSnapshot = serde_json::from_str(&json).expect("deserialize");
        let restored = FormulaGraph::restore(back);

        assert_eq!(restored.num_edges(), g.num_edges());
        assert_eq!(restored.stats(), g.stats());
        for probe in ["A2", "G5", "J1", "C2"] {
            let probe = Range::parse_a1(probe).unwrap();
            assert_eq!(cells(&restored.find_dependents(probe)), cells(&g.find_dependents(probe)));
        }
    }

    #[test]
    fn restored_graph_remains_maintainable() {
        let g = build_sample();
        let mut restored = FormulaGraph::restore(g.snapshot());
        // Extend a compressed run after restore.
        restored.add_dependency(&Dependency::new(
            Range::parse_a1("A4:B6").unwrap(),
            Cell::parse_a1("C4").unwrap(),
        ));
        let rr = restored
            .edges()
            .find(|e| e.dep.contains(&Range::parse_a1("C1").unwrap()))
            .expect("the RR edge");
        assert_eq!(rr.count, 4, "restored edge must keep compressing");
        // And clearing still splits correctly.
        restored.clear_cells(Range::parse_a1("C2").unwrap());
        let deps = restored.find_dependents(Range::parse_a1("A3").unwrap());
        assert!(!deps.iter().any(|r| r.contains(&Range::parse_a1("C2").unwrap())));
    }

    #[test]
    fn hand_edited_snapshot_ranges_are_renormalized() {
        // Swapped corners in JSON must come back normalized (Deserialize
        // goes through Range::new).
        let json = r#"{"head":{"col":3,"row":5},"tail":{"col":1,"row":2}}"#;
        let r: Range = serde_json::from_str(json).unwrap();
        assert_eq!(r, Range::from_coords(1, 2, 3, 5));
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = FormulaGraph::taco();
        let restored = FormulaGraph::restore(g.snapshot());
        assert_eq!(restored.num_edges(), 0);
    }
}
