//! Graph persistence: serialize a compressed formula graph and restore it
//! without recompressing.
//!
//! Compression happens once at load time (§VI-C measures it in seconds for
//! the largest sheets); a workbook that persists its compressed graph
//! alongside the file skips that work on reopen. A snapshot is exactly the
//! edge list — the R-tree indexes are rebuilt on restore, since they are
//! derived state.

use crate::config::Config;
use crate::edge::Edge;
use crate::graph::FormulaGraph;
use crate::pattern::{ChainDir, PatternMeta};
use serde::{Deserialize, Serialize};
use taco_grid::{Axis, Cell, Offset};

/// A serializable image of a [`FormulaGraph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSnapshot {
    /// The compressor configuration the graph was built with.
    pub config: Config,
    /// Every (possibly compressed) edge.
    pub edges: Vec<Edge>,
    /// Lifetime insert counter (restored for stats continuity).
    pub dependencies_inserted: u64,
}

/// Flattened pattern metadata: tag plus payload, orderable.
type MetaKey = (u8, i64, i64, i64, i64);

/// The full content key of an edge: dependent corners, precedent
/// corners, axis, metadata, count.
type EdgeKey = (Cell, Cell, Cell, Cell, u8, MetaKey, u32);

/// A total order over edges that depends only on edge *content*, never on
/// arena slot assignment: `(dep, prec, axis, meta, count)`. Equal graphs
/// (same edge multiset) therefore snapshot to identical edge sequences.
fn edge_sort_key(e: &Edge) -> EdgeKey {
    let axis = match e.axis {
        Axis::Col => 0u8,
        Axis::Row => 1,
    };
    (e.dep.head(), e.dep.tail(), e.prec.head(), e.prec.tail(), axis, meta_key(&e.meta), e.count)
}

/// Flattens pattern metadata into an orderable tuple (tag + payload).
fn meta_key(meta: &PatternMeta) -> MetaKey {
    let o = |a: Offset, b: Offset| (a.dc, a.dr, b.dc, b.dr);
    let c =
        |a: Cell, b: Cell| (i64::from(a.col), i64::from(a.row), i64::from(b.col), i64::from(b.row));
    match meta {
        PatternMeta::Single => (0, 0, 0, 0, 0),
        PatternMeta::RR { h_rel, t_rel } => {
            let (a, b, x, y) = o(*h_rel, *t_rel);
            (1, a, b, x, y)
        }
        PatternMeta::RF { h_rel, t_fix } => {
            (2, h_rel.dc, h_rel.dr, i64::from(t_fix.col), i64::from(t_fix.row))
        }
        PatternMeta::FR { h_fix, t_rel } => {
            (3, i64::from(h_fix.col), i64::from(h_fix.row), t_rel.dc, t_rel.dr)
        }
        PatternMeta::FF { h_fix, t_fix } => {
            let (a, b, x, y) = c(*h_fix, *t_fix);
            (4, a, b, x, y)
        }
        PatternMeta::RRChain { dir } => (5, i64::from(matches!(dir, ChainDir::Below)), 0, 0, 0),
        PatternMeta::RRGapOne { h_rel, t_rel } => {
            let (a, b, x, y) = o(*h_rel, *t_rel);
            (6, a, b, x, y)
        }
    }
}

impl FormulaGraph {
    /// Captures the graph as a snapshot. Edge order is **sorted and
    /// stable**: it is a pure function of the edge set (dependent range,
    /// then precedent range, axis, metadata, count), independent of
    /// insertion history or arena slot reuse — so two equal graphs
    /// produce byte-identical snapshots, which the on-disk container
    /// format relies on for checksums and delta encoding.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut edges: Vec<Edge> = self.edges().cloned().collect();
        edges.sort_by_key(edge_sort_key);
        GraphSnapshot {
            config: self.config().clone(),
            edges,
            dependencies_inserted: self.dependencies_inserted(),
        }
    }

    /// Restores a graph from a snapshot, rebuilding the spatial indexes
    /// with one STR bulk load per tree. No recompression is attempted:
    /// edges come back exactly as saved.
    pub fn restore(snapshot: GraphSnapshot) -> FormulaGraph {
        let mut g = FormulaGraph::new(snapshot.config);
        g.insert_edges_bulk(snapshot.edges);
        g.set_dependencies_inserted(snapshot.dependencies_inserted);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dependency;
    use std::collections::BTreeSet;
    use taco_grid::{Cell, Range};

    fn build_sample() -> FormulaGraph {
        let deps = [
            ("A1:B3", "C1"),
            ("A2:B4", "C2"),
            ("A3:B5", "C3"),
            ("G1:G9", "H1"),
            ("G1:G9", "H2"),
            ("J1", "K1"),
        ];
        FormulaGraph::build(
            Config::taco_full(),
            deps.iter().map(|(p, d)| {
                Dependency::new(Range::parse_a1(p).unwrap(), Cell::parse_a1(d).unwrap())
            }),
        )
    }

    fn cells(v: &[Range]) -> BTreeSet<Cell> {
        v.iter().flat_map(|r| r.cells()).collect()
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let g = build_sample();
        let snap = g.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: GraphSnapshot = serde_json::from_str(&json).expect("deserialize");
        let restored = FormulaGraph::restore(back);

        assert_eq!(restored.num_edges(), g.num_edges());
        assert_eq!(restored.stats(), g.stats());
        for probe in ["A2", "G5", "J1", "C2"] {
            let probe = Range::parse_a1(probe).unwrap();
            assert_eq!(cells(&restored.find_dependents(probe)), cells(&g.find_dependents(probe)));
        }
    }

    #[test]
    fn restored_graph_remains_maintainable() {
        let g = build_sample();
        let mut restored = FormulaGraph::restore(g.snapshot());
        // Extend a compressed run after restore.
        restored.add_dependency(&Dependency::new(
            Range::parse_a1("A4:B6").unwrap(),
            Cell::parse_a1("C4").unwrap(),
        ));
        let rr = restored
            .edges()
            .find(|e| e.dep.contains(&Range::parse_a1("C1").unwrap()))
            .expect("the RR edge");
        assert_eq!(rr.count, 4, "restored edge must keep compressing");
        // And clearing still splits correctly.
        restored.clear_cells(Range::parse_a1("C2").unwrap());
        let deps = restored.find_dependents(Range::parse_a1("A3").unwrap());
        assert!(!deps.iter().any(|r| r.contains(&Range::parse_a1("C2").unwrap())));
    }

    #[test]
    fn hand_edited_snapshot_ranges_are_renormalized() {
        // Swapped corners in JSON must come back normalized (Deserialize
        // goes through Range::new).
        let json = r#"{"head":{"col":3,"row":5},"tail":{"col":1,"row":2}}"#;
        let r: Range = serde_json::from_str(json).unwrap();
        assert_eq!(r, Range::from_coords(1, 2, 3, 5));
    }

    #[test]
    fn snapshots_of_equal_graphs_are_byte_identical() {
        // Same edge set reached through different histories: slot ids and
        // internal iteration order differ, the snapshot must not.
        let a = build_sample();
        let mut b = build_sample();
        // Churn b's arena: remove and re-add a dependency so slot ids shift.
        b.clear_cells(Range::parse_a1("K1").unwrap());
        b.add_dependency(&Dependency::new(
            Range::parse_a1("J1").unwrap(),
            Cell::parse_a1("K1").unwrap(),
        ));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.edges, sb.edges);
        assert_eq!(
            serde_json::to_string(&sa).unwrap(),
            serde_json::to_string(&GraphSnapshot {
                dependencies_inserted: sa.dependencies_inserted,
                ..sb
            })
            .unwrap()
        );
        // And the order is genuinely sorted by dependent head.
        let heads: Vec<Cell> = sa.edges.iter().map(|e| e.dep.head()).collect();
        let mut sorted = heads.clone();
        sorted.sort_unstable();
        assert_eq!(heads, sorted);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = FormulaGraph::taco();
        let restored = FormulaGraph::restore(g.snapshot());
        assert_eq!(restored.num_edges(), 0);
    }
}
