//! Graph-size and per-pattern accounting (Tables II–V).

use crate::pattern::PatternType;
use std::collections::HashSet;

/// Edges-reduced counters per pattern. A compressed edge representing `M`
/// dependencies reduces the edge count by `M − 1`, attributed to its
/// pattern (§VI-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternCounts {
    /// Edges reduced by RR.
    pub rr: u64,
    /// Edges reduced by RF.
    pub rf: u64,
    /// Edges reduced by FR.
    pub fr: u64,
    /// Edges reduced by FF.
    pub ff: u64,
    /// Edges reduced by RR-Chain.
    pub rr_chain: u64,
    /// Edges reduced by RR-GapOne (when enabled).
    pub rr_gap_one: u64,
}

impl PatternCounts {
    /// Adds `reduced` to the counter for `p`.
    pub fn add(&mut self, p: PatternType, reduced: u64) {
        match p {
            PatternType::Single => {}
            PatternType::RR => self.rr += reduced,
            PatternType::RF => self.rf += reduced,
            PatternType::FR => self.fr += reduced,
            PatternType::FF => self.ff += reduced,
            PatternType::RRChain => self.rr_chain += reduced,
            PatternType::RRGapOne => self.rr_gap_one += reduced,
        }
    }

    /// The counter for `p` (zero for `Single`).
    pub fn get(&self, p: PatternType) -> u64 {
        match p {
            PatternType::Single => 0,
            PatternType::RR => self.rr,
            PatternType::RF => self.rf,
            PatternType::FR => self.fr,
            PatternType::FF => self.ff,
            PatternType::RRChain => self.rr_chain,
            PatternType::RRGapOne => self.rr_gap_one,
        }
    }

    /// Total edges reduced across patterns.
    pub fn total(&self) -> u64 {
        self.rr + self.rf + self.fr + self.ff + self.rr_chain + self.rr_gap_one
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &PatternCounts) {
        self.rr += other.rr;
        self.rf += other.rf;
        self.fr += other.fr;
        self.ff += other.ff;
        self.rr_chain += other.rr_chain;
        self.rr_gap_one += other.rr_gap_one;
    }

    /// Element-wise maximum (Table V's per-spreadsheet max column).
    pub fn max_with(&mut self, other: &PatternCounts) {
        self.rr = self.rr.max(other.rr);
        self.rf = self.rf.max(other.rf);
        self.fr = self.fr.max(other.fr);
        self.ff = self.ff.max(other.ff);
        self.rr_chain = self.rr_chain.max(other.rr_chain);
        self.rr_gap_one = self.rr_gap_one.max(other.rr_gap_one);
    }
}

/// A snapshot of graph size and compression effectiveness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of edges in the (compressed) graph, `|E|`.
    pub edges: usize,
    /// Number of distinct vertex ranges induced by the edges, `|V|`.
    pub vertices: usize,
    /// Number of underlying dependencies the edges represent (`|E'|` as
    /// long as nothing was cleared).
    pub dependencies: u64,
    /// Edges reduced per pattern: `Σ (count − 1)` over compressed edges.
    pub reduced: PatternCounts,
}

impl GraphStats {
    /// `|E| / |E'|`, the remaining-edge fraction of Table IV.
    pub fn remaining_fraction(&self) -> f64 {
        if self.dependencies == 0 {
            1.0
        } else {
            self.edges as f64 / self.dependencies as f64
        }
    }

    /// `|E'| − |E|`, the edges-reduced metric of Table III.
    pub fn edges_reduced(&self) -> u64 {
        self.dependencies.saturating_sub(self.edges as u64)
    }
}

/// Caller-owned scratch for [`GraphStats`] computation: the vertex
/// de-duplication set that `count_vertices_with` would otherwise allocate
/// fresh on every call. Stats paths polled repeatedly (the metrics
/// gauges after each recalculation) reuse one of these, so steady-state
/// polling performs no heap allocations — the same discipline as the
/// query paths' `QueryScratch`.
#[derive(Debug, Default)]
pub struct StatsScratch {
    vertices: HashSet<taco_grid::Range>,
}

impl StatsScratch {
    /// An empty scratch (capacity grows on first use and persists).
    pub fn new() -> Self {
        StatsScratch::default()
    }
}

/// Computes `|V|` (distinct vertex ranges) from an edge iterator,
/// against a caller-owned scratch set: clears and reuses `scratch`'s
/// capacity instead of allocating a fresh set.
pub(crate) fn count_vertices_with<'a, I>(scratch: &mut StatsScratch, edges: I) -> usize
where
    I: Iterator<Item = &'a crate::Edge>,
{
    let set = &mut scratch.vertices;
    set.clear();
    for e in edges {
        set.insert(e.prec);
        set.insert(e.dep);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_roundtrip() {
        let mut c = PatternCounts::default();
        c.add(PatternType::RR, 10);
        c.add(PatternType::FF, 3);
        c.add(PatternType::Single, 99); // ignored
        assert_eq!(c.get(PatternType::RR), 10);
        assert_eq!(c.get(PatternType::Single), 0);
        assert_eq!(c.total(), 13);

        let mut d = PatternCounts::default();
        d.add(PatternType::RR, 5);
        d.add(PatternType::RF, 7);
        c.merge(&d);
        assert_eq!(c.rr, 15);
        assert_eq!(c.rf, 7);

        let mut m = PatternCounts::default();
        m.max_with(&c);
        assert_eq!(m, c);
    }

    #[test]
    fn vertex_counting_scratch_matches_fresh() {
        use crate::{Dependency, Edge};
        use taco_grid::{Cell, Range};
        let edges = [
            Edge::single(&Dependency::new(Range::cell(Cell::new(1, 1)), Cell::new(1, 2))),
            Edge::single(&Dependency::new(Range::cell(Cell::new(1, 1)), Cell::new(1, 3))),
        ];
        let fresh = count_vertices_with(&mut StatsScratch::new(), edges.iter());
        let mut scratch = StatsScratch::new();
        assert_eq!(count_vertices_with(&mut scratch, edges.iter()), fresh);
        // Reuse: a second pass over the same edges sees a cleared set.
        assert_eq!(count_vertices_with(&mut scratch, edges.iter()), fresh);
        assert_eq!(fresh, 3);
    }

    #[test]
    fn stats_derived_metrics() {
        let s = GraphStats {
            edges: 5,
            vertices: 8,
            dependencies: 100,
            reduced: PatternCounts::default(),
        };
        assert_eq!(s.edges_reduced(), 95);
        assert!((s.remaining_fraction() - 0.05).abs() < 1e-12);
    }
}
