/// A minimal arena with slot reuse: edges get stable ids while the graph
/// mutates, and iteration skips holes. Ids are recycled, which is safe here
/// because every external reference to an id (the two R-trees) is removed
/// in the same operation that frees the slot.
#[derive(Debug, Clone, Default)]
pub(crate) struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id].is_none());
                self.slots[id] = Some(value);
                id
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    pub fn remove(&mut self, id: usize) -> T {
        let v = self.slots[id].take().expect("removing a live slot");
        self.free.push(id);
        self.len -= 1;
        v
    }

    pub fn get(&self, id: usize) -> &T {
        self.slots[id].as_ref().expect("accessing a live slot")
    }

    /// Mutable access to a live slot (in-place edge rewrites during
    /// `clear_cells` keep the slot id stable instead of remove+reinsert).
    pub fn get_mut(&mut self, id: usize) -> &mut T {
        self.slots[id].as_mut().expect("accessing a live slot")
    }

    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuse() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(*s.get(a), "a");
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
        let c = s.insert("c");
        assert_eq!(c, a, "freed slot is reused");
        let ids: Vec<usize> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&b) && ids.contains(&c));
    }

    #[test]
    #[should_panic(expected = "live slot")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        s.remove(a);
    }
}
