//! Structural maintenance: keeping the compressed graph correct when rows
//! or columns are inserted or deleted.
//!
//! This extends the paper's maintenance story (§IV-C covers cell-level
//! insert/clear/update) to the other ubiquitous spreadsheet edit. The
//! interesting property of the compressed representation is that most
//! edges survive a structural edit *without decompression*:
//!
//! - an edge whose precedent and dependent ranges both lie entirely on one
//!   side of the edit keeps its pattern; only its bounding ranges shift,
//!   and — when precedent and dependent shift by different amounts — the
//!   relative offsets in its metadata are adjusted by the difference;
//! - only edges whose bounding ranges *straddle* the edited band need the
//!   slow path: decompress, transform each underlying dependency with
//!   Excel semantics (stretch/shrink/`#REF!`), and re-compress.

use crate::edge::Edge;
use crate::graph::FormulaGraph;
use crate::pattern::PatternMeta;
use crate::Dependency;
use taco_grid::{Cell, Offset, Range};

/// A row/column structural edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuralOp {
    /// Insert `n` rows before row `at`.
    InsertRows {
        /// Row the new rows are inserted before (1-based).
        at: u32,
        /// Number of rows inserted.
        n: u32,
    },
    /// Delete the rows `[at, at + n)`.
    DeleteRows {
        /// First deleted row (1-based).
        at: u32,
        /// Number of rows deleted.
        n: u32,
    },
    /// Insert `n` columns before column `at`.
    InsertCols {
        /// Column the new columns are inserted before (1-based).
        at: u32,
        /// Number of columns inserted.
        n: u32,
    },
    /// Delete the columns `[at, at + n)`.
    DeleteCols {
        /// First deleted column (1-based).
        at: u32,
        /// Number of columns deleted.
        n: u32,
    },
}

impl StructuralOp {
    /// Where a cell moves (None = deleted or pushed off the grid).
    pub fn map_cell(self, c: Cell) -> Option<Cell> {
        match self {
            StructuralOp::InsertRows { at, n } => c.insert_rows(at, n),
            StructuralOp::DeleteRows { at, n } => c.delete_rows(at, n),
            StructuralOp::InsertCols { at, n } => c.insert_cols(at, n),
            StructuralOp::DeleteCols { at, n } => c.delete_cols(at, n),
        }
    }

    /// Where a range moves/stretches/shrinks (None = `#REF!`).
    pub fn map_range(self, r: Range) -> Option<Range> {
        match self {
            StructuralOp::InsertRows { at, n } => r.insert_rows(at, n),
            StructuralOp::DeleteRows { at, n } => r.delete_rows(at, n),
            StructuralOp::InsertCols { at, n } => r.insert_cols(at, n),
            StructuralOp::DeleteCols { at, n } => r.delete_cols(at, n),
        }
    }

    /// `true` iff the edit band touches the interior of `r`, forcing the
    /// decompress-and-rebuild path for edges carrying it.
    pub fn disturbs(self, r: Range) -> bool {
        match self {
            StructuralOp::InsertRows { at, .. } => r.row_insert_straddles(at),
            StructuralOp::DeleteRows { at, n } => r.row_delete_overlaps(at, n),
            StructuralOp::InsertCols { at, .. } => r.transpose().row_insert_straddles(at),
            StructuralOp::DeleteCols { at, n } => r.transpose().row_delete_overlaps(at, n),
        }
    }

    /// Transforms one raw dependency (slow path). `None` drops it: either
    /// the formula cell itself vanished, or its referenced range did
    /// (`#REF!` — the formula survives but references nothing).
    pub fn map_dependency(self, d: &Dependency) -> Option<Dependency> {
        let dep = self.map_cell(d.dep)?;
        let prec = self.map_range(d.prec)?;
        Some(Dependency { prec, dep, cue: d.cue })
    }
}

impl FormulaGraph {
    /// Inserts `n` rows before row `at`, updating every edge.
    pub fn insert_rows(&mut self, at: u32, n: u32) {
        self.apply_structural(StructuralOp::InsertRows { at, n });
    }

    /// Deletes the rows `[at, at + n)`, updating every edge. Dependencies
    /// of deleted formula cells are dropped; references wholly inside the
    /// band become `#REF!` (dropped from the graph).
    pub fn delete_rows(&mut self, at: u32, n: u32) {
        self.apply_structural(StructuralOp::DeleteRows { at, n });
    }

    /// Inserts `n` columns before column `at`.
    pub fn insert_cols(&mut self, at: u32, n: u32) {
        self.apply_structural(StructuralOp::InsertCols { at, n });
    }

    /// Deletes the columns `[at, at + n)`.
    pub fn delete_cols(&mut self, at: u32, n: u32) {
        self.apply_structural(StructuralOp::DeleteCols { at, n });
    }

    /// Applies a structural edit: fast wholesale shift for undisturbed
    /// edges, decompress + re-compress for edges the band cuts through.
    pub fn apply_structural(&mut self, op: StructuralOp) {
        let ids: Vec<usize> = self.edge_ids();
        let mut reinsert: Vec<Dependency> = Vec::new();
        for id in ids {
            let e = self.peek_edge(id);
            let disturbed = op.disturbs(e.prec) || op.disturbs(e.dep);
            if disturbed || e.is_single() {
                let e = self.take_edge(id);
                for d in e.decompress() {
                    if let Some(t) = op.map_dependency(&d) {
                        reinsert.push(t);
                    }
                }
                continue;
            }
            // Fast path: both bounding ranges move rigidly (possibly by
            // different amounts); adjust the metadata accordingly.
            match shift_edge(e, op) {
                Some(ne) => {
                    self.take_edge(id);
                    self.put_edge(ne);
                }
                None => {
                    // Off-grid or dimension change: fall back.
                    let e = self.take_edge(id);
                    for d in e.decompress() {
                        if let Some(t) = op.map_dependency(&d) {
                            reinsert.push(t);
                        }
                    }
                }
            }
        }
        // Re-insertion order decides how the compressor groups the
        // rebuilt dependencies into patterns, and the edge enumeration
        // above follows arena order — which depends on the graph's
        // history (a freshly restored graph and a long-lived one
        // enumerate differently). Sort so the outcome is a pure function
        // of the edge *set*: structural edits then replay bit-identically
        // over a reopened snapshot (see the crash-sweep harness).
        reinsert.sort_unstable_by_key(|d| (d.dep, d.prec.head(), d.prec.tail()));
        for d in reinsert {
            self.compress_dependency(&d);
        }
    }
}

/// Rigid transform of an undisturbed edge. Returns `None` when the edge
/// cannot be moved rigidly (off-grid clamp changed a dimension).
fn shift_edge(e: &Edge, op: StructuralOp) -> Option<Edge> {
    let new_prec = op.map_range(e.prec)?;
    let new_dep = op.map_range(e.dep)?;
    if new_prec.width() != e.prec.width()
        || new_prec.height() != e.prec.height()
        || new_dep.width() != e.dep.width()
        || new_dep.height() != e.dep.height()
    {
        return None;
    }
    let dp = new_prec.head().offset_from(e.prec.head());
    let dd = new_dep.head().offset_from(e.dep.head());
    // Relative metadata stores prec-relative-to-dep offsets; if both sides
    // moved equally nothing changes, otherwise adjust by the difference
    // (in canonical coordinates).
    let rel_delta = e.axis.canon_offset(dp - dd);
    let map_fix = |c: Cell| -> Option<Cell> {
        // meta cells are canonical; move them by the precedent delta.
        let sheet = e.axis.canon_cell(c);
        let moved = sheet.offset(dp).ok()?;
        Some(e.axis.canon_cell(moved))
    };
    let meta = match e.meta {
        PatternMeta::Single => return None, // singles take the slow path
        PatternMeta::RR { h_rel, t_rel } => {
            PatternMeta::RR { h_rel: h_rel + rel_delta, t_rel: t_rel + rel_delta }
        }
        PatternMeta::RRGapOne { h_rel, t_rel } => {
            PatternMeta::RRGapOne { h_rel: h_rel + rel_delta, t_rel: t_rel + rel_delta }
        }
        PatternMeta::RF { h_rel, t_fix } => {
            PatternMeta::RF { h_rel: h_rel + rel_delta, t_fix: map_fix(t_fix)? }
        }
        PatternMeta::FR { h_fix, t_rel } => {
            PatternMeta::FR { h_fix: map_fix(h_fix)?, t_rel: t_rel + rel_delta }
        }
        PatternMeta::FF { h_fix, t_fix } => {
            PatternMeta::FF { h_fix: map_fix(h_fix)?, t_fix: map_fix(t_fix)? }
        }
        PatternMeta::RRChain { dir } => {
            // Chains have overlapping prec/dep; undisturbed means both
            // sides moved together.
            if rel_delta != Offset::ZERO {
                return None;
            }
            PatternMeta::RRChain { dir }
        }
    };
    Some(Edge { prec: new_prec, dep: new_dep, axis: e.axis, meta, count: e.count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, PatternType};
    use std::collections::BTreeSet;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    /// Reference implementation: decompress everything, transform each raw
    /// dependency, rebuild from scratch.
    fn reference(g: &FormulaGraph, op: StructuralOp) -> BTreeSet<(Range, Cell)> {
        g.decompress_all()
            .iter()
            .filter_map(|dep| op.map_dependency(dep))
            .map(|dep| (dep.prec, dep.dep))
            .collect()
    }

    fn actual(g: &FormulaGraph) -> BTreeSet<(Range, Cell)> {
        g.decompress_all().into_iter().map(|dep| (dep.prec, dep.dep)).collect()
    }

    fn check(mut g: FormulaGraph, op: StructuralOp) -> FormulaGraph {
        let want = reference(&g, op);
        g.apply_structural(op);
        assert_eq!(actual(&g), want, "structural op {op:?}");
        g
    }

    #[test]
    fn insert_below_everything_is_noop() {
        let g = FormulaGraph::build(
            Config::taco_full(),
            [d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3")],
        );
        let edges_before = g.num_edges();
        let g = check(g, StructuralOp::InsertRows { at: 100, n: 5 });
        assert_eq!(g.num_edges(), edges_before);
    }

    #[test]
    fn insert_above_shifts_edge_rigidly() {
        let g = FormulaGraph::build(
            Config::taco_full(),
            [d("A5:B7", "C5"), d("A6:B8", "C6"), d("A7:B9", "C7")],
        );
        let g = check(g, StructuralOp::InsertRows { at: 2, n: 3 });
        // Still one compressed RR edge, shifted down by 3.
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::RR);
        assert_eq!(e.dep, r("C8:C10"));
        assert_eq!(e.prec, r("A8:B12"));
    }

    #[test]
    fn insert_between_prec_and_dep_adjusts_rel() {
        // FF-style: lookups in C20:C22 referencing table A1:B2 above.
        let g = FormulaGraph::build(
            Config::taco_full(),
            [d("A1:B2", "C20"), d("A1:B2", "C21"), d("A1:B2", "C22")],
        );
        let g = check(g, StructuralOp::InsertRows { at: 10, n: 4 });
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::FF);
        assert_eq!(e.prec, r("A1:B2")); // table stays
        assert_eq!(e.dep, r("C24:C26")); // lookups shift

        // Queries still work.
        let deps = g.find_dependents(r("A1"));
        assert_eq!(deps.iter().map(Range::area).sum::<u64>(), 3);
    }

    #[test]
    fn insert_between_adjusts_rr_offsets() {
        // RR windows above their formulas: C20..C22 reference A1:A3-style
        // rows far above, so the band falls between prec and dep.
        let g = FormulaGraph::build(
            Config::taco_full(),
            [d("A1:A2", "C20"), d("A2:A3", "C21"), d("A3:A4", "C22")],
        );
        let g = check(g, StructuralOp::InsertRows { at: 10, n: 5 });
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::RR);
        // Dependents of A2 were C20:C21; now C25:C26.
        let deps = g.find_dependents(r("A2"));
        assert_eq!(deps, vec![r("C25:C26")]);
    }

    #[test]
    fn insert_inside_dep_run_splits_edge() {
        let g = FormulaGraph::build(
            Config::taco_full(),
            [d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3"), d("A4:B6", "C4")],
        );
        let g = check(g, StructuralOp::InsertRows { at: 3, n: 2 });
        // The run C1:C4 splits around the new blank rows; windows that
        // straddled the band stretched, so patterns may differ — the
        // reference check above guarantees correctness; also verify a
        // query end to end.
        let deps = g.find_dependents(r("A1"));
        assert!(deps.iter().any(|x| x.contains(&r("C1"))));
        assert!(!deps.iter().any(|x| x.contains(&r("C3")))); // C3 is blank now
    }

    #[test]
    fn delete_rows_drops_formulas_and_shrinks_refs() {
        let g = FormulaGraph::build(
            Config::taco_full(),
            [d("A1:A10", "C1"), d("A1:A10", "C2"), d("A1:A10", "C3")],
        );
        // Delete rows 2..=3: C2, C3 die; the A1:A10 reference shrinks.
        let g = check(g, StructuralOp::DeleteRows { at: 2, n: 2 });
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.prec, r("A1:A8"));
        assert_eq!(e.dep, r("C1"));
    }

    #[test]
    fn delete_entire_reference_is_ref_error() {
        let g = FormulaGraph::build(Config::taco_full(), [d("A5:A6", "C1")]);
        let mut g = g;
        g.delete_rows(5, 2);
        assert_eq!(g.num_edges(), 0, "reference vanished → dependency dropped");
    }

    #[test]
    fn chain_survives_rigid_shift() {
        let g = FormulaGraph::build(
            Config::taco_full(),
            (2..=20u32)
                .map(|row| Dependency::new(Range::cell(Cell::new(1, row - 1)), Cell::new(1, row))),
        );
        assert_eq!(g.num_edges(), 1);
        let g = check(g, StructuralOp::InsertRows { at: 30, n: 4 });
        assert_eq!(g.num_edges(), 1);
        let g2 = check(g, StructuralOp::InsertRows { at: 1, n: 10 });
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(g2.edges().next().unwrap().pattern(), PatternType::RRChain);
        // Cutting through the chain splits it.
        let g3 = check(g2, StructuralOp::InsertRows { at: 15, n: 1 });
        assert!(g3.num_edges() >= 2);
    }

    #[test]
    fn column_ops_mirror_row_ops() {
        // Row-axis edge: formulas along row 5 referencing the cell above.
        let g = FormulaGraph::build(
            Config::taco_full(),
            (2..=8u32)
                .map(|col| Dependency::new(Range::cell(Cell::new(col, 4)), Cell::new(col, 5))),
        );
        assert_eq!(g.num_edges(), 1);
        let g = check(g, StructuralOp::InsertCols { at: 1, n: 2 });
        assert_eq!(g.num_edges(), 1);
        let deps = g.find_dependents(Range::cell(Cell::new(5, 4)));
        assert_eq!(deps, vec![Range::cell(Cell::new(5, 5))]);
        // Delete a column through the middle.
        let g = check(g, StructuralOp::DeleteCols { at: 6, n: 1 });
        let total: u64 = g.edges().map(|e| u64::from(e.count)).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn stats_remain_consistent_after_structural_ops() {
        let mut g = FormulaGraph::build(
            Config::taco_full(),
            [
                d("A1:B3", "C1"),
                d("A2:B4", "C2"),
                d("A3:B5", "C3"),
                d("G1:G5", "H1"),
                d("G1:G5", "H2"),
            ],
        );
        g.insert_rows(2, 3);
        let s = g.stats();
        assert_eq!(s.edges as u64 + s.reduced.total(), s.dependencies);
        let total: u64 = g.edges().map(|e| u64::from(e.count)).sum();
        assert_eq!(total, s.dependencies);
    }
}
