//! The compressed-edge representation (§II-B) in sheet coordinates.
//!
//! An [`Edge`] is the tuple `(prec, dep, p, meta)`: the minimal bounding
//! precedent and dependent ranges, the pattern tag, and the constant-size
//! pattern metadata. The `axis` field records whether the dependent run is
//! a column (canonical) or a row; all pattern math lives in canonical
//! coordinates and this module transposes at the boundary.

use crate::pattern::{self, CanonDep, PatternMeta, PatternType};
use crate::Dependency;
use serde::{Deserialize, Serialize};
use taco_grid::{Axis, Range};

/// Identifier of an edge inside a [`crate::FormulaGraph`]'s arena.
pub type EdgeId = usize;

/// A (possibly compressed) edge of the formula graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Minimal bounding range of the compressed precedents (`⊕` of all
    /// underlying `e.prec`).
    pub prec: Range,
    /// Minimal bounding range of the compressed dependents.
    pub dep: Range,
    /// Compression axis of the dependent run (meaningless for `Single`).
    pub axis: Axis,
    /// Pattern metadata in canonical coordinates.
    pub meta: PatternMeta,
    /// Number of underlying dependencies this edge represents.
    pub count: u32,
}

impl Edge {
    /// An uncompressed edge holding exactly one dependency.
    pub fn single(d: &Dependency) -> Edge {
        Edge {
            prec: d.prec,
            dep: Range::cell(d.dep),
            axis: Axis::Col,
            meta: PatternMeta::Single,
            count: 1,
        }
    }

    /// The pattern tag.
    pub fn pattern(&self) -> PatternType {
        self.meta.pattern_type()
    }

    /// `true` iff this edge holds a single dependency.
    pub fn is_single(&self) -> bool {
        matches!(self.meta, PatternMeta::Single)
    }

    fn canon_dep(&self, d: &Dependency) -> CanonDep {
        CanonDep { prec: self.axis.canon(d.prec), dep: self.axis.canon_cell(d.dep) }
    }

    /// Attempts to compress a *single* edge and a new dependency into a
    /// fresh compressed edge using `pattern` along `axis` (the
    /// `candE.p == Single` branch of `genCompEdges`, Alg. 2).
    pub fn try_pair(&self, d: &Dependency, pattern: PatternType, axis: Axis) -> Option<Edge> {
        debug_assert!(self.is_single());
        let a = CanonDep { prec: axis.canon(self.prec), dep: axis.canon_cell(self.dep.head()) };
        let b = CanonDep { prec: axis.canon(d.prec), dep: axis.canon_cell(d.dep) };
        let meta = pattern::pair_meta(pattern, &a, &b)?;
        Some(Edge {
            prec: self.prec.bounding_union(&d.prec),
            dep: self.dep.bounding_union(&Range::cell(d.dep)),
            axis,
            meta,
            count: 2,
        })
    }

    /// Attempts to extend this compressed edge with one more dependency
    /// (the compressed branch of `genCompEdges`).
    pub fn try_extend(&self, d: &Dependency) -> Option<Edge> {
        debug_assert!(!self.is_single());
        let cd = self.canon_dep(d);
        if !pattern::can_extend(&self.meta, self.axis.canon(self.dep), &cd) {
            return None;
        }
        Some(Edge {
            prec: self.prec.bounding_union(&d.prec),
            dep: self.dep.bounding_union(&Range::cell(d.dep)),
            axis: self.axis,
            meta: self.meta,
            count: self.count + 1,
        })
    }

    /// `findDep`: dependents of `r` within this edge; `r` must be contained
    /// in `self.prec` (callers intersect first).
    pub fn find_dep(&self, r: Range) -> Vec<Range> {
        let mut out = Vec::new();
        self.find_dep_into(r, &mut out);
        out
    }

    /// [`Self::find_dep`] appending to a caller-owned buffer — the BFS
    /// hot path allocates nothing per edge access.
    pub fn find_dep_into(&self, r: Range, out: &mut Vec<Range>) {
        if self.is_single() {
            out.push(self.dep);
            return;
        }
        let start = out.len();
        pattern::find_dep_into(
            &self.meta,
            self.axis.canon(self.prec),
            self.axis.canon(self.dep),
            self.axis.canon(r),
            out,
        );
        for x in &mut out[start..] {
            *x = self.axis.uncanon(*x);
        }
    }

    /// `findPrec`: precedents of `s` within this edge; `s` must be
    /// contained in `self.dep`.
    pub fn find_prec(&self, s: Range) -> Vec<Range> {
        let mut out = Vec::new();
        self.find_prec_into(s, &mut out);
        out
    }

    /// [`Self::find_prec`] appending to a caller-owned buffer.
    pub fn find_prec_into(&self, s: Range, out: &mut Vec<Range>) {
        if self.is_single() {
            out.push(self.prec);
            return;
        }
        let start = out.len();
        pattern::find_prec_into(
            &self.meta,
            self.axis.canon(self.prec),
            self.axis.canon(self.dep),
            self.axis.canon(s),
            out,
        );
        for x in &mut out[start..] {
            *x = self.axis.uncanon(*x);
        }
    }

    /// `removeDep`: removes the dependencies for formula cells `s`,
    /// returning the replacement edges (empty when the edge disappears).
    pub fn remove_dep(&self, s: Range) -> Vec<Edge> {
        let mut out = Vec::new();
        self.remove_dep_into(s, &mut out);
        out
    }

    /// [`Self::remove_dep`] appending the replacement edges to a
    /// caller-owned buffer (`clear_cells` reuses one across edges).
    pub fn remove_dep_into(&self, s: Range, out: &mut Vec<Edge>) {
        let parts = pattern::remove_dep(
            &self.meta,
            self.axis.canon(self.prec),
            self.axis.canon(self.dep),
            self.axis.canon(s),
        );
        out.extend(parts.into_iter().map(|p| Edge {
            prec: self.axis.uncanon(p.prec),
            dep: self.axis.uncanon(p.dep),
            axis: self.axis,
            meta: p.meta,
            count: p.count,
        }));
    }

    /// Expands this edge into its underlying dependencies (the inverse of
    /// compression). Used by tests, the `ExcelLike` baseline, and
    /// round-trip verification; O(count).
    pub fn decompress(&self) -> Vec<Dependency> {
        if self.is_single() {
            return vec![Dependency::new(self.prec, self.dep.head())];
        }
        let cdep = self.axis.canon(self.dep);
        let cprec = self.axis.canon(self.prec);
        let col = cdep.head().col;
        let step = if matches!(self.meta, PatternMeta::RRGapOne { .. }) { 2 } else { 1 };
        let mut out = Vec::with_capacity(self.count as usize);
        let mut row = cdep.head().row;
        while row <= cdep.tail().row {
            let cell = taco_grid::Cell::new(col, row);
            // For chains find_prec is transitive; the direct precedent of a
            // single cell is the adjacent cell, recovered structurally.
            let prec_canon = match &self.meta {
                PatternMeta::RRChain { dir } => {
                    Some(Range::cell(cell.offset_saturating(dir.rel())))
                }
                m => pattern::find_prec(m, cprec, cdep, Range::cell(cell)).into_iter().next(),
            };
            if let Some(p) = prec_canon {
                // canon_cell is a transposition (its own inverse), so it
                // also maps canonical cells back to sheet coordinates.
                out.push(Dependency::new(self.axis.uncanon(p), self.axis.canon_cell(cell)));
            }
            row += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cue;
    use taco_grid::{Cell, Offset};

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    #[test]
    fn pair_column_axis_rr() {
        let e = Edge::single(&d("A1:B3", "C1"));
        let got = e.try_pair(&d("A2:B4", "C2"), PatternType::RR, Axis::Col).unwrap();
        assert_eq!(got.prec, r("A1:B4"));
        assert_eq!(got.dep, r("C1:C2"));
        assert_eq!(got.count, 2);
        assert_eq!(got.pattern(), PatternType::RR);
    }

    #[test]
    fn pair_row_axis_rr() {
        // Formulae along row 5: B5 references B1:B3, C5 references C1:C3.
        let e = Edge::single(&d("B1:B3", "B5"));
        let got = e.try_pair(&d("C1:C3", "C5"), PatternType::RR, Axis::Row).unwrap();
        assert_eq!(got.prec, r("B1:C3"));
        assert_eq!(got.dep, r("B5:C5"));
        // In canonical coordinates the rel offsets are (0,-2)..(0,-4)
        // transposed; just confirm the round trip below.
        let deps = got.decompress();
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0], d("B1:B3", "B5"));
        assert_eq!(deps[1], d("C1:C3", "C5"));
    }

    #[test]
    fn extend_row_axis() {
        let e = Edge::single(&d("B1:B3", "B5"));
        let e2 = e.try_pair(&d("C1:C3", "C5"), PatternType::RR, Axis::Row).unwrap();
        let e3 = e2.try_extend(&d("D1:D3", "D5")).unwrap();
        assert_eq!(e3.dep, r("B5:D5"));
        assert_eq!(e3.count, 3);
        // Cannot extend with a mismatched window.
        assert!(e3.try_extend(&d("E1:E4", "E5")).is_none());
    }

    #[test]
    fn find_dep_row_axis() {
        let e = Edge::single(&d("B1:B3", "B5"));
        let e2 = e.try_pair(&d("C1:C3", "C5"), PatternType::RR, Axis::Row).unwrap();
        let e3 = e2.try_extend(&d("D1:D3", "D5")).unwrap();
        // C2 only sits in C5's window.
        assert_eq!(e3.find_dep(r("C2")), vec![r("C5")]);
        // The whole precedent block hits all three formulae.
        assert_eq!(e3.find_dep(r("B1:D3")), vec![r("B5:D5")]);
    }

    #[test]
    fn find_prec_row_axis() {
        let e = Edge::single(&d("B1:B3", "B5"));
        let e2 = e.try_pair(&d("C1:C3", "C5"), PatternType::RR, Axis::Row).unwrap();
        assert_eq!(e2.find_prec(r("B5")), vec![r("B1:B3")]);
        assert_eq!(e2.find_prec(r("B5:C5")), vec![r("B1:C3")]);
    }

    #[test]
    fn remove_dep_row_axis() {
        let e = Edge::single(&d("B1:B3", "B5"));
        let e2 = e.try_pair(&d("C1:C3", "C5"), PatternType::RR, Axis::Row).unwrap();
        let e3 = e2.try_extend(&d("D1:D3", "D5")).unwrap();
        let parts = e3.remove_dep(r("C5"));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].dep, r("B5"));
        assert!(parts[0].is_single());
        assert_eq!(parts[0].prec, r("B1:B3"));
        assert_eq!(parts[1].dep, r("D5"));
        assert_eq!(parts[1].prec, r("D1:D3"));
    }

    #[test]
    fn decompress_round_trips_ff() {
        let e = Edge::single(&d("A1:B3", "C1"));
        let e2 = e.try_pair(&d("A1:B3", "C2"), PatternType::FF, Axis::Col).unwrap();
        let e3 = e2.try_extend(&d("A1:B3", "C3")).unwrap();
        let deps = e3.decompress();
        assert_eq!(deps, vec![d("A1:B3", "C1"), d("A1:B3", "C2"), d("A1:B3", "C3")]);
    }

    #[test]
    fn decompress_round_trips_chain() {
        let e = Edge::single(&d("A1", "A2"));
        let e2 = e.try_pair(&d("A2", "A3"), PatternType::RRChain, Axis::Col).unwrap();
        let e3 = e2.try_extend(&d("A3", "A4")).unwrap();
        assert_eq!(e3.prec, r("A1:A3"));
        assert_eq!(e3.dep, r("A2:A4"));
        let deps = e3.decompress();
        assert_eq!(deps, vec![d("A1", "A2"), d("A2", "A3"), d("A3", "A4")]);
    }

    #[test]
    fn single_edge_key_functions() {
        let e = Edge::single(&d("A1:A3", "B1"));
        assert_eq!(e.find_dep(r("A2")), vec![r("B1")]);
        assert_eq!(e.find_prec(r("B1")), vec![r("A1:A3")]);
        assert!(e.remove_dep(r("B1")).is_empty());
        assert_eq!(e.remove_dep(r("C1")).len(), 1);
    }

    #[test]
    fn cue_is_carried_by_dependency_not_edge() {
        let dep = Dependency {
            prec: r("B1:B4"),
            dep: Cell::parse_a1("C4").unwrap(),
            cue: Cue { head_fixed: true, tail_fixed: false },
        };
        let e = Edge::single(&dep);
        // Edges themselves don't store cues.
        assert_eq!(e.count, 1);
    }

    #[test]
    fn fig4b_full_round_trip() {
        // Build the Fig. 4b RF edge from scratch and decompress it.
        let e = Edge::single(&d("A1:B4", "C1"));
        let e = e.try_pair(&d("A2:B4", "C2"), PatternType::RF, Axis::Col).unwrap();
        let e = e.try_extend(&d("A3:B4", "C3")).unwrap();
        let e = e.try_extend(&d("A4:B4", "C4")).unwrap();
        assert_eq!(e.prec, r("A1:B4"));
        assert_eq!(e.dep, r("C1:C4"));
        assert_eq!(
            e.meta,
            PatternMeta::RF { h_rel: Offset::new(-2, 0), t_fix: Cell::parse_a1("B4").unwrap() }
        );
        let deps = e.decompress();
        assert_eq!(
            deps,
            vec![d("A1:B4", "C1"), d("A2:B4", "C2"), d("A3:B4", "C3"), d("A4:B4", "C4")]
        );
    }
}
