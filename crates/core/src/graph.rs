//! The TACO framework (§IV): greedy compression (Alg. 2), the modified BFS
//! for querying the compressed graph directly (Alg. 3), and incremental
//! maintenance.

use crate::config::Config;
use crate::dep::Dependency;
use crate::edge::{Edge, EdgeId};
use crate::pattern::PatternType;
use crate::slab::Slab;
use crate::stats::{count_vertices_with, GraphStats, PatternCounts, StatsScratch};
use std::collections::VecDeque;
use taco_grid::{Axis, Cell, Offset, Range};
use taco_rtree::{RTree, SearchScratch};

/// Instrumentation for one query (used by the complexity analysis benches
/// and the §IV-D edge-access discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of `(vertex, edge)` pairs examined during BFS.
    pub edges_accessed: u64,
    /// Number of ranges pushed into the BFS queue.
    pub enqueued: u64,
    /// Number of R-tree window searches issued.
    pub rtree_searches: u64,
    /// Number of vertex-index R-tree nodes visited across those searches
    /// (the cache-locality metric the perf baseline asserts on; the
    /// visited-set index is not counted).
    pub nodes_visited: u64,
}

/// Caller-owned scratch for the modified BFS (Alg. 3). Reusing one across
/// queries makes [`FormulaGraph::find_dependents_with_scratch`] and
/// friends allocation-free once the buffers are warm: the queue, hit
/// list, per-edge result buffer, visited-subtraction buffers, the
/// visited-set R-tree (cleared, capacity retained), and the index
/// traversal stack all persist between calls.
///
/// Queries take `&self` on the graph plus `&mut` scratch — the graph
/// itself is never mutated by a read, so concurrent readers can each own
/// a scratch and share the graph.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    queue: VecDeque<Range>,
    hits: Vec<(Range, EdgeId)>,
    found: Vec<Range>,
    covers: Vec<Range>,
    parts: Vec<Range>,
    sub_tmp: Vec<Range>,
    visited: RTree<()>,
    search: SearchScratch,
}

impl QueryScratch {
    /// An empty scratch; buffers grow to the workload's high-water mark
    /// on first use and then stop allocating.
    #[must_use]
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// Internal scratch for the `&mut self` compression / maintenance paths
/// (candidate discovery, `clear_cells` splitting). Lives on the graph so
/// `update_cell` bursts stop allocating once warm.
#[derive(Debug, Clone, Default)]
struct MaintScratch {
    candidates: Vec<EdgeId>,
    valid: Vec<(Edge, EdgeId)>,
    ids: Vec<EdgeId>,
    parts: Vec<Edge>,
    /// Query scratch for the `&mut self` entry points (the
    /// [`crate::DependencyBackend`] trait and the engine edit path).
    query: QueryScratch,
}

/// A formula dependency graph, compressed according to a [`Config`].
///
/// With `Config::nocomp()` this is exactly the paper's NoComp baseline:
/// identical storage (adjacency arena + R-trees over the vertices),
/// identical BFS — only the compression step differs.
///
/// ```
/// use taco_core::{Dependency, FormulaGraph};
/// use taco_grid::{Cell, Range};
///
/// // C1=SUM(A1:B3), C2=SUM(A2:B4): an autofilled sliding window.
/// let mut g = FormulaGraph::taco();
/// g.add_dependency(&Dependency::new(
///     Range::parse_a1("A1:B3").unwrap(),
///     Cell::parse_a1("C1").unwrap(),
/// ));
/// g.add_dependency(&Dependency::new(
///     Range::parse_a1("A2:B4").unwrap(),
///     Cell::parse_a1("C2").unwrap(),
/// ));
/// assert_eq!(g.num_edges(), 1); // compressed into one RR edge
///
/// // Queried directly, without decompression:
/// let deps = g.find_dependents(Range::parse_a1("A2").unwrap());
/// assert_eq!(deps, vec![Range::parse_a1("C1:C2").unwrap()]);
/// ```
#[derive(Debug, Clone)]
pub struct FormulaGraph {
    config: Config,
    edges: Slab<Edge>,
    /// R-tree over precedent vertex ranges → edge id.
    prec_index: RTree<EdgeId>,
    /// R-tree over dependent vertex ranges → edge id.
    dep_index: RTree<EdgeId>,
    /// Total dependencies ever inserted (the paper's `|E'|` when the graph
    /// is built once from a parsed file).
    deps_inserted: u64,
    /// Reusable buffers for the `&mut self` maintenance paths.
    scratch: MaintScratch,
}

impl FormulaGraph {
    /// Creates an empty graph with the given compressor configuration.
    pub fn new(config: Config) -> Self {
        FormulaGraph {
            config,
            edges: Slab::new(),
            prec_index: RTree::new(),
            dep_index: RTree::new(),
            deps_inserted: 0,
            scratch: MaintScratch::default(),
        }
    }

    /// Creates an empty graph with the full TACO configuration.
    pub fn taco() -> Self {
        Self::new(Config::taco_full())
    }

    /// Creates an empty uncompressed graph (the NoComp baseline).
    pub fn nocomp() -> Self {
        Self::new(Config::nocomp())
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of edges currently stored, `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.len() == 0
    }

    /// Iterates over the stored edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().map(|(_, e)| e)
    }

    /// Builds a graph by inserting every dependency in order, then
    /// repacking the vertex indexes with an STR bulk load (compression
    /// needs the indexes live while inserting; the final repack gives
    /// queries the tight bulk-loaded tree).
    pub fn build<I: IntoIterator<Item = Dependency>>(config: Config, deps: I) -> Self {
        let mut g = FormulaGraph::new(config);
        for d in deps {
            g.add_dependency(&d);
        }
        g.optimize();
        g
    }

    /// Rebuilds both vertex R-trees from the current edge set with an STR
    /// bulk load: minimal node count, near-minimal overlap, measurably
    /// fewer nodes visited per window query than the insertion-built
    /// shape. Call after a bulk construction phase (corpus build, file
    /// import, snapshot restore); incremental edits afterwards keep
    /// working on the packed tree.
    pub fn optimize(&mut self) {
        let prec: Vec<(Range, EdgeId)> = self.edges.iter().map(|(i, e)| (e.prec, i)).collect();
        let dep: Vec<(Range, EdgeId)> = self.edges.iter().map(|(i, e)| (e.dep, i)).collect();
        self.prec_index = RTree::bulk_load(prec);
        self.dep_index = RTree::bulk_load(dep);
    }

    /// Inserts fully-formed edges without compression, then bulk-loads
    /// the indexes (snapshot restore: no recompression, one STR pack).
    pub(crate) fn insert_edges_bulk<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.edges.insert(e);
        }
        self.optimize();
    }

    // ---- compression (Alg. 2) ---------------------------------------------

    /// Compresses one dependency into the graph (Alg. 2, `addDep(G, e')`).
    pub fn add_dependency(&mut self, d: &Dependency) {
        self.deps_inserted += 1;
        self.compress_dependency(d);
    }

    /// The compression logic without touching the lifetime insert counter
    /// (used when re-inserting dependencies during structural edits).
    pub(crate) fn compress_dependency(&mut self, d: &Dependency) {
        if self.config.patterns.is_empty() {
            self.insert_edge(Edge::single(d));
            return;
        }

        // Step 1: find candidate edges — those whose dependent vertex is
        // adjacent to e'.dep along the column or row axis (shift the cell by
        // one in all four directions and consult the R-tree; gap patterns
        // extend the search radius to two). Buffers persist on the graph.
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        candidates.clear();
        let radius = if self.config.has_gap_pattern() { 2 } else { 1 };
        for step in 1..=radius {
            for (dc, dr) in [(0, -step), (0, step), (-step, 0), (step, 0)] {
                if let Ok(shifted) = d.dep.offset(Offset::new(dc, dr)) {
                    self.dep_index
                        .for_each_overlapping(Range::cell(shifted), |_, &id| candidates.push(id));
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Step 2: find valid compressed edges (genCompEdges).
        let mut valid = std::mem::take(&mut self.scratch.valid);
        valid.clear();
        for &cand_id in &candidates {
            let cand = self.edges.get(cand_id);
            if cand.is_single() {
                for &p in &self.config.patterns {
                    for axis in [Axis::Col, Axis::Row] {
                        if let Some(new_edge) = cand.try_pair(d, p, axis) {
                            if self.config.allows(&new_edge.meta, axis) {
                                valid.push((new_edge, cand_id));
                            }
                        }
                    }
                }
            } else if let Some(new_edge) = cand.try_extend(d) {
                if self.config.allows(&new_edge.meta, new_edge.axis) {
                    valid.push((new_edge, cand_id));
                }
            }
        }

        // Step 3: select the final edge by the §IV-A heuristics:
        // column-wise first, then special patterns (RR-Chain ≺ RR), then
        // `$`-cue agreement, then pattern declaration order.
        match self.select_best(&valid, d) {
            None => {
                self.insert_edge(Edge::single(d));
            }
            Some(best_idx) => {
                let (new_edge, old_id) = valid.swap_remove(best_idx);
                self.remove_edge(old_id);
                self.insert_edge(new_edge);
            }
        }
        self.scratch.candidates = candidates;
        valid.clear();
        self.scratch.valid = valid;
    }

    fn select_best(&self, valid: &[(Edge, EdgeId)], d: &Dependency) -> Option<usize> {
        valid
            .iter()
            .enumerate()
            .min_by_key(|(_, (e, _))| {
                let p = e.pattern();
                let axis_rank =
                    if self.config.column_priority && e.axis == Axis::Row { 1u8 } else { 0 };
                // Special-case patterns outrank their general forms.
                let special_rank =
                    if PatternType::ALL.iter().any(|&q| p.is_special_case_of(q)) { 0u8 } else { 1 };
                let cue_rank = if self.config.use_cues && p.matches_cue(d.cue) { 0u8 } else { 1 };
                let order_rank =
                    self.config.patterns.iter().position(|&q| q == p).unwrap_or(usize::MAX);
                // Prefer extending an existing compressed edge over pairing
                // two singles when otherwise tied (larger count first).
                let count_rank = u32::MAX - e.count;
                (axis_rank, special_rank, cue_rank, order_rank, count_rank)
            })
            .map(|(i, _)| i)
    }

    /// Snapshot of the live edge ids (structural edits iterate this).
    pub(crate) fn edge_ids(&self) -> Vec<EdgeId> {
        self.edges.iter().map(|(i, _)| i).collect()
    }

    /// Borrow an edge by id.
    pub(crate) fn peek_edge(&self, id: EdgeId) -> &Edge {
        self.edges.get(id)
    }

    /// Remove an edge (and its index entries) by id.
    pub(crate) fn take_edge(&mut self, id: EdgeId) -> Edge {
        self.remove_edge(id)
    }

    /// Insert a fully-formed edge without attempting compression.
    pub(crate) fn put_edge(&mut self, e: Edge) {
        self.insert_edge(e);
    }

    /// Restores the lifetime insert counter (snapshot restore).
    pub(crate) fn set_dependencies_inserted(&mut self, n: u64) {
        self.deps_inserted = n;
    }

    fn insert_edge(&mut self, e: Edge) -> EdgeId {
        let prec = e.prec;
        let dep = e.dep;
        let id = self.edges.insert(e);
        self.prec_index.insert(prec, id);
        self.dep_index.insert(dep, id);
        id
    }

    fn remove_edge(&mut self, id: EdgeId) -> Edge {
        let e = self.edges.remove(id);
        let removed_p = self.prec_index.remove(e.prec, &id);
        let removed_d = self.dep_index.remove(e.dep, &id);
        debug_assert!(removed_p && removed_d, "edge {id} must be indexed");
        e
    }

    // ---- querying (Alg. 3) --------------------------------------------------

    /// Finds all (direct and transitive) dependents of `r`, returned as
    /// disjoint ranges.
    pub fn find_dependents(&self, r: Range) -> Vec<Range> {
        self.find_dependents_with_stats(r).0
    }

    /// [`Self::find_dependents`] with query instrumentation.
    pub fn find_dependents_with_stats(&self, r: Range) -> (Vec<Range>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.find_dependents_with_scratch(r, &mut QueryScratch::new(), &mut out);
        (out, stats)
    }

    /// [`Self::find_dependents`] on caller-owned buffers: `out` is
    /// overwritten with the disjoint result ranges. With a warm
    /// [`QueryScratch`] the whole query performs zero heap allocations —
    /// the steady-state contract the perf baseline asserts.
    pub fn find_dependents_with_scratch(
        &self,
        r: Range,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        self.bfs(r, Direction::Dependents, scratch, out)
    }

    /// Finds all (direct and transitive) precedents of `r`.
    pub fn find_precedents(&self, r: Range) -> Vec<Range> {
        self.find_precedents_with_stats(r).0
    }

    /// [`Self::find_precedents`] with query instrumentation.
    pub fn find_precedents_with_stats(&self, r: Range) -> (Vec<Range>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.find_precedents_with_scratch(r, &mut QueryScratch::new(), &mut out);
        (out, stats)
    }

    /// [`Self::find_precedents`] on caller-owned buffers (see
    /// [`Self::find_dependents_with_scratch`] for the contract).
    pub fn find_precedents_with_scratch(
        &self,
        r: Range,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        self.bfs(r, Direction::Precedents, scratch, out)
    }

    /// Finds only the *direct* dependents of `r` — a single hop of the
    /// modified BFS, with no transitive expansion. Same allocation
    /// contract as [`Self::find_dependents_with_scratch`]. This is the
    /// probe the recalculation scheduler levels dirty sets with: one hop
    /// per dirty cell yields the edge relation Kahn's algorithm needs
    /// (see [`crate::leveling`]).
    pub fn direct_dependents_with_scratch(
        &self,
        r: Range,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        self.hop(r, Direction::Dependents, scratch, out)
    }

    /// Finds only the *direct* precedents of `r` — one hop, no transitive
    /// expansion (see [`Self::direct_dependents_with_scratch`]).
    pub fn direct_precedents_with_scratch(
        &self,
        r: Range,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        self.hop(r, Direction::Precedents, scratch, out)
    }

    /// [`Self::find_dependents`] reusing the graph's internal query
    /// scratch (`&mut self` callers — the engine edit path and the
    /// backend trait — get warm buffers without owning a
    /// [`QueryScratch`]; only the returned result vector allocates).
    pub fn find_dependents_reusing(&mut self, r: Range) -> Vec<Range> {
        let mut scratch = std::mem::take(&mut self.scratch.query);
        let mut out = Vec::new();
        self.find_dependents_with_scratch(r, &mut scratch, &mut out);
        self.scratch.query = scratch;
        out
    }

    /// [`Self::find_precedents`] reusing the graph's internal query
    /// scratch.
    pub fn find_precedents_reusing(&mut self, r: Range) -> Vec<Range> {
        let mut scratch = std::mem::take(&mut self.scratch.query);
        let mut out = Vec::new();
        self.find_precedents_with_scratch(r, &mut scratch, &mut out);
        self.scratch.query = scratch;
        out
    }

    fn bfs(
        &self,
        r: Range,
        dir: Direction,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        self.traverse(r, dir, true, scratch, out)
    }

    fn hop(
        &self,
        r: Range,
        dir: Direction,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        self.traverse(r, dir, false, scratch, out)
    }

    fn traverse(
        &self,
        r: Range,
        dir: Direction,
        transitive: bool,
        scratch: &mut QueryScratch,
        out: &mut Vec<Range>,
    ) -> QueryStats {
        let QueryScratch { queue, hits, found, covers, parts, sub_tmp, visited, search } = scratch;
        out.clear();
        queue.clear();
        // R-tree over the visited ranges for the not-yet-contained check;
        // clearing retains its arena capacity.
        visited.clear();
        let mut stats = QueryStats::default();
        queue.push_back(r);
        let index = match dir {
            Direction::Dependents => &self.prec_index,
            Direction::Precedents => &self.dep_index,
        };

        while let Some(to_visit) = queue.pop_front() {
            stats.rtree_searches += 1;
            hits.clear();
            stats.nodes_visited += index.search_with(to_visit, search, |vr, &id| {
                hits.push((vr, id));
            });
            for &(vertex_range, id) in hits.iter() {
                stats.edges_accessed += 1;
                let e = self.edges.get(id);
                // findDep/findPrec require the probe to be contained in the
                // edge's vertex: intersect first.
                let probe = to_visit
                    .intersect(&vertex_range)
                    .expect("R-tree returned an overlapping vertex");
                found.clear();
                match dir {
                    Direction::Dependents => e.find_dep_into(probe, found),
                    Direction::Precedents => e.find_prec_into(probe, found),
                }
                for &f in found.iter() {
                    // Subtract the already-visited subset (via the R-tree on
                    // the result set), keep the new parts.
                    covers.clear();
                    visited.search_with(f, search, |c, _| covers.push(c));
                    f.subtract_all_into(covers.iter(), parts, sub_tmp);
                    for &new_range in parts.iter() {
                        visited.insert(new_range, ());
                        out.push(new_range);
                        if transitive {
                            queue.push_back(new_range);
                            stats.enqueued += 1;
                        }
                    }
                }
            }
        }
        stats
    }

    // ---- maintenance (§IV-C) -------------------------------------------------

    /// Clears the dependencies of all formula cells inside `s`: every edge
    /// whose dependent overlaps `s` loses the overlapping part
    /// (`removeDep`). Pure-value cells in `s` are unaffected (they carry no
    /// outgoing-formula edges).
    pub fn clear_cells(&mut self, s: Range) {
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        self.dep_index.for_each_overlapping(s, |_, &id| ids.push(id));
        ids.sort_unstable();
        ids.dedup();
        let mut parts = std::mem::take(&mut self.scratch.parts);
        for &id in &ids {
            parts.clear();
            self.edges.get(id).remove_dep_into(s, &mut parts);
            if parts.is_empty() {
                self.remove_edge(id);
                continue;
            }
            // The first replacement part reuses the arena slot in place;
            // an index entry moves only when its range actually changed
            // (a split that keeps the precedent vertex — the common case
            // for RR/RF/FR runs — costs zero prec-index churn).
            let first = parts[0].clone();
            let old = self.edges.get_mut(id);
            let (old_prec, old_dep) = (old.prec, old.dep);
            *old = first;
            let (new_prec, new_dep) = {
                let e = self.edges.get(id);
                (e.prec, e.dep)
            };
            if old_prec != new_prec {
                let moved = self.prec_index.remove(old_prec, &id);
                debug_assert!(moved, "edge {id} must be prec-indexed");
                self.prec_index.insert(new_prec, id);
            }
            if old_dep != new_dep {
                let moved = self.dep_index.remove(old_dep, &id);
                debug_assert!(moved, "edge {id} must be dep-indexed");
                self.dep_index.insert(new_dep, id);
            }
            for part in parts.drain(1..) {
                self.insert_edge(part);
            }
        }
        self.scratch.ids = ids;
        parts.clear();
        self.scratch.parts = parts;
    }

    /// Replaces the dependencies of the formula cell `cell`: clears its old
    /// ones, then compresses the new ones in (update = clear + insert).
    pub fn update_cell(&mut self, cell: Cell, new_precs: &[Dependency]) {
        self.clear_cells(Range::cell(cell));
        for d in new_precs {
            debug_assert_eq!(d.dep, cell);
            self.add_dependency(d);
        }
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.prec_index.clear();
        self.dep_index.clear();
        self.deps_inserted = 0;
    }

    // ---- stats -----------------------------------------------------------------

    /// Snapshot of graph size and per-pattern compression effectiveness.
    pub fn stats(&self) -> GraphStats {
        self.stats_with(&mut StatsScratch::new())
    }

    /// [`Self::stats`] against a caller-owned [`StatsScratch`]: reuses
    /// the scratch's vertex set instead of allocating one per call, so
    /// repeated polling (the post-recalc metrics gauges) stays
    /// allocation-free once the scratch has warmed up.
    pub fn stats_with(&self, scratch: &mut StatsScratch) -> GraphStats {
        let mut reduced = PatternCounts::default();
        let mut dependencies = 0u64;
        for (_, e) in self.edges.iter() {
            dependencies += u64::from(e.count);
            reduced.add(e.pattern(), u64::from(e.count) - 1);
        }
        GraphStats {
            edges: self.edges.len(),
            vertices: count_vertices_with(scratch, self.edges.iter().map(|(_, e)| e)),
            dependencies,
            reduced,
        }
    }

    /// Total dependencies inserted over the graph's lifetime (`|E'|` for a
    /// build-once graph).
    pub fn dependencies_inserted(&self) -> u64 {
        self.deps_inserted
    }

    /// Expands every compressed edge back into raw dependencies (testing /
    /// verification; O(|E'|)).
    pub fn decompress_all(&self) -> Vec<Dependency> {
        let mut out = Vec::new();
        for (_, e) in self.edges.iter() {
            out.extend(e.decompress());
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Dependents,
    Precedents,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    /// Sorts ranges for order-insensitive comparison.
    fn sorted(mut v: Vec<Range>) -> Vec<Range> {
        v.sort();
        v
    }

    /// The total cell area of a range list (ranges must be disjoint).
    fn area(v: &[Range]) -> u64 {
        v.iter().map(Range::area).sum()
    }

    #[test]
    fn fig3_uncompressed_graph() {
        // Fig. 3: B1=SUM(A1:A3), B2=SUM(A1:A3), C1=B1+B3, C2=AVG(B2:B3).
        let mut g = FormulaGraph::nocomp();
        g.add_dependency(&d("A1:A3", "B1"));
        g.add_dependency(&d("A1:A3", "B2"));
        g.add_dependency(&d("B1", "C1"));
        g.add_dependency(&d("B3", "C1"));
        g.add_dependency(&d("B2:B3", "C2"));
        assert_eq!(g.num_edges(), 5);

        // Dependents of A1 = {B1, B2, C1, C2} (paper's example).
        let deps = g.find_dependents(r("A1"));
        assert_eq!(area(&deps), 4);
        for cell in ["B1", "B2", "C1", "C2"] {
            assert!(deps.iter().any(|x| x.contains(&r(cell))), "missing {cell}");
        }
    }

    #[test]
    fn fig4a_compresses_to_one_edge() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1:B3", "C1"));
        g.add_dependency(&d("A2:B4", "C2"));
        g.add_dependency(&d("A3:B5", "C3"));
        g.add_dependency(&d("A4:B6", "C4"));
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::RR);
        assert_eq!(e.prec, r("A1:B6"));
        assert_eq!(e.dep, r("C1:C4"));
        assert_eq!(e.count, 4);
    }

    #[test]
    fn fig4_all_patterns_compress() {
        // 4b RF.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B4", "C1"), ("A2:B4", "C2"), ("A3:B4", "C3"), ("A4:B4", "C4")] {
            g.add_dependency(&d(p, c));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RF);

        // 4c FR.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B1", "C1"), ("A1:B2", "C2"), ("A1:B3", "C3")] {
            g.add_dependency(&d(p, c));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::FR);

        // 4d FF.
        let mut g = FormulaGraph::taco();
        for c in ["C1", "C2", "C3"] {
            g.add_dependency(&d("A1:B3", c));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::FF);
    }

    #[test]
    fn fig9_chain_pattern_selected_over_rr() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1", "A2"));
        g.add_dependency(&d("A2", "A3"));
        g.add_dependency(&d("A3", "A4"));
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::RRChain);
        assert_eq!(e.prec, r("A1:A3"));
        assert_eq!(e.dep, r("A2:A4"));
    }

    #[test]
    fn chain_query_single_pass() {
        // 1000-cell chain: dependents of the head must be found with few
        // edge accesses thanks to the transitive findDep.
        let mut g = FormulaGraph::taco();
        for row in 2..=1000u32 {
            g.add_dependency(&Dependency::new(
                Range::cell(Cell::new(1, row - 1)),
                Cell::new(1, row),
            ));
        }
        assert_eq!(g.num_edges(), 1);
        let (deps, stats) = g.find_dependents_with_stats(r("A1"));
        assert_eq!(area(&deps), 999);
        assert!(
            stats.edges_accessed <= 4,
            "chain should resolve transitively, got {} accesses",
            stats.edges_accessed
        );
    }

    #[test]
    fn rr_without_chain_config_uses_rr() {
        let mut g = FormulaGraph::new(Config::taco_without(PatternType::RRChain));
        g.add_dependency(&d("A1", "A2"));
        g.add_dependency(&d("A2", "A3"));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RR);
    }

    #[test]
    fn fig8_insert_into_existing_column_edge() {
        // Setup of Fig. 8: C1:C3 reference $B$1:Bi (FR) and A1 (FF);
        // D4 references B1:B4 (single). Insert SUM($B$1:B4)*? at C4: its
        // B-reference must extend the FR edge column-wise.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("B1", "C1"), ("B1:B2", "C2"), ("B1:B3", "C3")] {
            let mut dep = d(p, c);
            dep.cue = crate::Cue { head_fixed: true, tail_fixed: false };
            g.add_dependency(&dep);
        }
        for c in ["C1", "C2", "C3"] {
            g.add_dependency(&d("A1", c));
        }
        g.add_dependency(&d("B1:B4", "D4"));
        assert_eq!(g.num_edges(), 3);

        // The insert at C4.
        let mut new_dep = d("B1:B4", "C4");
        new_dep.cue = crate::Cue { head_fixed: true, tail_fixed: false };
        g.add_dependency(&new_dep);
        assert_eq!(g.num_edges(), 3);

        // The FR edge must now cover C1:C4 (column-wise compression chosen
        // over pairing with D4 row-wise).
        let fr = g.edges().find(|e| e.pattern() == PatternType::FR).unwrap();
        assert_eq!(fr.dep, r("C1:C4"));
        assert_eq!(fr.prec, r("B1:B4"));
        // D4 stays single.
        assert!(g.edges().any(|e| e.is_single() && e.dep == r("D4")));
    }

    #[test]
    fn query_compressed_graph_fig8() {
        // Step-3 graph of Fig. 8; find dependents of B2 — paper expects
        // C2:C4 from the FR edge (C1 does not depend on B2) plus D4.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("B1", "C1"), ("B1:B2", "C2"), ("B1:B3", "C3"), ("B1:B4", "C4")] {
            g.add_dependency(&d(p, c));
        }
        g.add_dependency(&d("B1:B4", "D4"));
        let deps = g.find_dependents(r("B2"));
        assert_eq!(area(&deps), 4);
        assert!(deps.iter().any(|x| x.contains(&r("C2"))));
        assert!(deps.iter().any(|x| x.contains(&r("C4"))));
        assert!(deps.iter().any(|x| x.contains(&r("D4"))));
        assert!(!deps.iter().any(|x| x.contains(&r("C1"))));
    }

    #[test]
    fn transitive_dependents_across_edges() {
        // A1 → B1:B3 (three formulae), B1:B3 → C1 (SUM).
        let mut g = FormulaGraph::taco();
        for c in ["B1", "B2", "B3"] {
            g.add_dependency(&d("A1", c));
        }
        g.add_dependency(&d("B1:B3", "C1"));
        let deps = g.find_dependents(r("A1"));
        assert_eq!(area(&deps), 4); // B1,B2,B3,C1
    }

    #[test]
    fn find_precedents_dual() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1:B3", "C1"));
        g.add_dependency(&d("A2:B4", "C2"));
        g.add_dependency(&d("C1:C2", "D1"));
        let precs = g.find_precedents(r("D1"));
        // C1:C2 directly; A1:B4 transitively.
        assert!(precs.iter().any(|x| x.contains(&r("C1"))));
        assert!(precs.iter().any(|x| x.contains(&r("A1"))));
        assert!(precs.iter().any(|x| x.contains(&r("B4"))));
        assert_eq!(area(&precs), 2 + 8);
    }

    #[test]
    fn no_dependents_returns_empty() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1", "B1"));
        assert!(g.find_dependents(r("Z99")).is_empty());
        assert!(g.find_precedents(r("A1")).is_empty());
    }

    #[test]
    fn clear_cells_splits_compressed_edge() {
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3"), ("A4:B6", "C4")] {
            g.add_dependency(&d(p, c));
        }
        assert_eq!(g.num_edges(), 1);
        g.clear_cells(r("C2"));
        assert_eq!(g.num_edges(), 2);
        let deps = sorted(g.edges().map(|e| e.dep).collect());
        assert_eq!(deps, vec![r("C1"), r("C3:C4")]);
        // Dependents of A4 must no longer include C2.
        let found = g.find_dependents(r("A4"));
        assert!(!found.iter().any(|x| x.contains(&r("C2"))));
        assert!(found.iter().any(|x| x.contains(&r("C3"))));
    }

    #[test]
    fn clear_then_reinsert_recompresses() {
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3")] {
            g.add_dependency(&d(p, c));
        }
        g.clear_cells(r("C2"));
        assert_eq!(g.num_edges(), 2);
        g.add_dependency(&d("A2:B4", "C2"));
        // The re-inserted dependency can merge back into a neighbour edge.
        assert!(g.num_edges() <= 2);
        let all = g.find_dependents(r("A3"));
        assert_eq!(area(&all), 3); // C1,C2,C3 all reference A3
    }

    #[test]
    fn update_cell_replaces_dependencies() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1", "B1"));
        g.update_cell(Cell::parse_a1("B1").unwrap(), &[d("A2", "B1"), d("A3", "B1")]);
        assert!(g.find_dependents(r("A1")).is_empty());
        assert_eq!(area(&g.find_dependents(r("A2"))), 1);
        assert_eq!(area(&g.find_dependents(r("A3"))), 1);
    }

    #[test]
    fn nocomp_and_taco_agree_on_queries() {
        // Build the same messy sheet both ways; answers must be identical
        // cell sets (lossless compression).
        let deps = [
            d("A1:B3", "C1"),
            d("A2:B4", "C2"),
            d("A3:B5", "C3"),
            d("A1", "D1"),
            d("A1", "D2"),
            d("A1", "D3"),
            d("C1:C3", "E1"),
            d("D1:D3", "E2"),
            d("E1", "F1"),
            d("F1", "F2"),
            d("F2", "F3"),
        ];
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        assert!(taco.num_edges() < nocomp.num_edges());

        for probe in ["A1", "A2", "B3", "C2", "D2", "E1", "F1", "A1:B5"] {
            let a = cells_of(&taco.find_dependents(r(probe)));
            let b = cells_of(&nocomp.find_dependents(r(probe)));
            assert_eq!(a, b, "dependents({probe}) disagree");
            let a = cells_of(&taco.find_precedents(r(probe)));
            let b = cells_of(&nocomp.find_precedents(r(probe)));
            assert_eq!(a, b, "precedents({probe}) disagree");
        }
    }

    #[test]
    fn stats_account_per_pattern() {
        let mut g = FormulaGraph::taco();
        // RR run of 4 (reduces 3).
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3"), ("A4:B6", "C4")] {
            g.add_dependency(&d(p, c));
        }
        // FF run of 3 (reduces 2).
        for c in ["E1", "E2", "E3"] {
            g.add_dependency(&d("G1:G9", c));
        }
        // One single.
        g.add_dependency(&d("H1", "I1"));
        let s = g.stats();
        assert_eq!(s.edges, 3);
        assert_eq!(s.dependencies, 8);
        assert_eq!(s.reduced.rr, 3);
        assert_eq!(s.reduced.ff, 2);
        assert_eq!(s.edges_reduced(), 5);
        assert!((s.remaining_fraction() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(g.dependencies_inserted(), 8);
    }

    #[test]
    fn decompress_all_round_trips() {
        let deps = vec![
            d("A1:B3", "C1"),
            d("A2:B4", "C2"),
            d("A3:B5", "C3"),
            d("G1:G9", "E1"),
            d("G1:G9", "E2"),
            d("H1", "I1"),
        ];
        let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let mut got: Vec<(Range, Cell)> =
            g.decompress_all().into_iter().map(|x| (x.prec, x.dep)).collect();
        let mut want: Vec<(Range, Cell)> = deps.into_iter().map(|x| (x.prec, x.dep)).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn in_row_config_only_compresses_same_row_refs() {
        let mut g = FormulaGraph::new(Config::taco_in_row());
        // Derived column: Bi = Ai * 2 — same-row references, compresses.
        for row in 1..=5u32 {
            g.add_dependency(&Dependency::new(Range::cell(Cell::new(1, row)), Cell::new(2, row)));
        }
        // Sliding windows (cross-row): must NOT compress under InRow.
        for (p, c) in [("D1:D3", "E2"), ("D2:D4", "E3"), ("D3:D5", "E4")] {
            g.add_dependency(&d(p, c));
        }
        let s = g.stats();
        assert_eq!(s.reduced.rr, 4);
        assert_eq!(s.edges, 1 + 3);
    }

    #[test]
    fn row_axis_compression_works() {
        // Formulae along row 10, each referencing the three cells above.
        let mut g = FormulaGraph::taco();
        for col in 1..=6u32 {
            g.add_dependency(&Dependency::new(
                Range::new(Cell::new(col, 7), Cell::new(col, 9)),
                Cell::new(col, 10),
            ));
        }
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.axis, Axis::Row);
        assert_eq!(e.count, 6);
        // Query still works.
        let deps = g.find_dependents(Range::cell(Cell::new(3, 8)));
        assert_eq!(deps, vec![Range::cell(Cell::new(3, 10))]);
    }

    #[test]
    fn gap_one_compresses_when_enabled() {
        let mut g = FormulaGraph::new(Config::taco_with_gap_one());
        // Formulae at C1, C3, C5 referencing the cell to the left.
        for row in [1u32, 3, 5] {
            g.add_dependency(&Dependency::new(Range::cell(Cell::new(2, row)), Cell::new(3, row)));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RRGapOne);
        // Dependents of B3 = C3 only.
        let deps = g.find_dependents(Range::cell(Cell::new(2, 3)));
        assert_eq!(deps, vec![Range::cell(Cell::new(3, 3))]);
        // B2 (a gap row) has no dependents.
        assert!(g.find_dependents(Range::cell(Cell::new(2, 2))).is_empty());
    }

    #[test]
    fn self_overlapping_rr_terminates() {
        // The Fig. 2 shape: N-column formulae reference the N column itself
        // (Ni depends on N(i-1)); prec and dep bounding ranges overlap.
        let mut g = FormulaGraph::taco();
        for row in 3..=50u32 {
            // N col = 14, M col = 13, A col = 1.
            g.add_dependency(&Dependency::new(
                Range::new(Cell::new(1, row - 1), Cell::new(1, row)),
                Cell::new(14, row),
            ));
            g.add_dependency(&Dependency::new(Range::cell(Cell::new(13, row)), Cell::new(14, row)));
            g.add_dependency(&Dependency::new(
                Range::cell(Cell::new(14, row - 1)),
                Cell::new(14, row),
            ));
        }
        let s = g.stats();
        assert!(s.edges <= 6, "Fig. 2 compresses to a handful of edges, got {}", s.edges);
        // Updating A10 must reach every N-row at or below 10.
        let deps = g.find_dependents(Range::cell(Cell::new(1, 10)));
        let total: u64 = deps.iter().map(Range::area).sum();
        assert_eq!(total, 41);
    }

    fn cells_of(ranges: &[Range]) -> std::collections::BTreeSet<Cell> {
        ranges.iter().flat_map(|r| r.cells()).collect()
    }

    /// Regression: the scratch entry points are the same query — results
    /// *and* instrumentation identical to the allocating API, with the
    /// scratch reused (dirty) across queries and directions.
    #[test]
    fn scratch_and_plain_queries_are_identical() {
        let mut g = FormulaGraph::taco();
        // A messy mix: sliding windows, a chain, FF fan-out, singles.
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3"), ("A4:B6", "C4")] {
            g.add_dependency(&d(p, c));
        }
        for c in ["E1", "E2", "E3"] {
            g.add_dependency(&d("C1:C4", c));
        }
        g.add_dependency(&d("E1", "E2")); // overlap with the FF dependents
        for row in 2..=40u32 {
            g.add_dependency(&Dependency::new(
                Range::cell(Cell::new(7, row - 1)),
                Cell::new(7, row),
            ));
        }
        g.add_dependency(&d("G40", "H1"));

        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        for probe in ["A1", "A3:B3", "C2", "E1", "G1", "G5:G9", "Z99", "A1:H40"] {
            let probe = r(probe);
            let (plain, plain_stats) = g.find_dependents_with_stats(probe);
            let stats = g.find_dependents_with_scratch(probe, &mut scratch, &mut out);
            assert_eq!(out, plain, "dependents({probe}) results diverge");
            assert_eq!(stats, plain_stats, "dependents({probe}) stats diverge");

            let (plain, plain_stats) = g.find_precedents_with_stats(probe);
            let stats = g.find_precedents_with_scratch(probe, &mut scratch, &mut out);
            assert_eq!(out, plain, "precedents({probe}) results diverge");
            assert_eq!(stats, plain_stats, "precedents({probe}) stats diverge");
        }
        // And the &mut-self reusing variants agree as well.
        let probe = r("A2");
        assert_eq!(g.find_dependents_reusing(probe), g.find_dependents(probe));
        assert_eq!(g.find_precedents_reusing(probe), g.find_precedents(probe));
    }

    /// Bulk-loaded (build / restore) and incrementally-grown graphs give
    /// identical query answers, and the build-time repack only tightens
    /// the index (never changes results).
    #[test]
    fn bulk_packed_and_incremental_graphs_agree() {
        let deps: Vec<Dependency> = (2..=60u32)
            .flat_map(|row| {
                [
                    Dependency::new(Range::from_coords(1, row - 1, 2, row + 1), Cell::new(3, row)),
                    Dependency::new(Range::cell(Cell::new(3, row)), Cell::new(4, row)),
                ]
            })
            .collect();
        // `build` repacks; the manual loop leaves the insertion-built tree.
        let packed = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let mut grown = FormulaGraph::taco();
        for d in &deps {
            grown.add_dependency(d);
        }
        assert_eq!(packed.num_edges(), grown.num_edges());
        // A restored graph is bulk-loaded too.
        let restored = FormulaGraph::restore(grown.snapshot());
        for probe in ["A1", "B30", "C10", "D59", "A1:B60"] {
            let probe = r(probe);
            assert_eq!(
                cells_of(&packed.find_dependents(probe)),
                cells_of(&grown.find_dependents(probe)),
                "dependents({probe})"
            );
            assert_eq!(
                cells_of(&restored.find_dependents(probe)),
                cells_of(&grown.find_dependents(probe)),
                "restored dependents({probe})"
            );
            assert_eq!(
                cells_of(&packed.find_precedents(probe)),
                cells_of(&grown.find_precedents(probe)),
                "precedents({probe})"
            );
        }
        // The packed index never visits more nodes than the grown one.
        for probe in ["A1", "C10", "A1:B60"] {
            let probe = r(probe);
            let (_, p) = packed.find_dependents_with_stats(probe);
            let (_, g) = grown.find_dependents_with_stats(probe);
            assert!(
                p.nodes_visited <= g.nodes_visited,
                "packed visited {} > grown {} on {probe}",
                p.nodes_visited,
                g.nodes_visited
            );
        }
    }
}
