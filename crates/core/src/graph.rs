//! The TACO framework (§IV): greedy compression (Alg. 2), the modified BFS
//! for querying the compressed graph directly (Alg. 3), and incremental
//! maintenance.

use crate::config::Config;
use crate::dep::Dependency;
use crate::edge::{Edge, EdgeId};
use crate::pattern::PatternType;
use crate::slab::Slab;
use crate::stats::{count_vertices, GraphStats, PatternCounts};
use std::collections::VecDeque;
use taco_grid::{Axis, Cell, Offset, Range};
use taco_rtree::RTree;

/// Instrumentation for one query (used by the complexity analysis benches
/// and the §IV-D edge-access discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of `(vertex, edge)` pairs examined during BFS.
    pub edges_accessed: u64,
    /// Number of ranges pushed into the BFS queue.
    pub enqueued: u64,
    /// Number of R-tree window searches issued.
    pub rtree_searches: u64,
}

/// A formula dependency graph, compressed according to a [`Config`].
///
/// With `Config::nocomp()` this is exactly the paper's NoComp baseline:
/// identical storage (adjacency arena + R-trees over the vertices),
/// identical BFS — only the compression step differs.
///
/// ```
/// use taco_core::{Dependency, FormulaGraph};
/// use taco_grid::{Cell, Range};
///
/// // C1=SUM(A1:B3), C2=SUM(A2:B4): an autofilled sliding window.
/// let mut g = FormulaGraph::taco();
/// g.add_dependency(&Dependency::new(
///     Range::parse_a1("A1:B3").unwrap(),
///     Cell::parse_a1("C1").unwrap(),
/// ));
/// g.add_dependency(&Dependency::new(
///     Range::parse_a1("A2:B4").unwrap(),
///     Cell::parse_a1("C2").unwrap(),
/// ));
/// assert_eq!(g.num_edges(), 1); // compressed into one RR edge
///
/// // Queried directly, without decompression:
/// let deps = g.find_dependents(Range::parse_a1("A2").unwrap());
/// assert_eq!(deps, vec![Range::parse_a1("C1:C2").unwrap()]);
/// ```
#[derive(Debug, Clone)]
pub struct FormulaGraph {
    config: Config,
    edges: Slab<Edge>,
    /// R-tree over precedent vertex ranges → edge id.
    prec_index: RTree<EdgeId>,
    /// R-tree over dependent vertex ranges → edge id.
    dep_index: RTree<EdgeId>,
    /// Total dependencies ever inserted (the paper's `|E'|` when the graph
    /// is built once from a parsed file).
    deps_inserted: u64,
}

impl FormulaGraph {
    /// Creates an empty graph with the given compressor configuration.
    pub fn new(config: Config) -> Self {
        FormulaGraph {
            config,
            edges: Slab::new(),
            prec_index: RTree::new(),
            dep_index: RTree::new(),
            deps_inserted: 0,
        }
    }

    /// Creates an empty graph with the full TACO configuration.
    pub fn taco() -> Self {
        Self::new(Config::taco_full())
    }

    /// Creates an empty uncompressed graph (the NoComp baseline).
    pub fn nocomp() -> Self {
        Self::new(Config::nocomp())
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of edges currently stored, `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.len() == 0
    }

    /// Iterates over the stored edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().map(|(_, e)| e)
    }

    /// Builds a graph by inserting every dependency in order.
    pub fn build<I: IntoIterator<Item = Dependency>>(config: Config, deps: I) -> Self {
        let mut g = FormulaGraph::new(config);
        for d in deps {
            g.add_dependency(&d);
        }
        g
    }

    // ---- compression (Alg. 2) ---------------------------------------------

    /// Compresses one dependency into the graph (Alg. 2, `addDep(G, e')`).
    pub fn add_dependency(&mut self, d: &Dependency) {
        self.deps_inserted += 1;
        self.compress_dependency(d);
    }

    /// The compression logic without touching the lifetime insert counter
    /// (used when re-inserting dependencies during structural edits).
    pub(crate) fn compress_dependency(&mut self, d: &Dependency) {
        if self.config.patterns.is_empty() {
            self.insert_edge(Edge::single(d));
            return;
        }

        // Step 1: find candidate edges — those whose dependent vertex is
        // adjacent to e'.dep along the column or row axis (shift the cell by
        // one in all four directions and consult the R-tree; gap patterns
        // extend the search radius to two).
        let mut candidates: Vec<EdgeId> = Vec::new();
        let radius = if self.config.has_gap_pattern() { 2 } else { 1 };
        for step in 1..=radius {
            for (dc, dr) in [(0, -step), (0, step), (-step, 0), (step, 0)] {
                if let Ok(shifted) = d.dep.offset(Offset::new(dc, dr)) {
                    self.dep_index
                        .for_each_overlapping(Range::cell(shifted), |_, &id| candidates.push(id));
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Step 2: find valid compressed edges (genCompEdges).
        let mut valid: Vec<(Edge, EdgeId)> = Vec::new();
        for &cand_id in &candidates {
            let cand = self.edges.get(cand_id);
            if cand.is_single() {
                for &p in &self.config.patterns {
                    for axis in [Axis::Col, Axis::Row] {
                        if let Some(new_edge) = cand.try_pair(d, p, axis) {
                            if self.config.allows(&new_edge.meta, axis) {
                                valid.push((new_edge, cand_id));
                            }
                        }
                    }
                }
            } else if let Some(new_edge) = cand.try_extend(d) {
                if self.config.allows(&new_edge.meta, new_edge.axis) {
                    valid.push((new_edge, cand_id));
                }
            }
        }

        // Step 3: select the final edge by the §IV-A heuristics:
        // column-wise first, then special patterns (RR-Chain ≺ RR), then
        // `$`-cue agreement, then pattern declaration order.
        let Some(best_idx) = self.select_best(&valid, d) else {
            self.insert_edge(Edge::single(d));
            return;
        };
        let (new_edge, old_id) = valid.swap_remove(best_idx);
        self.remove_edge(old_id);
        self.insert_edge(new_edge);
    }

    fn select_best(&self, valid: &[(Edge, EdgeId)], d: &Dependency) -> Option<usize> {
        valid
            .iter()
            .enumerate()
            .min_by_key(|(_, (e, _))| {
                let p = e.pattern();
                let axis_rank =
                    if self.config.column_priority && e.axis == Axis::Row { 1u8 } else { 0 };
                // Special-case patterns outrank their general forms.
                let special_rank =
                    if PatternType::ALL.iter().any(|&q| p.is_special_case_of(q)) { 0u8 } else { 1 };
                let cue_rank = if self.config.use_cues && p.matches_cue(d.cue) { 0u8 } else { 1 };
                let order_rank =
                    self.config.patterns.iter().position(|&q| q == p).unwrap_or(usize::MAX);
                // Prefer extending an existing compressed edge over pairing
                // two singles when otherwise tied (larger count first).
                let count_rank = u32::MAX - e.count;
                (axis_rank, special_rank, cue_rank, order_rank, count_rank)
            })
            .map(|(i, _)| i)
    }

    /// Snapshot of the live edge ids (structural edits iterate this).
    pub(crate) fn edge_ids(&self) -> Vec<EdgeId> {
        self.edges.iter().map(|(i, _)| i).collect()
    }

    /// Borrow an edge by id.
    pub(crate) fn peek_edge(&self, id: EdgeId) -> &Edge {
        self.edges.get(id)
    }

    /// Remove an edge (and its index entries) by id.
    pub(crate) fn take_edge(&mut self, id: EdgeId) -> Edge {
        self.remove_edge(id)
    }

    /// Insert a fully-formed edge without attempting compression.
    pub(crate) fn put_edge(&mut self, e: Edge) {
        self.insert_edge(e);
    }

    /// Restores the lifetime insert counter (snapshot restore).
    pub(crate) fn set_dependencies_inserted(&mut self, n: u64) {
        self.deps_inserted = n;
    }

    fn insert_edge(&mut self, e: Edge) -> EdgeId {
        let prec = e.prec;
        let dep = e.dep;
        let id = self.edges.insert(e);
        self.prec_index.insert(prec, id);
        self.dep_index.insert(dep, id);
        id
    }

    fn remove_edge(&mut self, id: EdgeId) -> Edge {
        let e = self.edges.remove(id);
        let removed_p = self.prec_index.remove(e.prec, &id);
        let removed_d = self.dep_index.remove(e.dep, &id);
        debug_assert!(removed_p && removed_d, "edge {id} must be indexed");
        e
    }

    // ---- querying (Alg. 3) --------------------------------------------------

    /// Finds all (direct and transitive) dependents of `r`, returned as
    /// disjoint ranges.
    pub fn find_dependents(&self, r: Range) -> Vec<Range> {
        self.find_dependents_with_stats(r).0
    }

    /// [`Self::find_dependents`] with query instrumentation.
    pub fn find_dependents_with_stats(&self, r: Range) -> (Vec<Range>, QueryStats) {
        self.bfs(r, Direction::Dependents)
    }

    /// Finds all (direct and transitive) precedents of `r`.
    pub fn find_precedents(&self, r: Range) -> Vec<Range> {
        self.find_precedents_with_stats(r).0
    }

    /// [`Self::find_precedents`] with query instrumentation.
    pub fn find_precedents_with_stats(&self, r: Range) -> (Vec<Range>, QueryStats) {
        self.bfs(r, Direction::Precedents)
    }

    fn bfs(&self, r: Range, dir: Direction) -> (Vec<Range>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut result: Vec<Range> = Vec::new();
        // R-tree over the visited ranges for the not-yet-contained check.
        let mut visited: RTree<()> = RTree::new();
        let mut queue: VecDeque<Range> = VecDeque::new();
        queue.push_back(r);

        // Reused scratch buffers (hot loop: avoid re-allocating per step).
        let mut hits: Vec<(Range, EdgeId)> = Vec::new();
        let mut covers: Vec<Range> = Vec::new();

        while let Some(to_visit) = queue.pop_front() {
            let index = match dir {
                Direction::Dependents => &self.prec_index,
                Direction::Precedents => &self.dep_index,
            };
            stats.rtree_searches += 1;
            hits.clear();
            index.for_each_overlapping(to_visit, |vr, &id| hits.push((vr, id)));
            for &(vertex_range, id) in &hits {
                stats.edges_accessed += 1;
                let e = self.edges.get(id);
                // findDep/findPrec require the probe to be contained in the
                // edge's vertex: intersect first.
                let probe = to_visit
                    .intersect(&vertex_range)
                    .expect("R-tree returned an overlapping vertex");
                let found = match dir {
                    Direction::Dependents => e.find_dep(probe),
                    Direction::Precedents => e.find_prec(probe),
                };
                for f in found {
                    // Subtract the already-visited subset (via the R-tree on
                    // the result set), keep the new parts.
                    covers.clear();
                    visited.for_each_overlapping(f, |c, _| covers.push(c));
                    for new_range in f.subtract_all(covers.iter()) {
                        visited.insert(new_range, ());
                        result.push(new_range);
                        queue.push_back(new_range);
                        stats.enqueued += 1;
                    }
                }
            }
        }
        (result, stats)
    }

    // ---- maintenance (§IV-C) -------------------------------------------------

    /// Clears the dependencies of all formula cells inside `s`: every edge
    /// whose dependent overlaps `s` loses the overlapping part
    /// (`removeDep`). Pure-value cells in `s` are unaffected (they carry no
    /// outgoing-formula edges).
    pub fn clear_cells(&mut self, s: Range) {
        let mut ids: Vec<EdgeId> = Vec::new();
        self.dep_index.for_each_overlapping(s, |_, &id| ids.push(id));
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let e = self.remove_edge(id);
            for part in e.remove_dep(s) {
                self.insert_edge(part);
            }
        }
    }

    /// Replaces the dependencies of the formula cell `cell`: clears its old
    /// ones, then compresses the new ones in (update = clear + insert).
    pub fn update_cell(&mut self, cell: Cell, new_precs: &[Dependency]) {
        self.clear_cells(Range::cell(cell));
        for d in new_precs {
            debug_assert_eq!(d.dep, cell);
            self.add_dependency(d);
        }
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.prec_index.clear();
        self.dep_index.clear();
        self.deps_inserted = 0;
    }

    // ---- stats -----------------------------------------------------------------

    /// Snapshot of graph size and per-pattern compression effectiveness.
    pub fn stats(&self) -> GraphStats {
        let mut reduced = PatternCounts::default();
        let mut dependencies = 0u64;
        for (_, e) in self.edges.iter() {
            dependencies += u64::from(e.count);
            reduced.add(e.pattern(), u64::from(e.count) - 1);
        }
        GraphStats {
            edges: self.edges.len(),
            vertices: count_vertices(self.edges.iter().map(|(_, e)| e)),
            dependencies,
            reduced,
        }
    }

    /// Total dependencies inserted over the graph's lifetime (`|E'|` for a
    /// build-once graph).
    pub fn dependencies_inserted(&self) -> u64 {
        self.deps_inserted
    }

    /// Expands every compressed edge back into raw dependencies (testing /
    /// verification; O(|E'|)).
    pub fn decompress_all(&self) -> Vec<Dependency> {
        let mut out = Vec::new();
        for (_, e) in self.edges.iter() {
            out.extend(e.decompress());
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Dependents,
    Precedents,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(r(prec), Cell::parse_a1(dep).unwrap())
    }

    /// Sorts ranges for order-insensitive comparison.
    fn sorted(mut v: Vec<Range>) -> Vec<Range> {
        v.sort();
        v
    }

    /// The total cell area of a range list (ranges must be disjoint).
    fn area(v: &[Range]) -> u64 {
        v.iter().map(Range::area).sum()
    }

    #[test]
    fn fig3_uncompressed_graph() {
        // Fig. 3: B1=SUM(A1:A3), B2=SUM(A1:A3), C1=B1+B3, C2=AVG(B2:B3).
        let mut g = FormulaGraph::nocomp();
        g.add_dependency(&d("A1:A3", "B1"));
        g.add_dependency(&d("A1:A3", "B2"));
        g.add_dependency(&d("B1", "C1"));
        g.add_dependency(&d("B3", "C1"));
        g.add_dependency(&d("B2:B3", "C2"));
        assert_eq!(g.num_edges(), 5);

        // Dependents of A1 = {B1, B2, C1, C2} (paper's example).
        let deps = g.find_dependents(r("A1"));
        assert_eq!(area(&deps), 4);
        for cell in ["B1", "B2", "C1", "C2"] {
            assert!(deps.iter().any(|x| x.contains(&r(cell))), "missing {cell}");
        }
    }

    #[test]
    fn fig4a_compresses_to_one_edge() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1:B3", "C1"));
        g.add_dependency(&d("A2:B4", "C2"));
        g.add_dependency(&d("A3:B5", "C3"));
        g.add_dependency(&d("A4:B6", "C4"));
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::RR);
        assert_eq!(e.prec, r("A1:B6"));
        assert_eq!(e.dep, r("C1:C4"));
        assert_eq!(e.count, 4);
    }

    #[test]
    fn fig4_all_patterns_compress() {
        // 4b RF.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B4", "C1"), ("A2:B4", "C2"), ("A3:B4", "C3"), ("A4:B4", "C4")] {
            g.add_dependency(&d(p, c));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RF);

        // 4c FR.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B1", "C1"), ("A1:B2", "C2"), ("A1:B3", "C3")] {
            g.add_dependency(&d(p, c));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::FR);

        // 4d FF.
        let mut g = FormulaGraph::taco();
        for c in ["C1", "C2", "C3"] {
            g.add_dependency(&d("A1:B3", c));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::FF);
    }

    #[test]
    fn fig9_chain_pattern_selected_over_rr() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1", "A2"));
        g.add_dependency(&d("A2", "A3"));
        g.add_dependency(&d("A3", "A4"));
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.pattern(), PatternType::RRChain);
        assert_eq!(e.prec, r("A1:A3"));
        assert_eq!(e.dep, r("A2:A4"));
    }

    #[test]
    fn chain_query_single_pass() {
        // 1000-cell chain: dependents of the head must be found with few
        // edge accesses thanks to the transitive findDep.
        let mut g = FormulaGraph::taco();
        for row in 2..=1000u32 {
            g.add_dependency(&Dependency::new(
                Range::cell(Cell::new(1, row - 1)),
                Cell::new(1, row),
            ));
        }
        assert_eq!(g.num_edges(), 1);
        let (deps, stats) = g.find_dependents_with_stats(r("A1"));
        assert_eq!(area(&deps), 999);
        assert!(
            stats.edges_accessed <= 4,
            "chain should resolve transitively, got {} accesses",
            stats.edges_accessed
        );
    }

    #[test]
    fn rr_without_chain_config_uses_rr() {
        let mut g = FormulaGraph::new(Config::taco_without(PatternType::RRChain));
        g.add_dependency(&d("A1", "A2"));
        g.add_dependency(&d("A2", "A3"));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RR);
    }

    #[test]
    fn fig8_insert_into_existing_column_edge() {
        // Setup of Fig. 8: C1:C3 reference $B$1:Bi (FR) and A1 (FF);
        // D4 references B1:B4 (single). Insert SUM($B$1:B4)*? at C4: its
        // B-reference must extend the FR edge column-wise.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("B1", "C1"), ("B1:B2", "C2"), ("B1:B3", "C3")] {
            let mut dep = d(p, c);
            dep.cue = crate::Cue { head_fixed: true, tail_fixed: false };
            g.add_dependency(&dep);
        }
        for c in ["C1", "C2", "C3"] {
            g.add_dependency(&d("A1", c));
        }
        g.add_dependency(&d("B1:B4", "D4"));
        assert_eq!(g.num_edges(), 3);

        // The insert at C4.
        let mut new_dep = d("B1:B4", "C4");
        new_dep.cue = crate::Cue { head_fixed: true, tail_fixed: false };
        g.add_dependency(&new_dep);
        assert_eq!(g.num_edges(), 3);

        // The FR edge must now cover C1:C4 (column-wise compression chosen
        // over pairing with D4 row-wise).
        let fr = g.edges().find(|e| e.pattern() == PatternType::FR).unwrap();
        assert_eq!(fr.dep, r("C1:C4"));
        assert_eq!(fr.prec, r("B1:B4"));
        // D4 stays single.
        assert!(g.edges().any(|e| e.is_single() && e.dep == r("D4")));
    }

    #[test]
    fn query_compressed_graph_fig8() {
        // Step-3 graph of Fig. 8; find dependents of B2 — paper expects
        // C2:C4 from the FR edge (C1 does not depend on B2) plus D4.
        let mut g = FormulaGraph::taco();
        for (p, c) in [("B1", "C1"), ("B1:B2", "C2"), ("B1:B3", "C3"), ("B1:B4", "C4")] {
            g.add_dependency(&d(p, c));
        }
        g.add_dependency(&d("B1:B4", "D4"));
        let deps = g.find_dependents(r("B2"));
        assert_eq!(area(&deps), 4);
        assert!(deps.iter().any(|x| x.contains(&r("C2"))));
        assert!(deps.iter().any(|x| x.contains(&r("C4"))));
        assert!(deps.iter().any(|x| x.contains(&r("D4"))));
        assert!(!deps.iter().any(|x| x.contains(&r("C1"))));
    }

    #[test]
    fn transitive_dependents_across_edges() {
        // A1 → B1:B3 (three formulae), B1:B3 → C1 (SUM).
        let mut g = FormulaGraph::taco();
        for c in ["B1", "B2", "B3"] {
            g.add_dependency(&d("A1", c));
        }
        g.add_dependency(&d("B1:B3", "C1"));
        let deps = g.find_dependents(r("A1"));
        assert_eq!(area(&deps), 4); // B1,B2,B3,C1
    }

    #[test]
    fn find_precedents_dual() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1:B3", "C1"));
        g.add_dependency(&d("A2:B4", "C2"));
        g.add_dependency(&d("C1:C2", "D1"));
        let precs = g.find_precedents(r("D1"));
        // C1:C2 directly; A1:B4 transitively.
        assert!(precs.iter().any(|x| x.contains(&r("C1"))));
        assert!(precs.iter().any(|x| x.contains(&r("A1"))));
        assert!(precs.iter().any(|x| x.contains(&r("B4"))));
        assert_eq!(area(&precs), 2 + 8);
    }

    #[test]
    fn no_dependents_returns_empty() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1", "B1"));
        assert!(g.find_dependents(r("Z99")).is_empty());
        assert!(g.find_precedents(r("A1")).is_empty());
    }

    #[test]
    fn clear_cells_splits_compressed_edge() {
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3"), ("A4:B6", "C4")] {
            g.add_dependency(&d(p, c));
        }
        assert_eq!(g.num_edges(), 1);
        g.clear_cells(r("C2"));
        assert_eq!(g.num_edges(), 2);
        let deps = sorted(g.edges().map(|e| e.dep).collect());
        assert_eq!(deps, vec![r("C1"), r("C3:C4")]);
        // Dependents of A4 must no longer include C2.
        let found = g.find_dependents(r("A4"));
        assert!(!found.iter().any(|x| x.contains(&r("C2"))));
        assert!(found.iter().any(|x| x.contains(&r("C3"))));
    }

    #[test]
    fn clear_then_reinsert_recompresses() {
        let mut g = FormulaGraph::taco();
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3")] {
            g.add_dependency(&d(p, c));
        }
        g.clear_cells(r("C2"));
        assert_eq!(g.num_edges(), 2);
        g.add_dependency(&d("A2:B4", "C2"));
        // The re-inserted dependency can merge back into a neighbour edge.
        assert!(g.num_edges() <= 2);
        let all = g.find_dependents(r("A3"));
        assert_eq!(area(&all), 3); // C1,C2,C3 all reference A3
    }

    #[test]
    fn update_cell_replaces_dependencies() {
        let mut g = FormulaGraph::taco();
        g.add_dependency(&d("A1", "B1"));
        g.update_cell(Cell::parse_a1("B1").unwrap(), &[d("A2", "B1"), d("A3", "B1")]);
        assert!(g.find_dependents(r("A1")).is_empty());
        assert_eq!(area(&g.find_dependents(r("A2"))), 1);
        assert_eq!(area(&g.find_dependents(r("A3"))), 1);
    }

    #[test]
    fn nocomp_and_taco_agree_on_queries() {
        // Build the same messy sheet both ways; answers must be identical
        // cell sets (lossless compression).
        let deps = [
            d("A1:B3", "C1"),
            d("A2:B4", "C2"),
            d("A3:B5", "C3"),
            d("A1", "D1"),
            d("A1", "D2"),
            d("A1", "D3"),
            d("C1:C3", "E1"),
            d("D1:D3", "E2"),
            d("E1", "F1"),
            d("F1", "F2"),
            d("F2", "F3"),
        ];
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        assert!(taco.num_edges() < nocomp.num_edges());

        for probe in ["A1", "A2", "B3", "C2", "D2", "E1", "F1", "A1:B5"] {
            let a = cells_of(&taco.find_dependents(r(probe)));
            let b = cells_of(&nocomp.find_dependents(r(probe)));
            assert_eq!(a, b, "dependents({probe}) disagree");
            let a = cells_of(&taco.find_precedents(r(probe)));
            let b = cells_of(&nocomp.find_precedents(r(probe)));
            assert_eq!(a, b, "precedents({probe}) disagree");
        }
    }

    #[test]
    fn stats_account_per_pattern() {
        let mut g = FormulaGraph::taco();
        // RR run of 4 (reduces 3).
        for (p, c) in [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3"), ("A4:B6", "C4")] {
            g.add_dependency(&d(p, c));
        }
        // FF run of 3 (reduces 2).
        for c in ["E1", "E2", "E3"] {
            g.add_dependency(&d("G1:G9", c));
        }
        // One single.
        g.add_dependency(&d("H1", "I1"));
        let s = g.stats();
        assert_eq!(s.edges, 3);
        assert_eq!(s.dependencies, 8);
        assert_eq!(s.reduced.rr, 3);
        assert_eq!(s.reduced.ff, 2);
        assert_eq!(s.edges_reduced(), 5);
        assert!((s.remaining_fraction() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(g.dependencies_inserted(), 8);
    }

    #[test]
    fn decompress_all_round_trips() {
        let deps = vec![
            d("A1:B3", "C1"),
            d("A2:B4", "C2"),
            d("A3:B5", "C3"),
            d("G1:G9", "E1"),
            d("G1:G9", "E2"),
            d("H1", "I1"),
        ];
        let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let mut got: Vec<(Range, Cell)> =
            g.decompress_all().into_iter().map(|x| (x.prec, x.dep)).collect();
        let mut want: Vec<(Range, Cell)> = deps.into_iter().map(|x| (x.prec, x.dep)).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn in_row_config_only_compresses_same_row_refs() {
        let mut g = FormulaGraph::new(Config::taco_in_row());
        // Derived column: Bi = Ai * 2 — same-row references, compresses.
        for row in 1..=5u32 {
            g.add_dependency(&Dependency::new(Range::cell(Cell::new(1, row)), Cell::new(2, row)));
        }
        // Sliding windows (cross-row): must NOT compress under InRow.
        for (p, c) in [("D1:D3", "E2"), ("D2:D4", "E3"), ("D3:D5", "E4")] {
            g.add_dependency(&d(p, c));
        }
        let s = g.stats();
        assert_eq!(s.reduced.rr, 4);
        assert_eq!(s.edges, 1 + 3);
    }

    #[test]
    fn row_axis_compression_works() {
        // Formulae along row 10, each referencing the three cells above.
        let mut g = FormulaGraph::taco();
        for col in 1..=6u32 {
            g.add_dependency(&Dependency::new(
                Range::new(Cell::new(col, 7), Cell::new(col, 9)),
                Cell::new(col, 10),
            ));
        }
        assert_eq!(g.num_edges(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(e.axis, Axis::Row);
        assert_eq!(e.count, 6);
        // Query still works.
        let deps = g.find_dependents(Range::cell(Cell::new(3, 8)));
        assert_eq!(deps, vec![Range::cell(Cell::new(3, 10))]);
    }

    #[test]
    fn gap_one_compresses_when_enabled() {
        let mut g = FormulaGraph::new(Config::taco_with_gap_one());
        // Formulae at C1, C3, C5 referencing the cell to the left.
        for row in [1u32, 3, 5] {
            g.add_dependency(&Dependency::new(Range::cell(Cell::new(2, row)), Cell::new(3, row)));
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RRGapOne);
        // Dependents of B3 = C3 only.
        let deps = g.find_dependents(Range::cell(Cell::new(2, 3)));
        assert_eq!(deps, vec![Range::cell(Cell::new(3, 3))]);
        // B2 (a gap row) has no dependents.
        assert!(g.find_dependents(Range::cell(Cell::new(2, 2))).is_empty());
    }

    #[test]
    fn self_overlapping_rr_terminates() {
        // The Fig. 2 shape: N-column formulae reference the N column itself
        // (Ni depends on N(i-1)); prec and dep bounding ranges overlap.
        let mut g = FormulaGraph::taco();
        for row in 3..=50u32 {
            // N col = 14, M col = 13, A col = 1.
            g.add_dependency(&Dependency::new(
                Range::new(Cell::new(1, row - 1), Cell::new(1, row)),
                Cell::new(14, row),
            ));
            g.add_dependency(&Dependency::new(Range::cell(Cell::new(13, row)), Cell::new(14, row)));
            g.add_dependency(&Dependency::new(
                Range::cell(Cell::new(14, row - 1)),
                Cell::new(14, row),
            ));
        }
        let s = g.stats();
        assert!(s.edges <= 6, "Fig. 2 compresses to a handful of edges, got {}", s.edges);
        // Updating A10 must reach every N-row at or below 10.
        let deps = g.find_dependents(Range::cell(Cell::new(1, 10)));
        let total: u64 = deps.iter().map(Range::area).sum();
        assert_eq!(total, 41);
    }

    fn cells_of(ranges: &[Range]) -> std::collections::BTreeSet<Cell> {
        ranges.iter().flat_map(|r| r.cells()).collect()
    }
}
