//! The compression patterns and their four key functions (§III).
//!
//! Everything in this module operates in **canonical coordinates**: the
//! dependent cells form a vertical run (one column, consecutive rows), the
//! column-axis case of the paper. The row-wise case is obtained by the
//! caller ([`crate::edge`]) transposing ranges on the way in and out — the
//! paper's "derived symmetrically".
//!
//! Per §II-B, for a set of edges of arbitrary size a pattern is a
//! constant-size representation that can reconstruct the set, and finding
//! direct dependents/precedents within it must be constant-time. All
//! functions here are O(1) except those of the exploratory RR-GapOne
//! pattern, whose results cannot be expressed as a single rectangle.

use serde::{Deserialize, Serialize};
use taco_grid::{Cell, Offset, Range};

/// The pattern tag of a (compressed) edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternType {
    /// An uncompressed edge (a single dependency).
    Single,
    /// Relative head + relative tail — the sliding window (Fig. 4a).
    RR,
    /// Relative head + fixed tail — the shrinking window (Fig. 4b).
    RF,
    /// Fixed head + relative tail — the expanding window (Fig. 4c),
    /// e.g. cumulative totals.
    FR,
    /// Fixed head + fixed tail — point/range lookups (Fig. 4d).
    FF,
    /// The §V extension: a chain where each formula references its adjacent
    /// cell above/below. A special case of RR whose `findDep`/`findPrec`
    /// return the whole downstream/upstream chain segment in one step.
    RRChain,
    /// Exploratory pattern from §V's limitations discussion: RR applied to
    /// the formula cells of every other row.
    RRGapOne,
}

impl PatternType {
    /// All compressible patterns (everything but `Single`), in the priority
    /// order the greedy compressor tries them.
    pub const ALL: [PatternType; 6] = [
        PatternType::RRChain,
        PatternType::RR,
        PatternType::RF,
        PatternType::FR,
        PatternType::FF,
        PatternType::RRGapOne,
    ];

    /// `true` iff `self` is a special case of `other` (the §IV heuristic
    /// prefers the special pattern: RR-Chain over RR).
    pub fn is_special_case_of(self, other: PatternType) -> bool {
        matches!((self, other), (PatternType::RRChain, PatternType::RR))
    }

    /// `true` iff the `$`-marker cue of a reference is consistent with this
    /// pattern (used by the final-edge-selection heuristic).
    pub fn matches_cue(self, cue: crate::Cue) -> bool {
        match self {
            PatternType::Single => false,
            PatternType::RR | PatternType::RRChain | PatternType::RRGapOne => {
                !cue.head_fixed && !cue.tail_fixed
            }
            PatternType::RF => !cue.head_fixed && cue.tail_fixed,
            PatternType::FR => cue.head_fixed && !cue.tail_fixed,
            PatternType::FF => cue.head_fixed && cue.tail_fixed,
        }
    }
}

/// Direction of an RR-Chain: which adjacent cell each formula references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChainDir {
    /// Each formula references the cell directly above it (canonical
    /// coordinates), like `A2=A1+1` filled downward.
    Above,
    /// Each formula references the cell directly below it.
    Below,
}

impl ChainDir {
    /// The relative position of the referenced cell.
    pub fn rel(self) -> Offset {
        match self {
            ChainDir::Above => Offset::new(0, -1),
            ChainDir::Below => Offset::new(0, 1),
        }
    }
}

/// The `meta` component of a compressed edge (§II-B): the constant-size
/// pattern information that reconstructs the compressed dependencies.
/// Offsets/cells are stored in canonical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternMeta {
    /// No metadata: the edge is a single dependency.
    Single,
    /// `hRel` + `tRel`.
    RR {
        /// Relative position of the precedent's head w.r.t. the dependent.
        h_rel: Offset,
        /// Relative position of the precedent's tail w.r.t. the dependent.
        t_rel: Offset,
    },
    /// `hRel` + `tFix`.
    RF {
        /// Relative position of the precedent's head w.r.t. the dependent.
        h_rel: Offset,
        /// The fixed tail cell every dependency references.
        t_fix: Cell,
    },
    /// `hFix` + `tRel`.
    FR {
        /// The fixed head cell every dependency references.
        h_fix: Cell,
        /// Relative position of the precedent's tail w.r.t. the dependent.
        t_rel: Offset,
    },
    /// `hFix` + `tFix`.
    FF {
        /// The fixed head cell every dependency references.
        h_fix: Cell,
        /// The fixed tail cell every dependency references.
        t_fix: Cell,
    },
    /// Chain direction (`l` in Fig. 9); `hRel = tRel = dir.rel()`.
    RRChain {
        /// Whether formulae reference the cell above or below.
        dir: ChainDir,
    },
    /// Like RR, but dependents occupy every other row of the dependent
    /// bounding range (rows with even distance from its head).
    RRGapOne {
        /// Relative position of the precedent's head w.r.t. the dependent.
        h_rel: Offset,
        /// Relative position of the precedent's tail w.r.t. the dependent.
        t_rel: Offset,
    },
}

impl PatternMeta {
    /// The pattern tag for this metadata.
    pub fn pattern_type(&self) -> PatternType {
        match self {
            PatternMeta::Single => PatternType::Single,
            PatternMeta::RR { .. } => PatternType::RR,
            PatternMeta::RF { .. } => PatternType::RF,
            PatternMeta::FR { .. } => PatternType::FR,
            PatternMeta::FF { .. } => PatternType::FF,
            PatternMeta::RRChain { .. } => PatternType::RRChain,
            PatternMeta::RRGapOne { .. } => PatternType::RRGapOne,
        }
    }
}

/// One dependency in canonical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CanonDep {
    pub prec: Range,
    pub dep: Cell,
}

/// The constituent parts of an edge produced by `remove_dep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CanonParts {
    pub prec: Range,
    pub dep: Range,
    pub meta: PatternMeta,
    pub count: u32,
}

/// The paper's `rel(e)` procedure (Alg. 1 lines 9–12): relative positions
/// of the precedent's head and tail w.r.t. the dependent cell.
pub(crate) fn rel(prec: Range, dep: Cell) -> (Offset, Offset) {
    (prec.head().offset_from(dep), prec.tail().offset_from(dep))
}

/// Number of dependencies a canonical edge with this meta and dependent
/// run represents.
pub(crate) fn count_for(meta: &PatternMeta, dep: Range) -> u32 {
    match meta {
        PatternMeta::RRGapOne { .. } => dep.height().div_ceil(2),
        PatternMeta::Single => 1,
        _ => dep.height(),
    }
}

/// Checks whether two *single* dependencies whose dependent cells sit in
/// the same column can be compressed with `pattern`, and returns the
/// resulting metadata. `a` and `b` may be in either vertical order.
///
/// Adjacency requirements: row distance 1 for all patterns except
/// RR-GapOne, which requires distance 2.
pub(crate) fn pair_meta(pattern: PatternType, a: &CanonDep, b: &CanonDep) -> Option<PatternMeta> {
    if a.dep.col != b.dep.col {
        return None;
    }
    let gap = a.dep.row.abs_diff(b.dep.row);
    let need_gap = if pattern == PatternType::RRGapOne { 2 } else { 1 };
    if gap != need_gap {
        return None;
    }
    let (ha, ta) = rel(a.prec, a.dep);
    let (hb, tb) = rel(b.prec, b.dep);
    match pattern {
        PatternType::Single => None,
        PatternType::RR => {
            ((ha, ta) == (hb, tb)).then_some(PatternMeta::RR { h_rel: ha, t_rel: ta })
        }
        PatternType::RRGapOne => {
            ((ha, ta) == (hb, tb)).then_some(PatternMeta::RRGapOne { h_rel: ha, t_rel: ta })
        }
        PatternType::RF => (ha == hb && a.prec.tail() == b.prec.tail())
            .then_some(PatternMeta::RF { h_rel: ha, t_fix: a.prec.tail() }),
        PatternType::FR => (ta == tb && a.prec.head() == b.prec.head())
            .then_some(PatternMeta::FR { h_fix: a.prec.head(), t_rel: ta }),
        PatternType::FF => (a.prec == b.prec)
            .then_some(PatternMeta::FF { h_fix: a.prec.head(), t_fix: a.prec.tail() }),
        PatternType::RRChain => {
            let dir = chain_dir(a)?;
            (chain_dir(b) == Some(dir)).then_some(PatternMeta::RRChain { dir })
        }
    }
}

/// If `d` is chain-shaped (references the single cell directly above or
/// below itself), the chain direction.
fn chain_dir(d: &CanonDep) -> Option<ChainDir> {
    if !d.prec.is_cell() || d.prec.head().col != d.dep.col {
        return None;
    }
    let dr = i64::from(d.prec.head().row) - i64::from(d.dep.row);
    match dr {
        -1 => Some(ChainDir::Above),
        1 => Some(ChainDir::Below),
        _ => None,
    }
}

/// The paper's `addDep(e, e')` condition for extending an already
/// compressed edge with one more dependency: the new dependent cell must
/// extend the run at one end, and the dependency must match the metadata.
pub(crate) fn can_extend(meta: &PatternMeta, dep_run: Range, d: &CanonDep) -> bool {
    debug_assert_eq!(dep_run.width(), 1, "canonical dependent runs are single-column");
    if d.dep.col != dep_run.head().col {
        return false;
    }
    let step = if matches!(meta, PatternMeta::RRGapOne { .. }) { 2 } else { 1 };
    let extends = i64::from(d.dep.row) == i64::from(dep_run.head().row) - step
        || i64::from(d.dep.row) == i64::from(dep_run.tail().row) + step;
    if !extends {
        return false;
    }
    let (h, t) = rel(d.prec, d.dep);
    match meta {
        PatternMeta::Single => false,
        PatternMeta::RR { h_rel, t_rel } | PatternMeta::RRGapOne { h_rel, t_rel } => {
            h == *h_rel && t == *t_rel
        }
        PatternMeta::RF { h_rel, t_fix } => h == *h_rel && d.prec.tail() == *t_fix,
        PatternMeta::FR { h_fix, t_rel } => d.prec.head() == *h_fix && t == *t_rel,
        PatternMeta::FF { h_fix, t_fix } => d.prec.head() == *h_fix && d.prec.tail() == *t_fix,
        PatternMeta::RRChain { dir } => chain_dir(d) == Some(*dir),
    }
}

/// Intersects a signed row interval with a range's rows and rebuilds the
/// single-column result in the range's column.
fn clamp_rows(col: u32, lo: i64, hi: i64, within: Range) -> Option<Range> {
    let lo = lo.max(i64::from(within.head().row));
    let hi = hi.min(i64::from(within.tail().row));
    if lo > hi {
        return None;
    }
    Some(Range::from_coords(col, lo as u32, col, hi as u32))
}

/// `findDep(e, r)`: the dependents of `r` within the edge, where `r` is
/// contained in (or at least intersected with) `e.prec`.
///
/// Returns zero or more disjoint ranges; every pattern except RR-GapOne
/// yields at most one.
#[cfg(test)]
pub(crate) fn find_dep(meta: &PatternMeta, prec: Range, dep: Range, r: Range) -> Vec<Range> {
    let mut out = Vec::new();
    find_dep_into(meta, prec, dep, r, &mut out);
    out
}

/// [`find_dep`] appending to a caller-owned buffer (the BFS hot path —
/// no per-call allocation).
pub(crate) fn find_dep_into(
    meta: &PatternMeta,
    prec: Range,
    dep: Range,
    r: Range,
    out: &mut Vec<Range>,
) {
    debug_assert!(prec.contains(&r), "findDep requires r ⊆ e.prec");
    let col = dep.head().col;
    let found = match meta {
        PatternMeta::Single => Some(dep),
        PatternMeta::RR { h_rel, t_rel } => {
            // Back-calculate (Fig. 6): the head dependent's precedent tail
            // lies in r's top row and in prec's right-most column; the tail
            // dependent's precedent head lies in r's bottom row / prec's
            // left-most column.
            let dh_row = i64::from(r.head().row) - t_rel.dr;
            let dt_row = i64::from(r.tail().row) - h_rel.dr;
            clamp_rows(col, dh_row, dt_row, dep)
        }
        PatternMeta::RF { h_rel, .. } => {
            // Fig. 7: e.dep.head references all of e.prec, so it is the head
            // dependent of any r; windows shrink moving down.
            let dt_row = i64::from(r.tail().row) - h_rel.dr;
            clamp_rows(col, i64::from(dep.head().row), dt_row, dep)
        }
        PatternMeta::FR { t_rel, .. } => {
            // Dual of RF: e.dep.tail references all of e.prec.
            let dh_row = i64::from(r.head().row) - t_rel.dr;
            clamp_rows(col, dh_row, i64::from(dep.tail().row), dep)
        }
        PatternMeta::FF { .. } => Some(dep),
        PatternMeta::RRChain { dir } => match dir {
            // Transitive within the chain (Fig. 9): everything downstream of
            // r.head's direct dependent.
            ChainDir::Above => {
                clamp_rows(col, i64::from(r.head().row) + 1, i64::from(dep.tail().row), dep)
            }
            ChainDir::Below => {
                clamp_rows(col, i64::from(dep.head().row), i64::from(r.tail().row) - 1, dep)
            }
        },
        PatternMeta::RRGapOne { h_rel, t_rel } => {
            // RR row math, then keep only the parity rows that actually
            // hold dependents.
            let dh_row = i64::from(r.head().row) - t_rel.dr;
            let dt_row = i64::from(r.tail().row) - h_rel.dr;
            let Some(bounds) = clamp_rows(col, dh_row, dt_row, dep) else {
                return;
            };
            out.extend(parity_rows(dep, bounds).map(|row| Range::cell(Cell::new(col, row))));
            return;
        }
    };
    out.extend(found);
}

/// `findPrec(e, s)`: the precedents of `s` within the edge, where `s` is
/// contained in `e.dep`.
pub(crate) fn find_prec(meta: &PatternMeta, prec: Range, dep: Range, s: Range) -> Vec<Range> {
    let mut out = Vec::new();
    find_prec_into(meta, prec, dep, s, &mut out);
    out
}

/// [`find_prec`] appending to a caller-owned buffer.
pub(crate) fn find_prec_into(
    meta: &PatternMeta,
    prec: Range,
    dep: Range,
    s: Range,
    out: &mut Vec<Range>,
) {
    debug_assert!(dep.contains(&s), "findPrec requires s ⊆ e.dep");
    let found = match meta {
        PatternMeta::Single => Some(prec),
        PatternMeta::RR { h_rel, t_rel } => {
            // Union of sliding windows: head of s.head's precedent through
            // tail of s.tail's precedent.
            Some(Range::new(s.head().offset_saturating(*h_rel), s.tail().offset_saturating(*t_rel)))
        }
        PatternMeta::RF { h_rel, t_fix } => {
            // s.head's precedent contains all others (shrinking windows).
            Some(Range::new(s.head().offset_saturating(*h_rel), *t_fix))
        }
        PatternMeta::FR { h_fix, t_rel } => {
            // s.tail's precedent contains all others (expanding windows).
            Some(Range::new(*h_fix, s.tail().offset_saturating(*t_rel)))
        }
        PatternMeta::FF { h_fix, t_fix } => Some(Range::new(*h_fix, *t_fix)),
        PatternMeta::RRChain { dir } => {
            let col = prec.head().col;
            match dir {
                // Transitive upstream chain segment.
                ChainDir::Above => {
                    clamp_rows(col, i64::from(prec.head().row), i64::from(s.tail().row) - 1, prec)
                }
                ChainDir::Below => {
                    clamp_rows(col, i64::from(s.head().row) + 1, i64::from(prec.tail().row), prec)
                }
            }
        }
        PatternMeta::RRGapOne { h_rel, t_rel } => {
            out.extend(parity_rows(dep, s).map(|row| {
                let d = Cell::new(dep.head().col, row);
                Range::new(d.offset_saturating(*h_rel), d.offset_saturating(*t_rel))
            }));
            return;
        }
    };
    out.extend(found);
}

/// Rows of `within` that carry dependents of a gap-one edge whose
/// dependent bounding range is `dep`.
fn parity_rows(dep: Range, within: Range) -> impl Iterator<Item = u32> {
    let base = dep.head().row;
    let (lo, hi) = (within.head().row, within.tail().row);
    // First parity row >= lo.
    let start = if (lo - base).is_multiple_of(2) { lo } else { lo + 1 };
    (start..=hi).step_by(2)
}

/// The structural precedent of a sub-run `seg` of an edge's dependents —
/// the exact bounding precedent the new (smaller) edge must carry. Unlike
/// `find_prec`, chains use the *direct* reference here (shifting by one),
/// not the transitive closure, because we are rebuilding edge structure.
fn seg_prec(meta: &PatternMeta, seg: Range) -> Range {
    match meta {
        PatternMeta::Single => unreachable!("single edges are removed whole"),
        PatternMeta::RR { h_rel, t_rel } | PatternMeta::RRGapOne { h_rel, t_rel } => {
            Range::new(seg.head().offset_saturating(*h_rel), seg.tail().offset_saturating(*t_rel))
        }
        PatternMeta::RF { h_rel, t_fix } => {
            Range::new(seg.head().offset_saturating(*h_rel), *t_fix)
        }
        PatternMeta::FR { h_fix, t_rel } => {
            Range::new(*h_fix, seg.tail().offset_saturating(*t_rel))
        }
        PatternMeta::FF { h_fix, t_fix } => Range::new(*h_fix, *t_fix),
        PatternMeta::RRChain { dir } => {
            let rel = dir.rel();
            Range::new(seg.head().offset_saturating(rel), seg.tail().offset_saturating(rel))
        }
    }
}

/// `removeDep(e, s)`: removes the dependencies for the formula cells `s`
/// from the edge and returns the edges reconstructing the remainder
/// (Alg. 1 lines 23–30). `s` need not be contained in `e.dep`; only the
/// overlap is removed. An empty result means the whole edge disappears.
pub(crate) fn remove_dep(meta: &PatternMeta, prec: Range, dep: Range, s: Range) -> Vec<CanonParts> {
    let Some(cut) = dep.intersect(&s) else {
        // Nothing to remove: the edge survives unchanged.
        return vec![CanonParts { prec, dep, meta: *meta, count: count_for(meta, dep) }];
    };
    if matches!(meta, PatternMeta::Single) {
        // A single dependency either survives whole or is dropped whole;
        // any overlap with the dependent cell drops it.
        debug_assert!(dep.overlaps(&cut));
        return Vec::new();
    }
    let mut out = Vec::with_capacity(2);
    for seg in dep.subtract(&cut) {
        debug_assert_eq!(seg.width(), 1);
        if let PatternMeta::RRGapOne { h_rel, t_rel } = meta {
            // Snap the segment to the rows that actually hold dependents.
            let rows: Vec<u32> = parity_rows(dep, seg).collect();
            let Some((&first, &last)) = rows.first().zip(rows.last()) else {
                continue;
            };
            let col = seg.head().col;
            let snapped = Range::from_coords(col, first, col, last);
            let (new_meta, count) = if rows.len() == 1 {
                (PatternMeta::Single, 1)
            } else {
                (PatternMeta::RRGapOne { h_rel: *h_rel, t_rel: *t_rel }, rows.len() as u32)
            };
            out.push(CanonParts {
                prec: seg_prec(meta, snapped),
                dep: snapped,
                meta: new_meta,
                count,
            });
            continue;
        }
        let new_meta = if seg.is_cell() { PatternMeta::Single } else { *meta };
        out.push(CanonParts {
            prec: seg_prec(meta, seg),
            dep: seg,
            meta: new_meta,
            count: count_for(&new_meta, seg),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn dep(prec: &str, d: &str) -> CanonDep {
        CanonDep { prec: r(prec), dep: c(d) }
    }

    // ---- rel -------------------------------------------------------------

    #[test]
    fn rel_matches_paper_example() {
        // e' = A5:B7 → C5: hRel = (−2, 0), tRel = (−1, 2).
        let (h, t) = rel(r("A5:B7"), c("C5"));
        assert_eq!(h, Offset::new(-2, 0));
        assert_eq!(t, Offset::new(-1, 2));
    }

    // ---- pair_meta (addDep on two singles) --------------------------------

    #[test]
    fn rr_pairs_sliding_windows() {
        // Fig. 4a: C1=SUM(A1:B3), C2=SUM(A2:B4).
        let m = pair_meta(PatternType::RR, &dep("A1:B3", "C1"), &dep("A2:B4", "C2")).unwrap();
        assert_eq!(m, PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 2) });
        // Order independence.
        let m2 = pair_meta(PatternType::RR, &dep("A2:B4", "C2"), &dep("A1:B3", "C1")).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn rr_rejects_mismatched_rel() {
        assert!(pair_meta(PatternType::RR, &dep("A1:B3", "C1"), &dep("A2:B5", "C2")).is_none());
    }

    #[test]
    fn rr_rejects_non_adjacent_or_cross_column() {
        assert!(pair_meta(PatternType::RR, &dep("A1:B3", "C1"), &dep("A3:B5", "C3")).is_none());
        assert!(pair_meta(PatternType::RR, &dep("A1:B3", "C1"), &dep("B2:C4", "D2")).is_none());
    }

    #[test]
    fn rf_pairs_shrinking_windows() {
        // Fig. 4b: C1=SUM(A1:B4), C2=SUM(A2:B4).
        let m = pair_meta(PatternType::RF, &dep("A1:B4", "C1"), &dep("A2:B4", "C2")).unwrap();
        assert_eq!(m, PatternMeta::RF { h_rel: Offset::new(-2, 0), t_fix: c("B4") });
    }

    #[test]
    fn fr_pairs_expanding_windows() {
        // Fig. 4c: C1=SUM(A1:B1), C2=SUM(A1:B2).
        let m = pair_meta(PatternType::FR, &dep("A1:B1", "C1"), &dep("A1:B2", "C2")).unwrap();
        assert_eq!(m, PatternMeta::FR { h_fix: c("A1"), t_rel: Offset::new(-1, 0) });
    }

    #[test]
    fn ff_pairs_identical_windows() {
        // Fig. 4d.
        let m = pair_meta(PatternType::FF, &dep("A1:B3", "C1"), &dep("A1:B3", "C2")).unwrap();
        assert_eq!(m, PatternMeta::FF { h_fix: c("A1"), t_fix: c("B3") });
    }

    #[test]
    fn chain_pairs_above() {
        // Fig. 9: A2=A1+1, A3=A2+1.
        let m = pair_meta(PatternType::RRChain, &dep("A1", "A2"), &dep("A2", "A3")).unwrap();
        assert_eq!(m, PatternMeta::RRChain { dir: ChainDir::Above });
    }

    #[test]
    fn chain_rejects_non_chain_and_mixed_dirs() {
        assert!(pair_meta(PatternType::RRChain, &dep("B1", "A2"), &dep("B2", "A3")).is_none());
        assert!(pair_meta(PatternType::RRChain, &dep("A1", "A2"), &dep("A4", "A3")).is_none());
        assert!(pair_meta(PatternType::RRChain, &dep("A1:A2", "A3"), &dep("A2:A3", "A4")).is_none());
    }

    #[test]
    fn gap_one_needs_distance_two() {
        let a = dep("B1", "C1");
        let b2 = dep("B3", "C3");
        let m = pair_meta(PatternType::RRGapOne, &a, &b2).unwrap();
        assert!(matches!(m, PatternMeta::RRGapOne { .. }));
        assert!(pair_meta(PatternType::RRGapOne, &a, &dep("B2", "C2")).is_none());
        assert!(pair_meta(PatternType::RR, &a, &b2).is_none());
    }

    // ---- can_extend --------------------------------------------------------

    #[test]
    fn extend_rr_at_both_ends() {
        let m = PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 2) };
        let run = r("C2:C3");
        // Extend below (C4 references A4:B6).
        assert!(can_extend(&m, run, &dep("A4:B6", "C4")));
        // Extend above (C1 references A1:B3).
        assert!(can_extend(&m, run, &dep("A1:B3", "C1")));
        // Wrong rel.
        assert!(!can_extend(&m, run, &dep("A4:B7", "C4")));
        // Not adjacent.
        assert!(!can_extend(&m, run, &dep("A5:B7", "C5")));
        // Wrong column.
        assert!(!can_extend(&m, run, &dep("B4:C6", "D4")));
    }

    #[test]
    fn extend_rf_requires_fixed_tail() {
        let m = PatternMeta::RF { h_rel: Offset::new(-2, 0), t_fix: c("B4") };
        assert!(can_extend(&m, r("C1:C2"), &dep("A3:B4", "C3")));
        assert!(!can_extend(&m, r("C1:C2"), &dep("A3:B5", "C3")));
    }

    #[test]
    fn extend_ff() {
        let m = PatternMeta::FF { h_fix: c("A1"), t_fix: c("B3") };
        assert!(can_extend(&m, r("C1:C2"), &dep("A1:B3", "C3")));
        assert!(!can_extend(&m, r("C1:C2"), &dep("A1:B4", "C3")));
    }

    #[test]
    fn extend_chain() {
        let m = PatternMeta::RRChain { dir: ChainDir::Above };
        assert!(can_extend(&m, r("A2:A3"), &dep("A3", "A4")));
        assert!(!can_extend(&m, r("A2:A3"), &dep("A5", "A4")));
    }

    // ---- find_dep ----------------------------------------------------------

    #[test]
    fn find_dep_rr_full_prec() {
        // Fig. 4a: prec A1:B6, dep C1:C4.
        let m = PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 2) };
        assert_eq!(find_dep(&m, r("A1:B6"), r("C1:C4"), r("A1:B6")), vec![r("C1:C4")]);
    }

    #[test]
    fn find_dep_rr_single_cell_probe() {
        let m = PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 2) };
        // A3 is inside windows of C1 (A1:B3), C2 (A2:B4), C3 (A3:B5):
        // dh = row 3 - tRel.dr(2) = 1, dt = row 3 - hRel.dr(0) = 3.
        assert_eq!(find_dep(&m, r("A1:B6"), r("C1:C4"), r("A3")), vec![r("C1:C3")]);
        // B6 only in window of C4.
        assert_eq!(find_dep(&m, r("A1:B6"), r("C1:C4"), r("B6")), vec![r("C4")]);
        // A1 only in window of C1 (clamped from below).
        assert_eq!(find_dep(&m, r("A1:B6"), r("C1:C4"), r("A1")), vec![r("C1")]);
    }

    #[test]
    fn find_dep_rf() {
        // Fig. 4b: prec A1:B4, dep C1:C4, windows shrink.
        let m = PatternMeta::RF { h_rel: Offset::new(-2, 0), t_fix: c("B4") };
        // B4 is in every window.
        assert_eq!(find_dep(&m, r("A1:B4"), r("C1:C4"), r("B4")), vec![r("C1:C4")]);
        // A2 is in windows of C1 (A1:B4) and C2 (A2:B4).
        assert_eq!(find_dep(&m, r("A1:B4"), r("C1:C4"), r("A2")), vec![r("C1:C2")]);
        // A1 only in C1's window.
        assert_eq!(find_dep(&m, r("A1:B4"), r("C1:C4"), r("A1")), vec![r("C1")]);
    }

    #[test]
    fn find_dep_fr() {
        // Fig. 4c: prec A1:B3, dep C1:C3, windows expand.
        let m = PatternMeta::FR { h_fix: c("A1"), t_rel: Offset::new(-1, 0) };
        // A1 is in every window.
        assert_eq!(find_dep(&m, r("A1:B3"), r("C1:C3"), r("A1")), vec![r("C1:C3")]);
        // B2 is in windows of C2 (A1:B2) and C3 (A1:B3).
        assert_eq!(find_dep(&m, r("A1:B3"), r("C1:C3"), r("B2")), vec![r("C2:C3")]);
        // B3 only in C3's window.
        assert_eq!(find_dep(&m, r("A1:B3"), r("C1:C3"), r("B3")), vec![r("C3")]);
    }

    #[test]
    fn find_dep_ff_returns_whole_dep() {
        let m = PatternMeta::FF { h_fix: c("A1"), t_fix: c("B3") };
        assert_eq!(find_dep(&m, r("A1:B3"), r("C1:C3"), r("B2")), vec![r("C1:C3")]);
    }

    #[test]
    fn find_dep_chain_is_transitive() {
        // Fig. 9: prec A1:A3, dep A2:A4.
        let m = PatternMeta::RRChain { dir: ChainDir::Above };
        // Dependents of A2: everything below it in the chain (A3:A4).
        assert_eq!(find_dep(&m, r("A1:A3"), r("A2:A4"), r("A2")), vec![r("A3:A4")]);
        // Dependents of A1: A2:A4.
        assert_eq!(find_dep(&m, r("A1:A3"), r("A2:A4"), r("A1")), vec![r("A2:A4")]);
        // Dependents of A3 (within prec): A4.
        assert_eq!(find_dep(&m, r("A1:A3"), r("A2:A4"), r("A3")), vec![r("A4")]);
    }

    #[test]
    fn find_dep_chain_below() {
        // B1=B2+1, B2=B3+1, B3=B4+1: prec B2:B4, dep B1:B3, dir Below.
        let m = PatternMeta::RRChain { dir: ChainDir::Below };
        assert_eq!(find_dep(&m, r("B2:B4"), r("B1:B3"), r("B4")), vec![r("B1:B3")]);
        assert_eq!(find_dep(&m, r("B2:B4"), r("B1:B3"), r("B2")), vec![r("B1")]);
    }

    #[test]
    fn find_dep_gap_one_returns_parity_cells() {
        // Dependents at C1, C3, C5 each referencing the cell to the left.
        let m = PatternMeta::RRGapOne { h_rel: Offset::new(-1, 0), t_rel: Offset::new(-1, 0) };
        let got = find_dep(&m, r("B1:B5"), r("C1:C5"), r("B1:B5"));
        assert_eq!(got, vec![r("C1"), r("C3"), r("C5")]);
        let got = find_dep(&m, r("B1:B5"), r("C1:C5"), r("B3"));
        assert_eq!(got, vec![r("C3")]);
        // A pure-value parity gap row has no dependents.
        let got = find_dep(&m, r("B1:B5"), r("C1:C5"), r("B2"));
        assert!(got.is_empty());
    }

    #[test]
    fn find_dep_out_of_range_is_empty() {
        // Probe rows whose computed dependents fall outside e.dep.
        let m = PatternMeta::RR { h_rel: Offset::new(-1, -3), t_rel: Offset::new(-1, -3) };
        // dep C4:C6 references B1:B3 (3 rows above, to the left).
        assert_eq!(find_dep(&m, r("B1:B3"), r("C4:C6"), r("B1")), vec![r("C4")]);
    }

    // ---- find_prec ---------------------------------------------------------

    #[test]
    fn find_prec_rr() {
        let m = PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 2) };
        // Precedents of C2:C3 = A2:B5 (union of A2:B4 and A3:B5).
        assert_eq!(find_prec(&m, r("A1:B6"), r("C1:C4"), r("C2:C3")), vec![r("A2:B5")]);
        assert_eq!(find_prec(&m, r("A1:B6"), r("C1:C4"), r("C1")), vec![r("A1:B3")]);
    }

    #[test]
    fn find_prec_rf() {
        let m = PatternMeta::RF { h_rel: Offset::new(-2, 0), t_fix: c("B4") };
        // Precedent of C2:C4 = C2's window A2:B4 (it contains the others).
        assert_eq!(find_prec(&m, r("A1:B4"), r("C1:C4"), r("C2:C4")), vec![r("A2:B4")]);
    }

    #[test]
    fn find_prec_fr() {
        let m = PatternMeta::FR { h_fix: c("A1"), t_rel: Offset::new(-1, 0) };
        // Precedent of C1:C2 = C2's window A1:B2.
        assert_eq!(find_prec(&m, r("A1:B3"), r("C1:C3"), r("C1:C2")), vec![r("A1:B2")]);
    }

    #[test]
    fn find_prec_ff() {
        let m = PatternMeta::FF { h_fix: c("A1"), t_fix: c("B3") };
        assert_eq!(find_prec(&m, r("A1:B3"), r("C1:C3"), r("C2")), vec![r("A1:B3")]);
    }

    #[test]
    fn find_prec_chain_is_transitive() {
        let m = PatternMeta::RRChain { dir: ChainDir::Above };
        // Precedents of A4 within prec A1:A3: A1:A3 (whole upstream chain).
        assert_eq!(find_prec(&m, r("A1:A3"), r("A2:A4"), r("A4")), vec![r("A1:A3")]);
        // Precedents of A2: A1.
        assert_eq!(find_prec(&m, r("A1:A3"), r("A2:A4"), r("A2")), vec![r("A1")]);
    }

    #[test]
    fn find_prec_gap_one() {
        let m = PatternMeta::RRGapOne { h_rel: Offset::new(-1, 0), t_rel: Offset::new(-1, 0) };
        let got = find_prec(&m, r("B1:B5"), r("C1:C5"), r("C1:C3"));
        assert_eq!(got, vec![r("B1"), r("B3")]);
    }

    // ---- remove_dep --------------------------------------------------------

    #[test]
    fn remove_middle_splits_edge() {
        // Paper: removing C2 from C1:C4 leaves C1 and C3:C4.
        let m = PatternMeta::RR { h_rel: Offset::new(-2, 0), t_rel: Offset::new(-1, 2) };
        let parts = remove_dep(&m, r("A1:B6"), r("C1:C4"), r("C2"));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].dep, r("C1"));
        assert_eq!(parts[0].meta, PatternMeta::Single);
        assert_eq!(parts[0].prec, r("A1:B3"));
        assert_eq!(parts[0].count, 1);
        assert_eq!(parts[1].dep, r("C3:C4"));
        assert_eq!(parts[1].meta, m);
        assert_eq!(parts[1].prec, r("A3:B6"));
        assert_eq!(parts[1].count, 2);
    }

    #[test]
    fn remove_whole_dep_erases_edge() {
        let m = PatternMeta::FF { h_fix: c("A1"), t_fix: c("B3") };
        assert!(remove_dep(&m, r("A1:B3"), r("C1:C3"), r("C1:C3")).is_empty());
        // Superset also erases.
        assert!(remove_dep(&m, r("A1:B3"), r("C1:C3"), r("C1:C9")).is_empty());
    }

    #[test]
    fn remove_disjoint_keeps_edge() {
        let m = PatternMeta::FF { h_fix: c("A1"), t_fix: c("B3") };
        let parts = remove_dep(&m, r("A1:B3"), r("C1:C3"), r("D1:D3"));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].dep, r("C1:C3"));
        assert_eq!(parts[0].meta, m);
    }

    #[test]
    fn remove_from_single_erases() {
        assert!(remove_dep(&PatternMeta::Single, r("A1:A3"), r("B1"), r("B1")).is_empty());
    }

    #[test]
    fn remove_end_of_chain() {
        let m = PatternMeta::RRChain { dir: ChainDir::Above };
        let parts = remove_dep(&m, r("A1:A3"), r("A2:A4"), r("A4"));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].dep, r("A2:A3"));
        assert_eq!(parts[0].prec, r("A1:A2"));
        assert_eq!(parts[0].meta, m);
    }

    #[test]
    fn remove_from_gap_one_snaps_parity() {
        let m = PatternMeta::RRGapOne { h_rel: Offset::new(-1, 0), t_rel: Offset::new(-1, 0) };
        // Dependents at C1,C3,C5,C7; remove C3.
        let parts = remove_dep(&m, r("B1:B7"), r("C1:C7"), r("C3"));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].dep, r("C1"));
        assert_eq!(parts[0].meta, PatternMeta::Single);
        // The C4:C7 remainder snaps to C5:C7 (parity rows 5 and 7).
        assert_eq!(parts[1].dep, r("C5:C7"));
        assert_eq!(parts[1].count, 2);
        assert_eq!(parts[1].prec, r("B5:B7"));
    }

    #[test]
    fn remove_gap_one_cut_covering_gap_row_only_keeps_edge_shape() {
        let m = PatternMeta::RRGapOne { h_rel: Offset::new(-1, 0), t_rel: Offset::new(-1, 0) };
        // Removing the pure-value row C2 splits the bounding range but both
        // halves keep their dependents: C1 and C3..C7.
        let parts = remove_dep(&m, r("B1:B7"), r("C1:C7"), r("C2"));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].dep, r("C1"));
        assert_eq!(parts[1].dep, r("C3:C7"));
        assert_eq!(parts[1].count, 3);
    }

    // ---- counting ----------------------------------------------------------

    #[test]
    fn count_for_patterns() {
        assert_eq!(count_for(&PatternMeta::Single, r("C1")), 1);
        let rr = PatternMeta::RR { h_rel: Offset::ZERO, t_rel: Offset::ZERO };
        assert_eq!(count_for(&rr, r("C1:C10")), 10);
        let gap = PatternMeta::RRGapOne { h_rel: Offset::ZERO, t_rel: Offset::ZERO };
        assert_eq!(count_for(&gap, r("C1:C9")), 5);
        assert_eq!(count_for(&gap, r("C1:C10")), 5);
    }

    #[test]
    fn cue_matching() {
        use crate::Cue;
        let none = Cue::NONE;
        let fr = Cue { head_fixed: true, tail_fixed: false };
        let rf = Cue { head_fixed: false, tail_fixed: true };
        let ff = Cue { head_fixed: true, tail_fixed: true };
        assert!(PatternType::RR.matches_cue(none));
        assert!(PatternType::FR.matches_cue(fr));
        assert!(PatternType::RF.matches_cue(rf));
        assert!(PatternType::FF.matches_cue(ff));
        assert!(!PatternType::RR.matches_cue(ff));
        assert!(!PatternType::FF.matches_cue(none));
    }

    #[test]
    fn chain_is_special_case_of_rr() {
        assert!(PatternType::RRChain.is_special_case_of(PatternType::RR));
        assert!(!PatternType::RR.is_special_case_of(PatternType::RRChain));
        assert!(!PatternType::FF.is_special_case_of(PatternType::RR));
    }
}
