//! A common interface over formula-graph implementations, so the
//! spreadsheet engine and the benchmark harness can swap TACO for any of
//! the §VI comparison systems.

use crate::Dependency;
use taco_grid::Range;

/// Operations every formula-graph backend must support: the paper's
/// interfaces of "finding dependents or precedents of a range, and adding
/// or deleting a dependency" (§VI-A).
pub trait DependencyBackend {
    /// Short identifier used in benchmark output (e.g. `"TACO"`).
    fn name(&self) -> &'static str;

    /// Adds one dependency (edge from referenced range to formula cell).
    fn add_dependency(&mut self, d: &Dependency);

    /// All direct and transitive dependents of `r`, as disjoint ranges.
    fn find_dependents(&mut self, r: Range) -> Vec<Range>;

    /// All direct and transitive precedents of `r`, as disjoint ranges.
    fn find_precedents(&mut self, r: Range) -> Vec<Range>;

    /// Removes the dependencies of every formula cell inside `s`.
    fn clear_cells(&mut self, s: Range);

    /// Number of stored edges (whatever the backend's edge unit is).
    fn num_edges(&self) -> usize;

    /// Compression statistics, for backends that track them (the
    /// observability gauges poll this after each recalculation). The
    /// default is `None`: baseline backends without per-pattern
    /// accounting simply expose no compression gauges.
    fn graph_stats(&self, scratch: &mut crate::StatsScratch) -> Option<crate::GraphStats> {
        let _ = scratch;
        None
    }
}

impl DependencyBackend for crate::FormulaGraph {
    fn name(&self) -> &'static str {
        if self.config().patterns.is_empty() {
            "NoComp"
        } else if self.config().in_row_only {
            "TACO-InRow"
        } else {
            "TACO"
        }
    }

    fn add_dependency(&mut self, d: &Dependency) {
        crate::FormulaGraph::add_dependency(self, d);
    }

    fn find_dependents(&mut self, r: Range) -> Vec<Range> {
        crate::FormulaGraph::find_dependents_reusing(self, r)
    }

    fn find_precedents(&mut self, r: Range) -> Vec<Range> {
        crate::FormulaGraph::find_precedents_reusing(self, r)
    }

    fn clear_cells(&mut self, s: Range) {
        crate::FormulaGraph::clear_cells(self, s);
    }

    fn num_edges(&self) -> usize {
        self.num_edges()
    }

    fn graph_stats(&self, scratch: &mut crate::StatsScratch) -> Option<crate::GraphStats> {
        Some(self.stats_with(scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, FormulaGraph};
    use taco_grid::Cell;

    #[test]
    fn names_reflect_config() {
        assert_eq!(FormulaGraph::taco().name(), "TACO");
        assert_eq!(FormulaGraph::nocomp().name(), "NoComp");
        assert_eq!(FormulaGraph::new(Config::taco_in_row()).name(), "TACO-InRow");
    }

    #[test]
    fn trait_object_usable() {
        let mut g: Box<dyn DependencyBackend> = Box::new(FormulaGraph::taco());
        g.add_dependency(&Dependency::new(
            Range::parse_a1("A1").unwrap(),
            Cell::parse_a1("B1").unwrap(),
        ));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.find_dependents(Range::parse_a1("A1").unwrap()).len(), 1);
        g.clear_cells(Range::parse_a1("B1").unwrap());
        assert_eq!(g.num_edges(), 0);
    }
}
