//! Exact Compressed-Edge-Minimization (CEM) for tiny instances.
//!
//! §IV-A formalizes CEM — partition the dependency set so that each part
//! is either a single edge or compressible by one pattern, minimizing the
//! number of parts — and proves it NP-hard (reduction from rectilinear
//! picture compression). The paper notes an exhaustive partition search
//! "cannot finish within 30 mins for a spreadsheet with 96 edges".
//!
//! This module implements a branch-and-bound exact solver that is
//! practical for the tiny instances where exhaustive search is feasible
//! (tens of dependencies). It exists to *evaluate the greedy algorithm*:
//! tests and the `greedy_vs_exact` bench compare `FormulaGraph`'s edge
//! count against the optimum on structured and adversarial inputs.

use crate::edge::Edge;
use crate::pattern::PatternType;
use crate::{Config, Dependency};
use taco_grid::Axis;

/// Returns whether `deps` (in any order) can form ONE compressed edge
/// under some enabled pattern — i.e. whether the part is valid for CEM.
pub fn compressible_group(deps: &[Dependency], config: &Config) -> bool {
    if deps.len() <= 1 {
        return true; // a Single edge
    }
    // The dependent cells must form a consecutive run in one column or
    // row; try both axes and every enabled pattern by incremental
    // construction (sorting by the run coordinate first).
    'axes: for axis in [Axis::Col, Axis::Row] {
        let mut sorted: Vec<&Dependency> = deps.iter().collect();
        sorted.sort_by_key(|d| {
            let c = axis.canon_cell(d.dep);
            (c.col, c.row)
        });
        // All dependents in one canonical column, strictly consecutive.
        let first = axis.canon_cell(sorted[0].dep);
        for (i, d) in sorted.iter().enumerate() {
            let c = axis.canon_cell(d.dep);
            if c.col != first.col {
                continue 'axes;
            }
            if i > 0 {
                let prev = axis.canon_cell(sorted[i - 1].dep);
                if c.row != prev.row + 1 {
                    continue 'axes;
                }
            }
        }
        for &p in &config.patterns {
            if p == PatternType::RRGapOne {
                continue; // gap runs are not consecutive; skip in CEM
            }
            let seed = Edge::single(sorted[0]);
            let Some(mut e) = seed.try_pair(sorted[1], p, axis) else {
                continue;
            };
            if !config.allows(&e.meta, axis) {
                continue;
            }
            let mut ok = true;
            for d in &sorted[2..] {
                match e.try_extend(d) {
                    Some(ne) => e = ne,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return true;
            }
        }
    }
    false
}

/// Exact minimum number of compressed edges for `deps` under `config`'s
/// patterns, by branch-and-bound over set partitions. Exponential — only
/// call with small inputs (≲ 24 dependencies); returns `None` if the
/// search exceeds `budget` recursion steps.
pub fn exact_min_edges(deps: &[Dependency], config: &Config, budget: u64) -> Option<usize> {
    let n = deps.len();
    if n == 0 {
        return Some(0);
    }
    let mut best = n; // all-singles upper bound
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut steps = 0u64;
    let ok = backtrack(deps, config, 0, &mut groups, &mut best, &mut steps, budget);
    ok.then_some(best)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    deps: &[Dependency],
    config: &Config,
    next: usize,
    groups: &mut Vec<Vec<usize>>,
    best: &mut usize,
    steps: &mut u64,
    budget: u64,
) -> bool {
    *steps += 1;
    if *steps > budget {
        return false;
    }
    if groups.len() >= *best {
        return true; // prune: cannot improve
    }
    if next == deps.len() {
        *best = groups.len();
        return true;
    }
    // Try adding dep `next` to each existing group.
    for gi in 0..groups.len() {
        groups[gi].push(next);
        let members: Vec<Dependency> = groups[gi].iter().map(|&i| deps[i]).collect();
        let feasible = compressible_group(&members, config);
        if feasible && !backtrack(deps, config, next + 1, groups, best, steps, budget) {
            groups[gi].pop();
            return false;
        }
        groups[gi].pop();
    }
    // Or start a new group with it.
    groups.push(vec![next]);
    let ok = backtrack(deps, config, next + 1, groups, best, steps, budget);
    groups.pop();
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FormulaGraph;
    use taco_grid::{Cell, Range};

    fn d(prec: &str, dep: &str) -> Dependency {
        Dependency::new(Range::parse_a1(prec).unwrap(), Cell::parse_a1(dep).unwrap())
    }

    fn greedy_edges(deps: &[Dependency]) -> usize {
        FormulaGraph::build(Config::taco_full(), deps.iter().copied()).num_edges()
    }

    #[test]
    fn groups_fig4a_is_compressible() {
        let deps = vec![d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3"), d("A4:B6", "C4")];
        assert!(compressible_group(&deps, &Config::taco_full()));
        // Out of order is fine.
        let rev: Vec<Dependency> = deps.iter().rev().copied().collect();
        assert!(compressible_group(&rev, &Config::taco_full()));
    }

    #[test]
    fn non_consecutive_or_mismatched_groups_rejected() {
        let cfg = Config::taco_full();
        // Gap in the run.
        assert!(!compressible_group(&[d("A1:B3", "C1"), d("A3:B5", "C3")], &cfg));
        // Mismatched windows.
        assert!(!compressible_group(&[d("A1:B3", "C1"), d("A2:B9", "C2")], &cfg));
        // Different columns.
        assert!(!compressible_group(&[d("A1:B3", "C1"), d("A2:B4", "D2")], &cfg));
    }

    #[test]
    fn exact_matches_greedy_on_clean_runs() {
        // A pure RR run + an FF pair: optimum is clearly 2.
        let mut deps = vec![d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3"), d("A4:B6", "C4")];
        deps.push(d("G1:G9", "H1"));
        deps.push(d("G1:G9", "H2"));
        let exact = exact_min_edges(&deps, &Config::taco_full(), 1_000_000).unwrap();
        assert_eq!(exact, 2);
        assert_eq!(greedy_edges(&deps), 2);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_exact_is_not() {
        // An ambiguous middle dependency: C2 references B2, which both the
        // vertical derived-column run (C1,C2,C3 ref B1,B2,B3) and a
        // horizontal same-row run could claim. Construct a case where
        // greedy's local choice may split a run.
        let deps = vec![
            // Vertical run col C references col B same row (in-row RR).
            d("B1", "C1"),
            d("B2", "C2"),
            d("B3", "C3"),
            // Horizontal run on row 2 also matching around C2.
            d("B2", "D2"),
            d("B2", "E2"),
        ];
        let cfg = Config::taco_full();
        let exact = exact_min_edges(&deps, &cfg, 1_000_000).unwrap();
        let greedy = greedy_edges(&deps);
        assert!(exact <= greedy);
        assert_eq!(exact, 2, "one RR column run + one FF row run");
    }

    #[test]
    fn exact_single_and_empty() {
        let cfg = Config::taco_full();
        assert_eq!(exact_min_edges(&[], &cfg, 1000), Some(0));
        assert_eq!(exact_min_edges(&[d("A1", "B1")], &cfg, 1000), Some(1));
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let deps: Vec<Dependency> =
            (1..=12).map(|i| d("A1", &format!("{}1", crate::test_col(i + 1)))).collect();
        assert_eq!(exact_min_edges(&deps, &Config::taco_full(), 5), None);
    }

    #[test]
    fn nocomp_exact_is_all_singles() {
        let deps = vec![d("A1:B3", "C1"), d("A2:B4", "C2")];
        assert_eq!(exact_min_edges(&deps, &Config::nocomp(), 1000), Some(2));
    }
}
