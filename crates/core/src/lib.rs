//! TACO: Tabular-locality-based compression of spreadsheet formula graphs.
//!
//! This crate is the paper's primary contribution. A *formula graph* stores,
//! for every formula cell, edges from each range the formula references to
//! the formula cell. Real spreadsheets exhibit **tabular locality** — cells
//! near each other carry structurally similar formulae, because autofill,
//! copy-paste, and programmatic generation repeat one source pattern — and
//! TACO exploits it by replacing arbitrarily long runs of similar
//! dependencies with constant-size *compressed edges*.
//!
//! The pieces, mapped to the paper:
//!
//! - [`pattern`] — the four basic patterns (**RR**, **RF**, **FR**, **FF**),
//!   the **RR-Chain** extension, and the **RR-GapOne** exploratory pattern,
//!   each implementing the four key functions of §III-B (`addDep`,
//!   `findDep`, `findPrec`, `removeDep`), all O(1);
//! - [`edge`] — the compressed-edge representation
//!   `(prec, dep, pattern, meta)` of §II-B, plus the column/row axis
//!   handling (row-wise patterns are the column-wise ones transposed);
//! - [`graph::FormulaGraph`] — the framework of §IV: the greedy
//!   compression algorithm (Alg. 2), the modified BFS for finding
//!   dependents/precedents directly on the compressed graph (Alg. 3), and
//!   incremental maintenance (insert / clear / update);
//! - [`config`] — pattern-set configurations: `taco_full()`,
//!   `taco_in_row()` (the derived-column-only variant of §VI-B), and
//!   `nocomp()` (the uncompressed baseline built in the same framework);
//! - [`stats`] — the graph-size and per-pattern accounting behind
//!   Tables II–V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cem;
pub mod config;
pub mod edge;
pub mod graph;
pub mod leveling;
pub mod pattern;
pub mod snapshot;
pub mod stats;
pub mod structural;

mod dep;
mod slab;

/// Test helper: 1-based column index to letters (re-exported for tests).
#[doc(hidden)]
pub fn test_col(i: u32) -> String {
    taco_grid::a1::col_to_letters(i)
}

pub use backend::DependencyBackend;
pub use config::Config;
pub use dep::{Cue, Dependency};
pub use edge::{Edge, EdgeId};
pub use graph::{FormulaGraph, QueryScratch, QueryStats};
pub use leveling::{level_dirty, Leveler};
pub use pattern::{ChainDir, PatternMeta, PatternType};
pub use snapshot::GraphSnapshot;
pub use stats::{GraphStats, PatternCounts, StatsScratch};
pub use structural::StructuralOp;
