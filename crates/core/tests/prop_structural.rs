//! Property test for structural edits: applying insert/delete rows/cols to
//! the compressed graph must equal transforming every raw dependency and
//! rebuilding from scratch — for any workload and any edit sequence.

use proptest::prelude::*;
use std::collections::BTreeSet;
use taco_core::{Config, Dependency, FormulaGraph, StructuralOp};
use taco_grid::{Cell, Range};

const W: u32 = 10;
const H: u32 = 30;

fn arb_deps() -> impl Strategy<Value = Vec<Dependency>> {
    let run = (1u32..W, 1u32..H - 8, 2u32..8, 0u8..4).prop_map(|(col, row0, len, kind)| {
        let mut out = Vec::new();
        for k in 0..len.min(H - row0) {
            let row = row0 + k;
            let pc = if col > 1 { col - 1 } else { col + 1 };
            let prec = match kind {
                0 => Range::from_coords(pc, row, pc, (row + 2).min(H)),
                1 => Range::from_coords(pc, 1, pc, 3),
                2 => Range::from_coords(pc, row0, pc, row),
                _ => {
                    if row == 1 {
                        Range::cell(Cell::new(pc, 1))
                    } else {
                        Range::cell(Cell::new(col, row - 1))
                    }
                }
            };
            out.push(Dependency::new(prec, Cell::new(col, row)));
        }
        out
    });
    prop::collection::vec(run, 1..6).prop_map(|chunks| {
        let mut seen = BTreeSet::new();
        chunks.into_iter().flatten().filter(|d| seen.insert((d.prec, d.dep))).collect()
    })
}

fn arb_op() -> impl Strategy<Value = StructuralOp> {
    prop_oneof![
        (1u32..H, 1u32..4).prop_map(|(at, n)| StructuralOp::InsertRows { at, n }),
        (1u32..H, 1u32..4).prop_map(|(at, n)| StructuralOp::DeleteRows { at, n }),
        (1u32..W, 1u32..3).prop_map(|(at, n)| StructuralOp::InsertCols { at, n }),
        (1u32..W, 1u32..3).prop_map(|(at, n)| StructuralOp::DeleteCols { at, n }),
    ]
}

fn snapshot(g: &FormulaGraph) -> BTreeSet<(Range, Cell)> {
    g.decompress_all().into_iter().map(|d| (d.prec, d.dep)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn structural_edit_equals_reference_rebuild(deps in arb_deps(), ops in prop::collection::vec(arb_op(), 1..4)) {
        let mut g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        // The reference set of raw dependencies, transformed op by op.
        let mut want: BTreeSet<(Range, Cell)> = deps.iter().map(|d| (d.prec, d.dep)).collect();
        for op in &ops {
            g.apply_structural(*op);
            want = want
                .into_iter()
                .filter_map(|(prec, dep)| {
                    let t = op.map_dependency(&Dependency::new(prec, dep))?;
                    Some((t.prec, t.dep))
                })
                .collect();
            prop_assert_eq!(&snapshot(&g), &want, "after {:?}", op);
        }
        // Graph invariants survive.
        let s = g.stats();
        prop_assert_eq!(s.edges as u64 + s.reduced.total(), s.dependencies);
    }

    #[test]
    fn queries_agree_with_nocomp_after_edits(
        deps in arb_deps(),
        op in arb_op(),
        probe_col in 1u32..=W,
        probe_row in 1u32..=H,
    ) {
        let mut taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let mut nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        taco.apply_structural(op);
        nocomp.apply_structural(op);
        let probe = Range::cell(Cell::new(probe_col, probe_row));
        let cells = |v: Vec<Range>| -> BTreeSet<Cell> {
            v.iter().flat_map(|r| r.cells()).collect()
        };
        prop_assert_eq!(
            cells(taco.find_dependents(probe)),
            cells(nocomp.find_dependents(probe))
        );
        prop_assert_eq!(
            cells(taco.find_precedents(probe)),
            cells(nocomp.find_precedents(probe))
        );
    }
}
