//! Deterministic golden tests for CEM/pattern equivalence: tiny hand-built
//! sheets whose compressed-graph `find_dependents` / `find_precedents`
//! answers are asserted both against exact expected cell sets and against
//! the uncompressed `NoCompCalc` baseline. Complements `prop_equivalence.rs`
//! (randomized) with cases whose compression shape is pinned down exactly.

use std::collections::BTreeSet;
use taco_baselines::NoCompCalc;
use taco_core::{Config, Dependency, DependencyBackend, FormulaGraph, PatternType};
use taco_grid::{Cell, Range};

fn d(prec: &str, dep: &str) -> Dependency {
    Dependency::new(Range::parse_a1(prec).unwrap(), Cell::parse_a1(dep).unwrap())
}

fn cells_of(ranges: &[Range]) -> BTreeSet<Cell> {
    ranges.iter().flat_map(|r| r.cells()).collect()
}

fn cell_set(names: &[&str]) -> BTreeSet<Cell> {
    names.iter().map(|s| Cell::parse_a1(s).unwrap()).collect()
}

/// Asserts that every compressed configuration answers every probe in
/// `probe_area` exactly like the uncompressed `NoCompCalc` baseline.
fn assert_equivalent(deps: &[Dependency], probe_area: Range) {
    let mut baseline = NoCompCalc::build(deps.iter().copied());
    for config in [Config::taco_full(), Config::taco_with_gap_one(), Config::taco_in_row()] {
        let g = FormulaGraph::build(config.clone(), deps.iter().copied());
        for probe_cell in probe_area.cells() {
            let probe = Range::cell(probe_cell);
            assert_eq!(
                cells_of(&g.find_dependents(probe)),
                cells_of(&baseline.find_dependents(probe)),
                "dependents({probe_cell}) differ under {config:?}"
            );
            assert_eq!(
                cells_of(&g.find_precedents(probe)),
                cells_of(&baseline.find_precedents(probe)),
                "precedents({probe_cell}) differ under {config:?}"
            );
        }
        // One multi-cell probe across the middle of the area.
        let band = Range::new(
            probe_area.head(),
            Cell::new(probe_area.tail().col, probe_area.head().row + 1),
        );
        assert_eq!(
            cells_of(&g.find_dependents(band)),
            cells_of(&baseline.find_dependents(band)),
            "dependents({band}) differ under {config:?}"
        );
    }
}

/// `=SUM(A1:B3)` dragged down four rows: one RR edge, golden answers.
#[test]
fn rr_sliding_window_golden() {
    let deps = [d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3"), d("A4:B6", "C4")];
    let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    assert_eq!(g.num_edges(), 1, "four RR deps must compress to one edge");
    assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RR);

    // A2 is inside windows 1 and 2 only.
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("A2").unwrap())),
        cell_set(&["C1", "C2"])
    );
    // B6 only the last window.
    assert_eq!(cells_of(&g.find_dependents(Range::parse_a1("B6").unwrap())), cell_set(&["C4"]));
    // C3's precedents are exactly its window.
    assert_eq!(
        cells_of(&g.find_precedents(Range::parse_a1("C3").unwrap())),
        cells_of(&[Range::parse_a1("A3:B5").unwrap()])
    );
    assert_equivalent(&deps, Range::parse_a1("A1:C6").unwrap());
}

/// `=SUM($C$1:C1)` dragged down: FR expanding windows, golden answers.
#[test]
fn fr_cumulative_golden() {
    let deps = [d("C1", "D1"), d("C1:C2", "D2"), d("C1:C3", "D3"), d("C1:C4", "D4")];
    let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    assert_eq!(g.num_edges(), 1, "cumulative run must compress to one FR edge");
    assert_eq!(g.edges().next().unwrap().pattern(), PatternType::FR);

    // C3 is referenced by every total from D3 down.
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("C3").unwrap())),
        cell_set(&["D3", "D4"])
    );
    // C1 is referenced by all four.
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("C1").unwrap())),
        cell_set(&["D1", "D2", "D3", "D4"])
    );
    assert_eq!(
        cells_of(&g.find_precedents(Range::parse_a1("D2").unwrap())),
        cell_set(&["C1", "C2"])
    );
    assert_equivalent(&deps, Range::parse_a1("C1:D4").unwrap());
}

/// The mirrored shrinking windows: RF.
#[test]
fn rf_shrinking_golden() {
    let deps = [d("E1:E4", "F1"), d("E2:E4", "F2"), d("E3:E4", "F3"), d("E4", "F4")];
    let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    assert_eq!(g.num_edges(), 1, "shrinking run must compress to one RF edge");
    assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RF);

    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("E4").unwrap())),
        cell_set(&["F1", "F2", "F3", "F4"])
    );
    assert_eq!(cells_of(&g.find_dependents(Range::parse_a1("E1").unwrap())), cell_set(&["F1"]));
    assert_equivalent(&deps, Range::parse_a1("E1:F4").unwrap());
}

/// `=VLOOKUP(.., $F$1:$G$3, ..)` dragged down: FF, one shared table.
#[test]
fn ff_fixed_table_golden() {
    let deps =
        [d("F1:G3", "H1"), d("F1:G3", "H2"), d("F1:G3", "H3"), d("F1:G3", "H4"), d("F1:G3", "H5")];
    let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    assert_eq!(g.num_edges(), 1, "shared-table run must compress to one FF edge");
    assert_eq!(g.edges().next().unwrap().pattern(), PatternType::FF);

    // Any table cell fans out to every lookup row.
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("G2").unwrap())),
        cell_set(&["H1", "H2", "H3", "H4", "H5"])
    );
    // A cell outside the table has no dependents.
    assert!(g.find_dependents(Range::parse_a1("G4").unwrap()).is_empty());
    assert_eq!(
        cells_of(&g.find_precedents(Range::parse_a1("H3").unwrap())),
        cells_of(&[Range::parse_a1("F1:G3").unwrap()])
    );
    assert_equivalent(&deps, Range::parse_a1("F1:H5").unwrap());
}

/// `=A1+1` filled down (each formula references the cell above): RR-Chain,
/// and the BFS must walk the whole chain transitively.
#[test]
fn rr_chain_golden() {
    let deps = [d("A1", "A2"), d("A2", "A3"), d("A3", "A4"), d("A4", "A5")];
    let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    assert_eq!(g.num_edges(), 1, "chain must compress to one RR-Chain edge");
    assert_eq!(g.edges().next().unwrap().pattern(), PatternType::RRChain);

    // Editing the chain head dirties the whole chain (transitive closure).
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("A1").unwrap())),
        cell_set(&["A2", "A3", "A4", "A5"])
    );
    // Mid-chain: only the suffix.
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("A3").unwrap())),
        cell_set(&["A4", "A5"])
    );
    assert_eq!(cells_of(&g.find_precedents(Range::parse_a1("A2").unwrap())), cell_set(&["A1"]));
    assert_equivalent(&deps, Range::parse_a1("A1:A5").unwrap());
}

/// The §V exploratory pattern: formulae on every other row.
#[test]
fn rr_gap_one_golden() {
    let deps = [d("A1", "B1"), d("A3", "B3"), d("A5", "B5"), d("A7", "B7")];
    let ext = FormulaGraph::build(Config::taco_with_gap_one(), deps.iter().copied());
    assert_eq!(ext.num_edges(), 1, "gapped run must compress to one RR-GapOne edge");
    assert_eq!(ext.edges().next().unwrap().pattern(), PatternType::RRGapOne);

    // The skipped rows inside the bounding range must NOT be reported.
    assert!(ext.find_dependents(Range::parse_a1("A2").unwrap()).is_empty());
    assert!(ext.find_precedents(Range::parse_a1("B4").unwrap()).is_empty());
    assert_eq!(cells_of(&ext.find_dependents(Range::parse_a1("A5").unwrap())), cell_set(&["B5"]));
    assert_equivalent(&deps, Range::parse_a1("A1:B8").unwrap());
}

/// The Fig. 2 sheet from the paper (per-group running totals): several
/// patterns interleaved on one sheet, queried at the interesting joints.
#[test]
fn fig2_mixed_sheet_golden() {
    // M: =IF(A3=A2, N2+M3, M3)-style mix, simplified to its references:
    // each N-row total references the previous N and the current M.
    let deps = [
        // Derived column: M ← L, row by row (RR, in-row).
        d("L2", "M2"),
        d("L3", "M3"),
        d("L4", "M4"),
        d("L5", "M5"),
        // Running totals: N ← {N above, M left} (two interleaved runs).
        d("N2", "N3"),
        d("N3", "N4"),
        d("N4", "N5"),
        d("M3", "N3"),
        d("M4", "N4"),
        d("M5", "N5"),
    ];
    let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    let s = g.stats();
    assert!(
        s.edges < deps.len(),
        "mixed sheet must compress below {} raw edges, got {}",
        deps.len(),
        s.edges
    );

    // Editing L3 reaches M3, then every later running total.
    assert_eq!(
        cells_of(&g.find_dependents(Range::parse_a1("L3").unwrap())),
        cell_set(&["M3", "N3", "N4", "N5"])
    );
    // N5's direct+transitive precedents reach back through both columns.
    assert_eq!(
        cells_of(&g.find_precedents(Range::parse_a1("N5").unwrap())),
        cell_set(&["N4", "M5", "L5", "N3", "M4", "L4", "N2", "M3", "L3"])
    );
    assert_equivalent(&deps, Range::parse_a1("L1:N6").unwrap());
}

/// Equivalence must survive incremental maintenance: clearing formulae
/// splits compressed edges without losing the rest of the run.
#[test]
fn equivalence_survives_clear_cells() {
    let deps =
        [d("A1:B3", "C1"), d("A2:B4", "C2"), d("A3:B5", "C3"), d("A4:B6", "C4"), d("A5:B7", "C5")];
    let mut g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    g.clear_cells(Range::parse_a1("C3").unwrap());

    // Baseline rebuilt from the surviving dependencies.
    let survivors: Vec<Dependency> =
        deps.iter().copied().filter(|d| d.dep != Cell::parse_a1("C3").unwrap()).collect();
    let mut baseline = NoCompCalc::build(survivors.iter().copied());
    for probe_cell in Range::parse_a1("A1:C7").unwrap().cells() {
        let probe = Range::cell(probe_cell);
        assert_eq!(
            cells_of(&g.find_dependents(probe)),
            cells_of(&baseline.find_dependents(probe)),
            "dependents({probe_cell}) differ after clear"
        );
        assert_eq!(
            cells_of(&g.find_precedents(probe)),
            cells_of(&baseline.find_precedents(probe)),
            "precedents({probe_cell}) differ after clear"
        );
    }
}
