//! Validates the complexity claims of §III-B and §IV-D empirically:
//! pattern key functions are O(1) in the run length, chains resolve
//! without repeated edge accesses, and BFS edge-access counts stay small
//! on pattern-structured sheets.

use taco_core::{Config, Dependency, FormulaGraph, PatternType};
use taco_grid::{Cell, Range};

fn rr_deps(n: u32) -> impl Iterator<Item = Dependency> {
    (1..=n).map(|row| Dependency::new(Range::from_coords(1, row, 2, row + 2), Cell::new(5, row)))
}

#[test]
fn compressed_edge_count_is_independent_of_run_length() {
    for n in [10u32, 1_000, 100_000] {
        let g = FormulaGraph::build(Config::taco_full(), rr_deps(n));
        assert_eq!(g.num_edges(), 1, "n={n}");
        let s = g.stats();
        assert_eq!(s.dependencies, u64::from(n));
        assert_eq!(s.reduced.rr, u64::from(n) - 1);
    }
}

#[test]
fn find_dep_work_is_constant_per_edge() {
    // Edge accesses for a point probe must not grow with run length.
    let mut accesses = Vec::new();
    for n in [100u32, 10_000, 1_000_000] {
        let g = FormulaGraph::build(Config::taco_full(), rr_deps(n));
        let (_, stats) = g.find_dependents_with_stats(Range::cell(Cell::new(1, n / 2)));
        accesses.push(stats.edges_accessed);
    }
    assert!(
        accesses.windows(2).all(|w| w[1] <= w[0] + 2),
        "edge accesses must not scale with run length: {accesses:?}"
    );
}

#[test]
fn chain_pattern_avoids_quadratic_reaccess() {
    // Without RR-Chain, a chain of length n forces ~n accesses of the same
    // RR edge (the §V motivation); with it, a constant number.
    let n = 5_000u32;
    let chain =
        (2..=n).map(|row| Dependency::new(Range::cell(Cell::new(1, row - 1)), Cell::new(1, row)));
    let with_chain = FormulaGraph::build(Config::taco_full(), chain.clone());
    let without_chain = FormulaGraph::build(Config::taco_without(PatternType::RRChain), chain);

    let (a, sa) = with_chain.find_dependents_with_stats(Range::cell(Cell::new(1, 1)));
    let (b, sb) = without_chain.find_dependents_with_stats(Range::cell(Cell::new(1, 1)));
    let cells = |v: &[Range]| v.iter().map(Range::area).sum::<u64>();
    assert_eq!(cells(&a), cells(&b), "answers must agree");
    assert!(sa.edges_accessed <= 4, "RR-Chain: {} accesses", sa.edges_accessed);
    assert!(
        sb.edges_accessed >= u64::from(n) / 2,
        "plain RR should re-access the edge per hop, got {}",
        sb.edges_accessed
    );
}

#[test]
fn edge_accesses_stay_low_on_structured_sheets() {
    // §IV-D: "the average number of edge accesses during BFS is no larger
    // than 7 for 98% of the tests".
    use taco_workload::generator::{gen_sheet, SheetParams};
    let params = SheetParams { target_deps: 20_000, ..Default::default() };
    let sheet = gen_sheet("acc", 21, &params);
    let g = FormulaGraph::build(Config::taco_full(), sheet.deps.iter().copied());
    let mut ratios = Vec::new();
    for &hot in &sheet.hot_cells {
        let (_, st) = g.find_dependents_with_stats(Range::cell(hot));
        if st.enqueued > 0 {
            ratios.push(st.edges_accessed as f64 / (g.num_edges() as f64).max(1.0));
        }
    }
    let ok = ratios.iter().filter(|&&r| r <= 7.0).count();
    assert!(
        ok as f64 >= ratios.len() as f64 * 0.9,
        "avg per-edge access ratio exceeded 7 too often: {ratios:?}"
    );
}

#[test]
fn nocomp_edges_equal_dependencies_exactly() {
    let g = FormulaGraph::build(Config::nocomp(), rr_deps(5_000));
    assert_eq!(g.num_edges() as u64, g.dependencies_inserted());
    let s = g.stats();
    assert_eq!(s.reduced.total(), 0);
}

#[test]
fn build_then_query_on_grid_boundaries() {
    // Dependencies hugging the grid edges must compress and query safely.
    use taco_grid::{MAX_COL, MAX_ROW};
    let mut g = FormulaGraph::taco();
    // Column at the last valid column, rows near MAX_ROW.
    for row in (MAX_ROW - 50)..MAX_ROW {
        g.add_dependency(&Dependency::new(
            Range::cell(Cell::new(MAX_COL - 1, row)),
            Cell::new(MAX_COL, row),
        ));
    }
    assert_eq!(g.num_edges(), 1);
    let deps = g.find_dependents(Range::cell(Cell::new(MAX_COL - 1, MAX_ROW - 10)));
    assert_eq!(deps, vec![Range::cell(Cell::new(MAX_COL, MAX_ROW - 10))]);

    // Chain ending exactly at MAX_ROW.
    let mut g = FormulaGraph::taco();
    for row in (MAX_ROW - 20 + 1)..=MAX_ROW {
        g.add_dependency(&Dependency::new(Range::cell(Cell::new(1, row - 1)), Cell::new(1, row)));
    }
    let deps = g.find_dependents(Range::cell(Cell::new(1, MAX_ROW - 20)));
    assert_eq!(deps.iter().map(Range::area).sum::<u64>(), 20);
}

#[test]
fn huge_probe_ranges_are_handled() {
    let g = FormulaGraph::build(Config::taco_full(), rr_deps(1_000));
    // Probe the whole sheet: everything that depends on anything.
    let all = g.find_dependents(Range::from_coords(1, 1, taco_grid::MAX_COL, taco_grid::MAX_ROW));
    assert_eq!(all.iter().map(Range::area).sum::<u64>(), 1_000);
}

#[test]
fn duplicate_dependencies_do_not_corrupt_state() {
    // The same dependency inserted twice (two identical references in one
    // formula, or a re-parse) must keep the graph queryable and clearable.
    let mut g = FormulaGraph::taco();
    let d = Dependency::new(Range::parse_a1("A1:A3").unwrap(), Cell::parse_a1("B1").unwrap());
    g.add_dependency(&d);
    g.add_dependency(&d);
    let deps = g.find_dependents(Range::parse_a1("A2").unwrap());
    assert_eq!(deps.iter().map(Range::area).sum::<u64>(), 1);
    g.clear_cells(Range::parse_a1("B1").unwrap());
    assert!(g.find_dependents(Range::parse_a1("A2").unwrap()).is_empty());
    assert_eq!(g.num_edges(), 0);
}

#[test]
fn interleaved_inserts_still_compress() {
    // Alternating between two runs must not prevent either from
    // compressing (insertion order independence at the run level).
    let mut g = FormulaGraph::taco();
    for row in 1..=100u32 {
        g.add_dependency(&Dependency::new(Range::cell(Cell::new(1, row)), Cell::new(2, row)));
        g.add_dependency(&Dependency::new(Range::cell(Cell::new(4, row)), Cell::new(5, row)));
    }
    assert_eq!(g.num_edges(), 2);
}
