//! The central correctness property of the paper: compression is lossless.
//! For ANY workload, the compressed graph must answer dependents/precedents
//! queries identically to the uncompressed graph, including after
//! incremental maintenance.

use proptest::prelude::*;
use std::collections::BTreeSet;
use taco_core::{Config, Dependency, FormulaGraph};
use taco_grid::{Cell, Range};

const W: u32 = 12; // sheet width used by generators
const H: u32 = 24; // sheet height

/// Generates structured dependency workloads: runs of autofill-like
/// formulae (the four patterns + chains) mixed with random noise edges.
fn arb_deps() -> impl Strategy<Value = Vec<Dependency>> {
    let run = (1u32..W, 1u32..H, 2u32..8, 0u8..6, 1u32..4, 1u32..4).prop_map(
        |(col, row0, len, kind, w, h)| {
            let mut out = Vec::new();
            for k in 0..len {
                let row = row0 + k;
                if row > H {
                    break;
                }
                let dep = Cell::new(col, row);
                // Keep precedents inside the sheet and left of the formula
                // column where possible.
                let pc = if col > 1 { col - 1 } else { col + 1 };
                let prec = match kind {
                    // RR sliding window
                    0 => Range::from_coords(pc, row, (pc + w - 1).min(W), (row + h - 1).min(H)),
                    // FF fixed window
                    1 => Range::from_coords(pc, 1, pc, h.min(H)),
                    // FR expanding (cumulative)
                    2 => Range::from_coords(pc, 1, pc, row),
                    // RF shrinking
                    3 => Range::from_coords(pc, row.min(H), pc, H),
                    // chain above (self column)
                    4 => {
                        if row == 1 {
                            Range::cell(Cell::new(pc, 1))
                        } else {
                            Range::cell(Cell::new(col, row - 1))
                        }
                    }
                    // in-row derived column
                    _ => Range::cell(Cell::new(pc, row)),
                };
                out.push(Dependency::new(prec, dep));
            }
            out
        },
    );
    let noise = (1u32..=W, 1u32..=H, 1u32..=W, 1u32..=H, 1u32..3, 1u32..3).prop_map(
        |(pc, pr, dc, dr, w, h)| {
            let prec = Range::from_coords(pc, pr, (pc + w - 1).min(W), (pr + h - 1).min(H));
            vec![Dependency::new(prec, Cell::new(dc, dr))]
        },
    );
    prop::collection::vec(prop_oneof![3 => run, 1 => noise], 1..12).prop_map(|chunks| {
        // Deduplicate identical (prec, dep) pairs: a real parser emits a
        // set of references per formula cell.
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for d in chunks.into_iter().flatten() {
            if seen.insert((d.prec, d.dep)) {
                out.push(d);
            }
        }
        out
    })
}

fn cells_of(ranges: &[Range]) -> BTreeSet<Cell> {
    ranges.iter().flat_map(|r| r.cells()).collect()
}

fn arb_probe() -> impl Strategy<Value = Range> {
    (1u32..=W, 1u32..=H, 0u32..3, 0u32..4)
        .prop_map(|(c, r, w, h)| Range::from_coords(c, r, (c + w).min(W), (r + h).min(H)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn taco_equals_nocomp_on_queries(deps in arb_deps(), probes in prop::collection::vec(arb_probe(), 1..6)) {
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        for probe in probes {
            prop_assert_eq!(
                cells_of(&taco.find_dependents(probe)),
                cells_of(&nocomp.find_dependents(probe)),
                "dependents({}) disagree", probe
            );
            prop_assert_eq!(
                cells_of(&taco.find_precedents(probe)),
                cells_of(&nocomp.find_precedents(probe)),
                "precedents({}) disagree", probe
            );
        }
    }

    #[test]
    fn query_results_are_disjoint_ranges(deps in arb_deps(), probe in arb_probe()) {
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let found = taco.find_dependents(probe);
        for (i, a) in found.iter().enumerate() {
            for b in found.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn decompression_round_trips(deps in arb_deps()) {
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let mut got: Vec<(Range, Cell)> =
            taco.decompress_all().into_iter().map(|d| (d.prec, d.dep)).collect();
        let mut want: Vec<(Range, Cell)> = deps.iter().map(|d| (d.prec, d.dep)).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn clearing_matches_nocomp(
        deps in arb_deps(),
        clear in arb_probe(),
        probe in arb_probe(),
    ) {
        let mut taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let mut nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        taco.clear_cells(clear);
        nocomp.clear_cells(clear);
        prop_assert_eq!(
            cells_of(&taco.find_dependents(probe)),
            cells_of(&nocomp.find_dependents(probe))
        );
        prop_assert_eq!(
            cells_of(&taco.find_precedents(probe)),
            cells_of(&nocomp.find_precedents(probe))
        );
        // Decompression after clearing must contain no dependent inside the
        // cleared region.
        for d in taco.decompress_all() {
            prop_assert!(!clear.contains_cell(d.dep), "{} survived clear {}", d.dep, clear);
        }
    }

    #[test]
    fn insert_order_does_not_change_answers(deps in arb_deps(), probe in arb_probe()) {
        let forward = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let backward = FormulaGraph::build(Config::taco_full(), deps.iter().rev().copied());
        prop_assert_eq!(
            cells_of(&forward.find_dependents(probe)),
            cells_of(&backward.find_dependents(probe))
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_answers(deps in arb_deps(), probe in arb_probe()) {
        let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let restored = FormulaGraph::restore(g.snapshot());
        prop_assert_eq!(restored.num_edges(), g.num_edges());
        prop_assert_eq!(
            cells_of(&restored.find_dependents(probe)),
            cells_of(&g.find_dependents(probe))
        );
        prop_assert_eq!(
            cells_of(&restored.find_precedents(probe)),
            cells_of(&g.find_precedents(probe))
        );
    }

    #[test]
    fn compression_never_inflates_edge_count(deps in arb_deps()) {
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        prop_assert!(taco.num_edges() <= nocomp.num_edges());
        prop_assert_eq!(nocomp.num_edges() as u64, nocomp.dependencies_inserted());
        // Stats bookkeeping agrees with the arena.
        let s = taco.stats();
        prop_assert_eq!(s.edges as u64 + s.reduced.total(), s.dependencies);
    }
}
