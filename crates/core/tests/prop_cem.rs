//! Greedy-vs-exact: on any small instance, the exact CEM optimum is a
//! lower bound on the greedy compressor's edge count, and on clean
//! single-run instances greedy achieves the optimum.

use proptest::prelude::*;
use taco_core::{cem, Config, Dependency, FormulaGraph};
use taco_grid::{Cell, Range};

fn arb_small_instance() -> impl Strategy<Value = Vec<Dependency>> {
    // 1-3 short runs of assorted shapes + up to 2 noise singles, ≤ 12 deps.
    let run = (1u32..6, 1u32..6, 2u32..4, 0u8..4).prop_map(|(col, row0, len, kind)| {
        let col = col + 2;
        let mut out = Vec::new();
        for k in 0..len {
            let row = row0 + k;
            let prec = match kind {
                0 => Range::from_coords(col - 1, row, col - 1, row + 1),
                1 => Range::from_coords(col - 2, 1, col - 2, 3),
                2 => Range::from_coords(col - 1, row0, col - 1, row),
                _ => Range::cell(Cell::new(col - 1, row)),
            };
            out.push(Dependency::new(prec, Cell::new(col, row)));
        }
        out
    });
    let noise = (1u32..8, 1u32..8, 1u32..8, 1u32..8).prop_map(|(pc, pr, dc, dr)| {
        vec![Dependency::new(Range::cell(Cell::new(pc, pr)), Cell::new(dc, dr))]
    });
    prop::collection::vec(prop_oneof![3 => run, 1 => noise], 1..4).prop_map(|chunks| {
        let mut seen = std::collections::BTreeSet::new();
        chunks.into_iter().flatten().filter(|d| seen.insert((d.prec, d.dep))).take(12).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_lower_bounds_greedy(deps in arb_small_instance()) {
        let cfg = Config::taco_full();
        let greedy = FormulaGraph::build(cfg.clone(), deps.iter().copied()).num_edges();
        if let Some(exact) = cem::exact_min_edges(&deps, &cfg, 3_000_000) {
            prop_assert!(exact <= greedy, "exact {exact} > greedy {greedy}");
            // Greedy is a decent approximation on these instances.
            prop_assert!(greedy <= exact.saturating_mul(3).max(deps.len().min(3)),
                "greedy {greedy} too far from exact {exact}");
        }
    }

    #[test]
    fn greedy_is_optimal_on_single_runs(col in 3u32..8, row0 in 1u32..5, len in 2u32..8) {
        // One clean sliding-window run: the optimum is exactly 1.
        let deps: Vec<Dependency> = (0..len)
            .map(|k| {
                Dependency::new(
                    Range::from_coords(col - 2, row0 + k, col - 1, row0 + k + 2),
                    Cell::new(col, row0 + k),
                )
            })
            .collect();
        let cfg = Config::taco_full();
        let greedy = FormulaGraph::build(cfg.clone(), deps.iter().copied()).num_edges();
        prop_assert_eq!(greedy, 1);
        prop_assert_eq!(cem::exact_min_edges(&deps, &cfg, 1_000_000), Some(1));
    }
}
