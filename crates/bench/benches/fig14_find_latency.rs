//! Fig. 14: find-dependents latency on the top-10 sheets — TACO, NoComp,
//! CellGraph (RedisGraph stand-in), Antifreeze (lookup-table queries).

use taco_baselines::{Antifreeze, CellGraph};
use taco_bench::{build_backend, build_graph, corpora, fmt_ms, header, ms, time, top_n_by};
use taco_core::{Config, DependencyBackend};
use taco_grid::Range;
use taco_workload::stats::measure_on;

fn main() {
    header("Fig. 14 — find-dependents latency on top-10 sheets");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "sheet", "TACO", "NoComp", "CellGraph", "Antifreeze"
    );
    for corpus in corpora() {
        let ranked = top_n_by(&corpus.sheets, 10, |s| ms(build_graph(Config::taco_full(), s).1));
        for (i, sheet) in ranked.iter().enumerate() {
            let (taco, _) = build_graph(Config::taco_full(), sheet);
            let (nocomp, _) = build_graph(Config::nocomp(), sheet);
            let stats = measure_on(sheet, &taco);
            let probe = Range::cell(sheet.hot_cells[stats.max_dependents_cell]);

            let (_, t) = time(|| taco.find_dependents(probe));
            let (_, n) = time(|| nocomp.find_dependents(probe));

            let mut cg = CellGraph::new();
            cg.edge_limit = 5_000_000;
            build_backend(&mut cg, &sheet.deps);
            let cg_txt = if cg.did_not_finish {
                "DNF(X)".to_string()
            } else {
                let (_, d) = time(|| cg.find_dependents(probe));
                fmt_ms(ms(d))
            };

            let mut af = Antifreeze::new();
            af.build_budget = 3_000_000;
            build_backend(&mut af, &sheet.deps);
            af.rebuild_table();
            let af_txt = if af.did_not_finish {
                "DNF(X)".to_string()
            } else {
                let (_, d) = time(|| af.find_dependents(probe));
                fmt_ms(ms(d))
            };

            println!(
                "{:<12} {:>12} {:>12} {:>14} {:>14}",
                format!("{}max{}", corpus.params.name, i + 1),
                fmt_ms(ms(t)),
                fmt_ms(ms(n)),
                cg_txt,
                af_txt
            );
        }
    }
}
