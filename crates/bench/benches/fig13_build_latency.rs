//! Fig. 13: graph build latency on the top-10 hardest sheets per corpus —
//! TACO, NoComp, CellGraph (RedisGraph stand-in), Antifreeze. A red `DNF`
//! marks builds exceeding the budget, as in the paper.

use taco_baselines::{Antifreeze, CellGraph};
use taco_bench::{build_backend, build_graph, corpora, fmt_ms, header, ms, time, top_n_by};
use taco_core::Config;

fn main() {
    header("Fig. 13 — build latency on top-10 sheets (maxi = hardest for TACO)");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "sheet", "TACO", "NoComp", "CellGraph", "Antifreeze"
    );
    for corpus in corpora() {
        // Rank by TACO build time, like the paper.
        let ranked = top_n_by(&corpus.sheets, 10, |s| ms(build_graph(Config::taco_full(), s).1));
        for (i, sheet) in ranked.iter().enumerate() {
            let (_, taco_t) = build_graph(Config::taco_full(), sheet);
            let (_, nocomp_t) = build_graph(Config::nocomp(), sheet);

            let mut cg = CellGraph::new();
            cg.edge_limit = 5_000_000;
            let cg_t = build_backend(&mut cg, &sheet.deps);
            let cg_txt = if cg.did_not_finish { "DNF(X)".to_string() } else { fmt_ms(ms(cg_t)) };

            let mut af = Antifreeze::new();
            af.build_budget = 3_000_000;
            let af_t = {
                let mut total = build_backend(&mut af, &sheet.deps);
                let (_, t) = time(|| af.rebuild_table());
                total += t;
                total
            };
            let af_txt = if af.did_not_finish { "DNF(X)".to_string() } else { fmt_ms(ms(af_t)) };

            println!(
                "{:<12} {:>12} {:>12} {:>14} {:>14}",
                format!("{}max{}", corpus.params.name, i + 1),
                fmt_ms(ms(taco_t)),
                fmt_ms(ms(nocomp_t)),
                cg_txt,
                af_txt
            );
        }
    }
}
