//! Criterion microbenchmarks: the four key functions must be O(1) in the
//! number of compressed dependencies (§III-B "Algorithmic complexity"),
//! and the graph-level operations should scale as analyzed in Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taco_core::{Config, Dependency, FormulaGraph, PatternType};
use taco_grid::{Cell, Range};

/// Builds one RR compressed edge covering `n` dependencies.
fn rr_edge(n: u32) -> taco_core::Edge {
    let mk = |row: u32| Dependency::new(Range::from_coords(1, row, 2, row + 2), Cell::new(5, row));
    let mut e = taco_core::Edge::single(&mk(1));
    let second = mk(2);
    e = e.try_pair(&second, PatternType::RR, taco_grid::Axis::Col).unwrap();
    for row in 3..=n {
        e = e.try_extend(&mk(row)).unwrap();
    }
    e
}

fn bench_key_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_functions_o1");
    for n in [100u32, 10_000, 1_000_000] {
        let e = rr_edge(n);
        let probe = Range::from_coords(1, n / 2, 2, n / 2);
        group.bench_with_input(BenchmarkId::new("find_dep", n), &e, |b, e| {
            b.iter(|| black_box(e.find_dep(black_box(probe))))
        });
        let s = Range::from_coords(5, n / 2, 5, n / 2 + 1);
        group.bench_with_input(BenchmarkId::new("find_prec", n), &e, |b, e| {
            b.iter(|| black_box(e.find_prec(black_box(s))))
        });
        let next = Dependency::new(Range::from_coords(1, n + 1, 2, n + 3), Cell::new(5, n + 1));
        group.bench_with_input(BenchmarkId::new("add_dep", n), &e, |b, e| {
            b.iter(|| black_box(e.try_extend(black_box(&next))))
        });
        group.bench_with_input(BenchmarkId::new("remove_dep", n), &e, |b, e| {
            b.iter(|| black_box(e.remove_dep(black_box(s))))
        });
    }
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(20);
    for n in [1_000u32, 10_000] {
        // A sheet with RR windows + an FF lookup block.
        let mut deps = Vec::new();
        for row in 1..=n {
            deps.push(Dependency::new(Range::from_coords(1, row, 1, row + 1), Cell::new(3, row)));
            deps.push(Dependency::new(Range::from_coords(5, 1, 6, 10), Cell::new(8, row)));
        }
        group.bench_with_input(BenchmarkId::new("build_taco", n), &deps, |b, deps| {
            b.iter(|| FormulaGraph::build(Config::taco_full(), deps.iter().copied()))
        });
        group.bench_with_input(BenchmarkId::new("build_nocomp", n), &deps, |b, deps| {
            b.iter(|| FormulaGraph::build(Config::nocomp(), deps.iter().copied()))
        });
        let taco = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let nocomp = FormulaGraph::build(Config::nocomp(), deps.iter().copied());
        let probe = Range::cell(Cell::new(5, 5)); // the hot lookup table
        group.bench_with_input(BenchmarkId::new("find_dep_taco", n), &taco, |b, g| {
            b.iter(|| black_box(g.find_dependents(black_box(probe))))
        });
        group.bench_with_input(BenchmarkId::new("find_dep_nocomp", n), &nocomp, |b, g| {
            b.iter(|| black_box(g.find_dependents(black_box(probe))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_key_functions, bench_graph_ops);
criterion_main!(benches);
