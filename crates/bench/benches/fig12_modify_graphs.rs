//! Fig. 12: CDFs of the time to modify formula graphs — remove the content
//! of a column of 1K cells starting at the cell with the most dependents.

use taco_bench::{build_graph, cdf_line, corpora, header, ms, time};
use taco_core::Config;
use taco_grid::{Cell, Range, MAX_ROW};
use taco_workload::stats::measure_on;

fn main() {
    header("Fig. 12 — time to modify formula graphs (clear 1K-cell column)");
    for corpus in corpora() {
        let mut taco_ms = Vec::new();
        let mut nocomp_ms = Vec::new();
        for sheet in &corpus.sheets {
            let (taco, _) = build_graph(Config::taco_full(), sheet);
            let (nocomp, _) = build_graph(Config::nocomp(), sheet);
            let stats = measure_on(sheet, &taco);
            let start = sheet.hot_cells[stats.max_dependents_cell];
            let clear = Range::new(start, Cell::new(start.col, (start.row + 999).min(MAX_ROW)));
            let mut taco = taco;
            let mut nocomp = nocomp;
            let (_, t) = time(|| taco.clear_cells(clear));
            let (_, n) = time(|| nocomp.clear_cells(clear));
            taco_ms.push(ms(t));
            nocomp_ms.push(ms(n));
        }
        println!("\n[{}]", corpus.params.name);
        cdf_line("  TACO", &taco_ms);
        cdf_line("  NoComp", &nocomp_ms);
    }
}
