//! Persistence: bytes-per-edge and save/open latency of the `taco_store`
//! binary container against the serde-JSON `GraphSnapshot` baseline.
//!
//! Part one measures the graph section alone — both corpus presets ×
//! every `FormulaGraph` backend configuration (TACO-Full, TACO-InRow,
//! NoComp) — because the backend decides how many edges there are to
//! store: compression helps twice, once in memory and once on disk.
//!
//! Part two measures the whole-workbook path the engine actually runs:
//! build from the persistence workload's edit script, save, append the
//! edit burst to the WAL, then reopen (snapshot decode + WAL replay) —
//! with a verification pass so the timings can never drift away from a
//! correct implementation.

use std::time::Instant;
use taco_bench::{corpora, fmt_ms, header, ms, time};
use taco_core::Config;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, SheetId, Workbook};
use taco_store::{decode_graph, encode_graph};
use taco_workload::{gen_persist_workload, persist_enron_like, persist_github_like};

fn main() {
    header("Persistence — graph sections: binary vs serde-JSON");
    println!(
        "{:<8} {:<12} {:>10} {:>12} {:>12} {:>9} {:>9} {:>8} {:>10} {:>10}",
        "corpus",
        "backend",
        "edges",
        "binary B",
        "json B",
        "B/edge",
        "B/dep",
        "ratio",
        "enc",
        "dec"
    );
    for corpus in corpora() {
        for (label, config) in [
            ("TACO-Full", Config::taco_full()),
            ("TACO-InRow", Config::taco_in_row()),
            ("NoComp", Config::nocomp()),
        ] {
            let mut edges = 0u64;
            let mut deps = 0u64;
            let mut binary = 0u64;
            let mut json = 0u64;
            let mut enc_ms = 0.0;
            let mut dec_ms = 0.0;
            for sheet in &corpus.sheets {
                let (g, _) = taco_bench::build_graph(config.clone(), sheet);
                let snap = g.snapshot();
                edges += snap.edges.len() as u64;
                deps += snap.dependencies_inserted;
                let (bytes, te) = time(|| encode_graph(&snap));
                let (back, td) = time(|| decode_graph(&bytes).expect("own encoding decodes"));
                assert_eq!(back, snap, "graph round trip must be lossless");
                binary += bytes.len() as u64;
                json += serde_json::to_string(&snap).expect("serialize").len() as u64;
                enc_ms += ms(te);
                dec_ms += ms(td);
            }
            println!(
                "{:<8} {:<12} {:>10} {:>12} {:>12} {:>9.1} {:>9.2} {:>7.1}x {:>10} {:>10}",
                corpus.params.name,
                label,
                edges,
                binary,
                json,
                binary as f64 / edges.max(1) as f64,
                binary as f64 / deps.max(1) as f64,
                json as f64 / binary.max(1) as f64,
                fmt_ms(enc_ms),
                fmt_ms(dec_ms),
            );
            assert!(
                json >= 3 * binary,
                "{}/{label}: binary snapshot must be ≥ 3× smaller than serde-JSON \
                 (binary {binary} B, json {json} B)",
                corpus.params.name
            );
        }
    }

    header("Persistence — workbook save / WAL burst / reopen");
    println!(
        "{:<8} {:>7} {:>8} {:>11} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "preset", "sheets", "edits", "snapshot B", "wal B", "save", "open", "open+wal", "replayed"
    );
    for params in [persist_enron_like(), persist_github_like()] {
        let w = gen_persist_workload(&params);
        let mut wb = Workbook::with_taco();
        for rec in &w.build {
            wb.apply_edit(rec).expect("build script applies");
        }
        wb.recalculate(RecalcMode::Serial);

        let dir = std::env::temp_dir();
        let path = dir.join(format!("taco_bench_persist_{}_{}.taco", w.name, std::process::id()));
        let wal = taco_engine::wal_path(&path);

        let start = Instant::now();
        let mut pers = PersistentWorkbook::create(
            &path,
            wb,
            PersistOptions { compact_after_records: 0, sync_every_records: 0 },
        )
        .expect("create store");
        let save = start.elapsed();
        let snapshot_bytes = std::fs::metadata(&path).expect("snapshot written").len();

        // Snapshot-only reopen (the WAL is still empty).
        let (reopened, open) = time(|| Workbook::open(&path).expect("reopen"));
        assert_eq!(reopened.sheet_count(), pers.workbook().sheet_count());

        // The edit burst goes to the WAL; reopen then replays it.
        for rec in &w.burst {
            pers.log_edit(rec).expect("burst applies");
        }
        pers.sync().expect("fsync point");
        let wal_bytes = std::fs::metadata(&wal).expect("wal written").len();
        let (mut replayed, open_wal) = time(|| Workbook::open(&path).expect("reopen with WAL"));

        // Verification: the reopened workbook recalculates bit-identically
        // to the live one.
        let mut live = pers;
        let evaluated_live = live.recalculate(RecalcMode::Parallel { threads: 8 });
        let evaluated_replay = replayed.recalculate(RecalcMode::Serial);
        assert_eq!(evaluated_live, evaluated_replay, "same dirty work on reopen");
        for i in 0..replayed.sheet_count() {
            let id = SheetId(i);
            for (cell, content) in live.workbook().sheet(id).cells() {
                assert_eq!(replayed.value(id, cell), *content.value(), "sheet {i} {cell}");
            }
        }

        println!(
            "{:<8} {:>7} {:>8} {:>11} {:>10} {:>10} {:>10} {:>11} {:>10}",
            w.name,
            replayed.sheet_count(),
            w.build.len() + w.burst.len(),
            snapshot_bytes,
            wal_bytes,
            fmt_ms(ms(save)),
            fmt_ms(ms(open)),
            fmt_ms(ms(open_wal)),
            w.burst.len(),
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
    }
}
