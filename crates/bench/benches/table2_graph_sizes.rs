//! Table II: total vertices and edges of the formula graphs built by
//! NoComp, TACO-InRow, and TACO-Full over each corpus (lower is better).

use taco_bench::{build_graph, corpora, header};
use taco_core::Config;

fn main() {
    header("Table II — graph sizes after compression");
    println!(
        "{:<10} {:<12} {:>14} {:>14} {:>10} {:>10}",
        "corpus", "system", "vertices", "edges", "vert %", "edge %"
    );
    for corpus in corpora() {
        let mut totals: Vec<(&str, u64, u64)> = Vec::new();
        for (label, config) in [
            ("NoComp", Config::nocomp()),
            ("TACO-InRow", Config::taco_in_row()),
            ("TACO-Full", Config::taco_full()),
        ] {
            let mut vertices = 0u64;
            let mut edges = 0u64;
            for sheet in &corpus.sheets {
                let (g, _) = build_graph(config.clone(), sheet);
                let s = g.stats();
                vertices += s.vertices as u64;
                edges += s.edges as u64;
            }
            totals.push((label, vertices, edges));
        }
        let (base_v, base_e) = (totals[0].1, totals[0].2);
        for (label, v, e) in totals {
            println!(
                "{:<10} {:<12} {:>14} {:>14} {:>9.1}% {:>9.1}%",
                corpus.params.name,
                label,
                v,
                e,
                100.0 * v as f64 / base_v as f64,
                100.0 * e as f64 / base_e as f64
            );
        }
    }
}
