//! Table V: edges reduced by each pattern (total across the corpus and the
//! per-sheet maximum), plus the §V RR-GapOne comparison.

use taco_bench::{build_graph, corpora, header};
use taco_core::{Config, PatternCounts, PatternType};

fn main() {
    header("Table V — edges reduced per pattern");
    println!("{:<10} {:<10} {:>14} {:>14}", "corpus", "pattern", "total", "max(sheet)");
    for corpus in corpora() {
        let mut total = PatternCounts::default();
        let mut max = PatternCounts::default();
        let mut gap_total = 0u64;
        for sheet in &corpus.sheets {
            let (g, _) = build_graph(Config::taco_full(), sheet);
            let s = g.stats();
            total.merge(&s.reduced);
            max.max_with(&s.reduced);
            // §V: prevalence of the exploratory RR-GapOne pattern.
            let (g2, _) = build_graph(Config::taco_with_gap_one(), sheet);
            gap_total += g2.stats().reduced.rr_gap_one;
        }
        for p in [
            PatternType::RR,
            PatternType::RF,
            PatternType::FR,
            PatternType::FF,
            PatternType::RRChain,
        ] {
            println!(
                "{:<10} {:<10} {:>14} {:>14}",
                corpus.params.name,
                format!("{p:?}"),
                total.get(p),
                max.get(p)
            );
        }
        if gap_total > 0 {
            println!(
                "{:<10} {:<10} {:>14}   (§V: ~{}x less prevalent than RR)",
                corpus.params.name,
                "RR-GapOne",
                gap_total,
                total.rr / gap_total
            );
        } else {
            println!("{:<10} {:<10} {:>14}", corpus.params.name, "RR-GapOne", 0);
        }
    }
}
