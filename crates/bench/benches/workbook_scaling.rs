//! Workbook scaling: sharded build and whole-workbook dependents queries
//! vs sheet count and thread count, plus recalculation speedup of the
//! level scheduler.
//!
//! The workbook shards one compressed formula graph per sheet, so graph
//! *builds* parallelize across sheets (scoped threads), and cross-sheet
//! dependents queries pay the per-sheet compressed query plus edge-table
//! hops. `TACO_SCALE` stretches the per-sheet dependency counts.

use std::time::Instant;
use taco_bench::{cell_count, fmt_ms, header, ms, scale, time};
use taco_core::{Config, Dependency};
use taco_engine::{CrossEdge, RecalcMode, SheetId, Workbook};
use taco_grid::{Cell, Range};
use taco_workload::{gen_workbook, SheetParams, WorkbookParams};

fn build_inputs(sheets: usize, per_sheet_deps: u64) -> taco_workload::SyntheticWorkbook {
    gen_workbook(&WorkbookParams {
        name: format!("bench-{sheets}"),
        sheets,
        sheet: SheetParams { target_deps: per_sheet_deps, ..SheetParams::default() },
        cross_frac: 0.03,
        seed: 0xB00C + sheets as u64,
    })
}

fn as_workbook(wb: &taco_workload::SyntheticWorkbook, threads: usize) -> Workbook {
    let names: Vec<String> = wb.sheets.iter().map(|s| s.name.clone()).collect();
    let sheets: Vec<(&str, &[Dependency])> =
        names.iter().map(String::as_str).zip(wb.sheets.iter().map(|s| s.deps.as_slice())).collect();
    let cross: Vec<CrossEdge> = wb
        .cross
        .iter()
        .map(|d| CrossEdge {
            src: SheetId(d.src_sheet),
            prec: d.prec,
            dst: SheetId(d.dst_sheet),
            dep: d.dep,
        })
        .collect();
    Workbook::from_sheet_deps(Config::taco_full(), &sheets, &cross, threads)
        .expect("generated workbook is well-formed")
}

fn main() {
    let per_sheet = (30_000.0 * scale()) as u64 + 2_000;
    header(&format!("Workbook scaling — {per_sheet} deps/sheet (TACO_SCALE={})", scale()));

    for sheets in [2usize, 4, 8] {
        let input = build_inputs(sheets, per_sheet);
        println!(
            "\n[{} sheets, {} local + {} cross deps]",
            sheets,
            input.total_deps() - input.cross.len(),
            input.cross.len()
        );

        // Build: per-sheet graph compression, serial vs scoped threads.
        let mut serial_build_ms = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let (wb, t) = time(|| as_workbook(&input, threads));
            if threads == 1 {
                serial_build_ms = ms(t);
            }
            println!(
                "  build  threads={threads}: {:>10}  ({:.2}x vs serial)",
                fmt_ms(ms(t)),
                serial_build_ms / ms(t).max(1e-9)
            );
            drop(wb);
        }

        // Whole-workbook dependents: probe every sheet's hottest cell and
        // the head of the reserved cross-chain strip.
        let mut wb = as_workbook(&input, 8);
        let mut probes: Vec<(SheetId, Cell)> = input
            .sheets
            .iter()
            .enumerate()
            .map(|(i, s)| (SheetId(i), s.longest_path_cell))
            .collect();
        // Probe actual cross-chain precedent cells, so the numbers include
        // edge-table hops by construction.
        for d in input.cross.iter().filter(|d| d.prec.is_cell()).take(3) {
            probes.push((SheetId(d.src_sheet), d.prec.head()));
        }
        let start = Instant::now();
        let mut found = 0u64;
        for &(sid, cell) in &probes {
            let deps = wb.find_dependents(sid, Range::cell(cell));
            found += cell_count(&deps.iter().map(|&(_, r)| r).collect::<Vec<_>>());
        }
        println!(
            "  query  {} whole-workbook dependents probes: {:>10}  ({} dependent cells)",
            probes.len(),
            fmt_ms(ms(start.elapsed())),
            found
        );
    }

    // Recalculation: a formula workbook (cross-sheet rollup chain), serial
    // vs parallel scheduler.
    let rows = (400.0 * scale()) as u32 + 50;
    header(&format!("Workbook recalc — 8 sheets × {rows} cumulative rows"));
    let build = || {
        let mut wb = Workbook::with_taco();
        let ids: Vec<SheetId> =
            (0..8).map(|i| wb.add_sheet(&format!("S{i}")).expect("fresh name")).collect();
        for (k, &id) in ids.iter().enumerate() {
            for row in 1..=rows {
                wb.set_value(id, Cell::new(1, row), taco_engine::Value::Number(f64::from(row)));
            }
            wb.set_formula(id, Cell::new(2, 1), "=SUM($A$1:A1)").expect("valid formula");
            wb.autofill(id, Cell::new(2, 1), Range::from_coords(2, 2, 2, rows)).expect("fill");
            if k > 0 {
                wb.set_formula(id, Cell::new(3, 1), &format!("=S{}!C1+B{rows}", k - 1))
                    .expect("valid formula");
            } else {
                wb.set_formula(id, Cell::new(3, 1), &format!("=B{rows}")).expect("valid formula");
            }
        }
        wb
    };
    let mut reference = None;
    for (label, mode) in [
        ("serial", RecalcMode::Serial),
        ("2 threads", RecalcMode::Parallel { threads: 2 }),
        ("8 threads", RecalcMode::Parallel { threads: 8 }),
    ] {
        let mut wb = build();
        let (evaluated, t) = time(|| wb.recalculate(mode));
        let total = wb.value(SheetId(7), Cell::new(3, 1));
        match &reference {
            None => reference = Some(total),
            Some(r) => assert_eq!(r, &total, "modes must agree bit-for-bit"),
        }
        println!("  recalc {label:<10} {evaluated} cells: {:>10}", fmt_ms(ms(t)));
    }
    println!("  all modes produced identical values");
}
