//! Fig. 1: probability distributions of the maximum number of dependents
//! and the longest path per spreadsheet, for both corpora.

use taco_bench::{corpora, header};
use taco_workload::stats::{fig1_buckets, measure};

fn main() {
    header("Fig. 1 — max dependents / longest path distributions");
    println!("buckets: (0,100] (100,1e3] (1e3,1e4] (1e4,+inf)");
    for corpus in corpora() {
        let stats: Vec<_> = corpus.sheets.iter().map(measure).collect();
        let max_dep = fig1_buckets(stats.iter().map(|s| s.max_dependents));
        let longest = fig1_buckets(stats.iter().map(|s| u64::from(s.longest_path)));
        println!("\n[{}] {} sheets", corpus.params.name, corpus.sheets.len());
        println!(
            "  Maximum Dependents: {:.2} {:.2} {:.2} {:.2}",
            max_dep[0], max_dep[1], max_dep[2], max_dep[3]
        );
        println!(
            "  Longest Path:       {:.2} {:.2} {:.2} {:.2}",
            longest[0], longest[1], longest[2], longest[3]
        );
        let biggest = stats.iter().map(|s| s.max_dependents).max().unwrap_or(0);
        let longest_any = stats.iter().map(|s| s.longest_path).max().unwrap_or(0);
        println!("  (largest fan-out {biggest} cells; longest path {longest_any} edges)");
    }
}
