//! Machine-readable perf baseline for the hot query/maintenance paths.
//!
//! Measures, for both corpus presets: graph build (incremental grow vs
//! STR-packed `build`, plus snapshot `restore`), fig10/fig14-style
//! find-dependents probes (latency + `QueryStats` counters, scratch vs
//! plain), fig15-style maintenance (clear a 1K column), and an R-tree
//! fanout sweep (8 vs 16 vs 32) over the largest sheet's edge set.
//!
//! Contract asserts (these fail the bench, and CI runs it in quick mode):
//!
//! - scratch and plain queries return identical results and stats;
//! - the STR-packed index never visits more R-tree nodes than the
//!   insertion-grown index, summed over the probe set (and strictly
//!   fewer when the corpus is big enough to matter);
//! - steady-state `find_dependents_with_scratch` performs **zero** heap
//!   allocations (counted by a `#[global_allocator]` wrapper);
//! - every fanout answers the sweep probes with identical hit counts.
//!
//! With `TACO_BENCH_JSON=path` the run also writes the collected numbers
//! as JSON — commit the artifact to track the perf trajectory over PRs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use taco_bench::{build_graph, corpora, fmt_ms, header, ms, time};
use taco_core::{Config, FormulaGraph, QueryScratch, QueryStats};
use taco_grid::{Cell, Range, MAX_ROW};
use taco_rtree::FanoutRTree;
use taco_workload::stats::measure_on;

/// Counts every allocation and reallocation (frees are not interesting
/// for the steady-state contract).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Builds the graph the pre-bulk-load way: one insert at a time, no
/// final STR repack (the comparison baseline for node-visit counts).
fn grow_graph(config: Config, deps: &[taco_core::Dependency]) -> FormulaGraph {
    let mut g = FormulaGraph::new(config);
    for d in deps {
        g.add_dependency(d);
    }
    g
}

#[derive(Default)]
struct Agg {
    stats: QueryStats,
    queries: u64,
    total_ms: f64,
}

impl Agg {
    fn add(&mut self, s: QueryStats, t: f64) {
        self.stats.edges_accessed += s.edges_accessed;
        self.stats.enqueued += s.enqueued;
        self.stats.rtree_searches += s.rtree_searches;
        self.stats.nodes_visited += s.nodes_visited;
        self.queries += 1;
        self.total_ms += t;
    }
}

fn main() {
    header("queries baseline — build/query/maintenance + QueryStats (JSON-able)");
    let mut out = JsonObj::new();
    out.num("scale", taco_bench::scale());
    out.num("default_fanout", taco_rtree::DEFAULT_FANOUT as f64);
    let mut corpora_json = Vec::new();

    for corpus in corpora() {
        let name = &corpus.params.name;
        let mut cj = JsonObj::new();
        cj.str("name", name);
        cj.num("sheets", corpus.sheets.len() as f64);

        // ---- build: grown vs packed vs restored --------------------------
        let total_deps: usize = corpus.sheets.iter().map(|s| s.deps.len()).sum();
        cj.num("dependencies", total_deps as f64);
        let (grown_graphs, grow_t) = time(|| {
            corpus
                .sheets
                .iter()
                .map(|s| grow_graph(Config::taco_full(), &s.deps))
                .collect::<Vec<_>>()
        });
        let (packed_graphs, build_t) = time(|| {
            corpus.sheets.iter().map(|s| build_graph(Config::taco_full(), s).0).collect::<Vec<_>>()
        });
        let snapshots: Vec<_> = packed_graphs.iter().map(|g| g.snapshot()).collect();
        let (restored, restore_t) =
            time(|| snapshots.into_iter().map(FormulaGraph::restore).collect::<Vec<_>>());
        drop(restored);
        cj.num("build_grow_ms", ms(grow_t));
        cj.num("build_packed_ms", ms(build_t));
        cj.num("restore_ms", ms(restore_t));
        println!(
            "\n[{name}] build: grow {} · build+pack {} · restore {}  ({total_deps} deps)",
            fmt_ms(ms(grow_t)),
            fmt_ms(ms(build_t)),
            fmt_ms(ms(restore_t))
        );

        // ---- queries: fig10/fig14 probes on every sheet ------------------
        let mut scratch = QueryScratch::new();
        let mut hits: Vec<Range> = Vec::new();
        let mut packed_agg = Agg::default();
        let mut grown_agg = Agg::default();
        for (sheet, (packed, grown)) in
            corpus.sheets.iter().zip(packed_graphs.iter().zip(grown_graphs.iter()))
        {
            let sstats = measure_on(sheet, packed);
            let probes = [sheet.hot_cells[sstats.max_dependents_cell], sheet.longest_path_cell];
            for probe in probes.map(Range::cell) {
                let (plain, plain_stats) = packed.find_dependents_with_stats(probe);
                let t0 = Instant::now();
                let stats = packed.find_dependents_with_scratch(probe, &mut scratch, &mut hits);
                let dt = ms(t0.elapsed());
                assert_eq!(hits, plain, "scratch/plain results diverge on {}", sheet.name);
                assert_eq!(stats, plain_stats, "scratch/plain stats diverge on {}", sheet.name);
                packed_agg.add(stats, dt);

                let (_, gstats) = grown.find_dependents_with_stats(probe);
                let t0 = Instant::now();
                let _ = grown.find_dependents_with_scratch(probe, &mut scratch, &mut hits);
                grown_agg.add(gstats, ms(t0.elapsed()));
            }
        }
        assert!(
            packed_agg.stats.nodes_visited <= grown_agg.stats.nodes_visited,
            "[{name}] STR-packed index must not visit more nodes \
             (packed {} vs grown {})",
            packed_agg.stats.nodes_visited,
            grown_agg.stats.nodes_visited
        );
        let big_enough = corpus.sheets.iter().any(|s| s.deps.len() >= 512);
        if big_enough {
            assert!(
                packed_agg.stats.nodes_visited < grown_agg.stats.nodes_visited,
                "[{name}] expected strictly fewer node visits after packing"
            );
        }
        println!(
            "[{name}] queries: {} probes · packed visits {} (grown {}) · \
             edges {} · searches {} · {} total",
            packed_agg.queries,
            packed_agg.stats.nodes_visited,
            grown_agg.stats.nodes_visited,
            packed_agg.stats.edges_accessed,
            packed_agg.stats.rtree_searches,
            fmt_ms(packed_agg.total_ms),
        );
        cj.num("query_probes", packed_agg.queries as f64);
        cj.num("query_total_ms", packed_agg.total_ms);
        cj.num("nodes_visited_packed", packed_agg.stats.nodes_visited as f64);
        cj.num("nodes_visited_grown", grown_agg.stats.nodes_visited as f64);
        cj.num("edges_accessed", packed_agg.stats.edges_accessed as f64);
        cj.num("rtree_searches", packed_agg.stats.rtree_searches as f64);
        cj.num("enqueued", packed_agg.stats.enqueued as f64);

        // ---- allocation discipline: zero steady-state allocs per query ---
        let (big_idx, _) = corpus
            .sheets
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.deps.len())
            .expect("corpora are non-empty");
        let big = &packed_graphs[big_idx];
        let sheet = &corpus.sheets[big_idx];
        let sstats = measure_on(sheet, big);
        let probe = Range::cell(sheet.hot_cells[sstats.max_dependents_cell]);
        // Warm the scratch and result buffers to their high-water mark.
        for _ in 0..3 {
            big.find_dependents_with_scratch(probe, &mut scratch, &mut hits);
            big.find_precedents_with_scratch(probe, &mut scratch, &mut hits);
        }
        let before = allocations();
        for _ in 0..10 {
            big.find_dependents_with_scratch(probe, &mut scratch, &mut hits);
            big.find_precedents_with_scratch(probe, &mut scratch, &mut hits);
        }
        let steady = allocations() - before;
        assert_eq!(
            steady, 0,
            "[{name}] steady-state scratch queries must not allocate (got {steady})"
        );
        println!("[{name}] steady-state allocations over 20 warm queries: {steady}");
        cj.num("steady_state_allocs_per_query", steady as f64);

        // ---- maintenance: fig15-style 1K-column clear --------------------
        let mut maint_ms = 0.0;
        let mut maint_allocs = 0u64;
        let mut cleared_graphs = 0u64;
        for (sheet, packed) in corpus.sheets.iter().zip(packed_graphs.iter()) {
            let mut g = packed.clone();
            let sstats = measure_on(sheet, packed);
            let start = sheet.hot_cells[sstats.max_dependents_cell];
            let clear = Range::new(start, Cell::new(start.col, (start.row + 999).min(MAX_ROW)));
            // Warm the graph's own maintenance scratch with a clear of a
            // *different* hot column first (the scratch lives on `g`, so
            // the warm-up must run on the same instance the measurement
            // does); the measured clear then reflects steady state.
            let warm = sheet.hot_cells[(sstats.max_dependents_cell + 1) % sheet.hot_cells.len()];
            g.clear_cells(Range::new(warm, Cell::new(warm.col, (warm.row + 999).min(MAX_ROW))));
            let a0 = allocations();
            let t0 = Instant::now();
            g.clear_cells(clear);
            maint_ms += ms(t0.elapsed());
            maint_allocs += allocations() - a0;
            cleared_graphs += 1;
        }
        println!(
            "[{name}] maintenance: cleared 1K column on {cleared_graphs} graphs in {} \
             ({maint_allocs} allocations total)",
            fmt_ms(maint_ms)
        );
        cj.num("maintenance_clear_ms", maint_ms);
        cj.num("maintenance_clear_allocs", maint_allocs as f64);

        corpora_json.push(cj);
    }

    // ---- fanout sweep over the biggest graph's edge set ------------------
    let sweep = fanout_sweep();
    out.raw("fanout_sweep_ms", &sweep);
    out.arr("corpora", corpora_json);

    if let Ok(path) = std::env::var("TACO_BENCH_JSON") {
        std::fs::write(&path, out.finish()).expect("write TACO_BENCH_JSON");
        println!("\nwrote baseline JSON to {path}");
    }
}

/// Times window queries over the edge ranges of the largest sheet at
/// fanout 8/16/32, on two index shapes: the compressed TACO graph (a few
/// thousand entries) and the uncompressed NoComp graph (one entry per
/// dependency — the size regime where tree shape dominates). Asserts
/// identical hit counts per shape; returns a JSON fragment
/// `{"taco": {"8": ms, ...}, "nocomp": {...}}`.
fn fanout_sweep() -> String {
    let corpus = &corpora()[0];
    let sheet = corpus.sheets.iter().max_by_key(|s| s.deps.len()).expect("corpora are non-empty");
    let probes: Vec<Range> = sheet
        .hot_cells
        .iter()
        .map(|&c| Range::cell(c))
        .chain(
            sheet
                .hot_cells
                .iter()
                .map(|&c| Range::new(c, Cell::new(c.col + 4, (c.row + 63).min(MAX_ROW)))),
        )
        .collect();

    fn run<const F: usize>(items: &[(Range, usize)], probes: &[Range]) -> (f64, u64, u64) {
        let tree: FanoutRTree<usize, F> = FanoutRTree::bulk_load(items.to_vec());
        let mut scratch = taco_rtree::SearchScratch::new();
        let mut found = 0u64;
        let mut visited = 0u64;
        // Warm-up pass, then timed passes.
        for p in probes {
            tree.search_with(*p, &mut scratch, |_, _| {});
        }
        let t0 = Instant::now();
        for _ in 0..20 {
            for p in probes {
                visited += tree.search_with(*p, &mut scratch, |_, _| found += 1);
            }
        }
        (ms(t0.elapsed()), found, visited)
    }

    fn sweep(label: &str, items: &[(Range, usize)], probes: &[Range]) -> String {
        let (t8, h8, v8) = run::<8>(items, probes);
        let (t16, h16, v16) = run::<16>(items, probes);
        let (t32, h32, v32) = run::<32>(items, probes);
        assert!(h8 == h16 && h16 == h32, "fanouts must agree on hits");
        println!(
            "\nfanout sweep [{label}] over {} entries × {} probes × 20 reps:",
            items.len(),
            probes.len()
        );
        println!("  F=8 : {:>10}  visits {v8}", fmt_ms(t8));
        println!("  F=16: {:>10}  visits {v16}", fmt_ms(t16));
        println!("  F=32: {:>10}  visits {v32}", fmt_ms(t32));
        format!("{{\"8\":{t8:.3},\"16\":{t16:.3},\"32\":{t32:.3}}}")
    }

    let taco = build_graph(Config::taco_full(), sheet).0;
    let taco_items: Vec<(Range, usize)> =
        taco.edges().enumerate().map(|(i, e)| (e.prec, i)).collect();
    let nocomp_items: Vec<(Range, usize)> =
        sheet.deps.iter().enumerate().map(|(i, d)| (d.prec, i)).collect();
    let a = sweep("taco", &taco_items, &probes);
    let b = sweep("nocomp", &nocomp_items, &probes);
    format!("{{\"taco\":{a},\"nocomp\":{b}}}")
}

// ---- a tiny JSON writer (keys are plain ASCII identifiers) --------------

struct JsonObj {
    fields: Vec<String>,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj { fields: Vec::new() }
    }

    fn num(&mut self, key: &str, v: f64) {
        self.fields.push(format!("\"{key}\":{v:.3}"));
    }

    fn str(&mut self, key: &str, v: &str) {
        self.fields.push(format!("\"{key}\":\"{v}\""));
    }

    fn raw(&mut self, key: &str, json: &str) {
        self.fields.push(format!("\"{key}\":{json}"));
    }

    fn arr(&mut self, key: &str, items: Vec<JsonObj>) {
        let body: Vec<String> = items.into_iter().map(JsonObj::finish).collect();
        self.fields.push(format!("\"{key}\":[{}]", body.join(",")));
    }

    fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}
