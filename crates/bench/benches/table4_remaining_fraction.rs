//! Table IV: fraction of edges remaining after compression per sheet —
//! min / 25th percentile / median / mean (lower is better).

use taco_bench::{build_graph, corpora, header, percentile};
use taco_core::Config;

fn main() {
    header("Table IV — remaining edges after compression");
    println!(
        "{:<10} {:<12} {:>10} {:>10} {:>10} {:>10}",
        "corpus", "system", "min", "p25", "median", "mean"
    );
    for corpus in corpora() {
        for (label, config) in
            [("TACO-InRow", Config::taco_in_row()), ("TACO-Full", Config::taco_full())]
        {
            let fracs: Vec<f64> = corpus
                .sheets
                .iter()
                .map(|sheet| {
                    let (g, _) = build_graph(config.clone(), sheet);
                    g.stats().remaining_fraction() * 100.0
                })
                .collect();
            let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
            println!(
                "{:<10} {:<12} {:>9.3}% {:>9.3}% {:>9.3}% {:>9.3}%",
                corpus.params.name,
                label,
                percentile(&fracs, 0.0),
                percentile(&fracs, 0.25),
                percentile(&fracs, 0.5),
                mean
            );
        }
    }
}
