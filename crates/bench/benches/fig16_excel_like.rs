//! Fig. 16: find-dependents latency — TACO, NoComp, NoComp-Calc
//! (container index instead of R-tree) and ExcelLike (compressed storage,
//! decompress-to-traverse: the §VI-E conjecture about the commercial
//! system). Top-10 sheets by TACO find-dependents time.

use taco_baselines::{ExcelLike, NoCompCalc};
use taco_bench::{build_backend, build_graph, corpora, fmt_ms, header, ms, time, top_n_by};
use taco_core::{Config, DependencyBackend};
use taco_grid::Range;
use taco_workload::stats::measure_on;

fn main() {
    header("Fig. 16 — find-dependents latency vs Excel-style baselines");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "sheet", "TACO", "NoComp", "NoComp-Calc", "ExcelLike"
    );
    for corpus in corpora() {
        // Rank by TACO find time, like the paper's §VI-E selection.
        let ranked = top_n_by(&corpus.sheets, 10, |s| {
            let (g, _) = build_graph(Config::taco_full(), s);
            let st = measure_on(s, &g);
            let probe = Range::cell(s.hot_cells[st.max_dependents_cell]);
            ms(time(|| g.find_dependents(probe)).1)
        });
        for (i, sheet) in ranked.iter().enumerate() {
            let (taco, _) = build_graph(Config::taco_full(), sheet);
            let (nocomp, _) = build_graph(Config::nocomp(), sheet);
            let stats = measure_on(sheet, &taco);
            let probe = Range::cell(sheet.hot_cells[stats.max_dependents_cell]);

            let (_, t) = time(|| taco.find_dependents(probe));
            let (_, n) = time(|| nocomp.find_dependents(probe));

            let mut calc = NoCompCalc::new();
            build_backend(&mut calc, &sheet.deps);
            let (_, c) = time(|| calc.find_dependents(probe));

            let mut ex = ExcelLike::new();
            build_backend(&mut ex, &sheet.deps);
            let (_, x) = time(|| ex.find_dependents(probe));

            println!(
                "{:<12} {:>12} {:>12} {:>14} {:>14}",
                format!("{}max{}", corpus.params.name, i + 1),
                fmt_ms(ms(t)),
                fmt_ms(ms(n)),
                fmt_ms(ms(c)),
                fmt_ms(ms(x))
            );
        }
    }
}
