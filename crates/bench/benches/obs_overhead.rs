//! Observability overhead smoke: the cost of running with a metrics hub
//! attached must stay bounded, and the record hot path must stay
//! allocation-free.
//!
//! For each persistence preset the same build → recalc → edit-burst →
//! recalc cycle runs twice per mode — once bare, once with an `Obs` hub
//! attached — and the two runs must produce bit-identical cell values.
//!
//! Contract asserts (these fail the bench, and CI runs it in quick mode):
//!
//! - the instrumented cycle finishes within a **pinned bound** of the
//!   bare cycle (2× plus a fixed noise allowance — observability must
//!   never dominate the work it observes);
//! - instrumented and bare runs evaluate the same cells to the same
//!   values (the hub is a pure observer);
//! - a steady-state batch of record operations — counter add, gauge set,
//!   histogram record, tracer span, trace-context enter/propagate, and
//!   span-guard open/close — performs **zero** heap allocations, counted
//!   by a `#[global_allocator]` wrapper;
//! - the HTTP sidecar answers `GET /metrics` with Prometheus text and
//!   `GET /trace` with Chrome JSON over a plain `std::net::TcpStream`
//!   (the curl-equivalent smoke CI runs in quick mode).
//!
//! With `TACO_BENCH_JSON=path` the run also writes the collected numbers
//! as JSON — commit the artifact to track the perf trajectory over PRs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use taco_bench::{fmt_ms, header, ms};
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::Cell;
use taco_obs::{Obs, SpanCat, TraceContext};
use taco_workload::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};

/// Counts every allocation and reallocation (frees are not interesting
/// for the steady-state contract).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Instrumented runs must beat `bare × OVERHEAD_FACTOR + OVERHEAD_SLACK_MS`.
/// The factor pins the asymptotic cost; the additive slack absorbs timer
/// and scheduler noise at quick-mode scales where the cycle is sub-ms.
const OVERHEAD_FACTOR: f64 = 2.0;
const OVERHEAD_SLACK_MS: f64 = 50.0;

fn presets() -> Vec<PersistParams> {
    let scale = taco_bench::scale();
    let scaled = |p: PersistParams| {
        let rows = ((f64::from(p.rows) * scale) as u32).max(16);
        PersistParams { rows, ..p }
    };
    vec![scaled(persist_enron_like()), scaled(persist_github_like()), scaled(persist_giant_sheet())]
}

/// Every non-empty cell's value, across all sheets, in a fixed order.
fn snapshot(wb: &Workbook) -> Vec<(usize, Cell, Value)> {
    let mut out = Vec::new();
    for s in 0..wb.sheet_count() {
        let mut cells: Vec<(Cell, Value)> =
            wb.sheet(SheetId(s)).cells().map(|(c, k)| (c, k.value().clone())).collect();
        cells.sort_by_key(|(c, _)| *c);
        out.extend(cells.into_iter().map(|(c, v)| (s, c, v)));
    }
    out
}

/// One full cycle: build the workbook (optionally instrumented), full
/// recalc, edit burst, recalc again. Returns the wall time, the total
/// evaluated-cell count, and the final value snapshot.
fn cycle(
    w: &PersistWorkload,
    obs: Option<&Obs>,
    mode: RecalcMode,
) -> (f64, usize, Vec<(usize, Cell, Value)>) {
    let t0 = Instant::now();
    let mut wb = Workbook::with_taco();
    if let Some(o) = obs {
        wb.attach_obs(o, "bench");
    }
    wb.apply_batch(&w.build).expect("build script applies");
    let mut evaluated = wb.recalculate(mode);
    wb.apply_batch(&w.burst).expect("burst applies");
    evaluated += wb.recalculate(mode);
    let elapsed = ms(t0.elapsed());
    (elapsed, evaluated, snapshot(&wb))
}

/// Best-of-`reps` cycle time (the snapshot/count are identical across
/// reps, so the last one is returned).
fn best_of(
    reps: u32,
    w: &PersistWorkload,
    obs: Option<&Obs>,
    mode: RecalcMode,
) -> (f64, usize, Vec<(usize, Cell, Value)>) {
    let mut best = f64::INFINITY;
    let mut kept = None;
    for _ in 0..reps {
        let (t, e, s) = cycle(w, obs, mode);
        best = best.min(t);
        kept = Some((e, s));
    }
    let (e, s) = kept.expect("reps >= 1");
    (best, e, s)
}

/// The zero-allocation record contract: after warm-up (which pins the
/// thread's counter shard and faults in the span ring), a batch of
/// record operations must not touch the heap at all.
fn assert_record_path_allocation_free() -> u64 {
    let obs = Obs::new_default();
    let plain = obs.metrics.counter("taco_bench_ops_total");
    let labeled = obs.metrics.counter_with("taco_bench_mode_total", "mode=\"bench\"");
    let gauge = obs.metrics.gauge("taco_bench_depth");
    let hist = obs.metrics.histogram_with("taco_bench_ns", "mode=\"bench\"");

    // A pinned request context, as the server propagates per connection.
    let root = obs.tracer.new_root();

    // Warm-up: first records pick the TLS shard and cycle the span ring
    // past its initial state.
    for i in 0..64u64 {
        plain.inc();
        labeled.add(i);
        gauge.set(i as i64);
        hist.record(i);
        let now = obs.tracer.now_ns();
        obs.tracer.record("warm", SpanCat::Request, now, i, i, 0);
        let _g = root.enter();
        let mut guard = obs.tracer.span_guard("warm.guard", SpanCat::Recalc);
        guard.a = i;
    }

    const BATCH: u64 = 10_000;
    let before = allocations();
    for i in 0..BATCH {
        plain.inc();
        labeled.add(i);
        gauge.set(i as i64);
        hist.record(i);
        let now = obs.tracer.now_ns();
        obs.tracer.record("steady", SpanCat::Recalc, now, i, i, i);
        // The propagation hot path the server runs per request: enter the
        // wire context, open a child guard (ambient-parented), read the
        // current context back, record an explicit-context span, close.
        let _g = root.enter();
        let ctx = TraceContext::current();
        assert_eq!(ctx.span_id, root.span_id, "enter must install the context");
        let mut guard = obs.tracer.span_guard("steady.guard", SpanCat::WalAppend);
        guard.a = i;
        // Explicit-coordinate record, the registry's batch-link hot path.
        let link = TraceContext {
            span_id: i.wrapping_add(1 << 32),
            parent_id: guard.context().span_id,
            ..ctx
        };
        obs.tracer.record_at("steady.child", SpanCat::WalFsync, link, now, i, i, 0);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "record hot path allocated {delta} times over {BATCH} samples — \
         the zero-allocation contract is broken"
    );
    // The records must actually have landed (the loop was not optimised
    // away and the handles are live).
    let snap = obs.snapshot();
    assert_eq!(snap.counter("taco_bench_ops_total"), Some(64 + BATCH));
    assert!(snap.histogram("taco_bench_ns", "mode=\"bench\"").is_some_and(|h| h.count > 0));
    BATCH
}

/// One raw HTTP/1.0 round-trip over a plain socket (the curl-equivalent).
fn http_get(addr: std::net::SocketAddr, request: &str) -> String {
    use std::io::{Read, Write};
    let mut sock = std::net::TcpStream::connect(addr).expect("sidecar connect");
    sock.write_all(request.as_bytes()).expect("sidecar write");
    let mut body = String::new();
    sock.read_to_string(&mut body).expect("sidecar read");
    body
}

/// The sidecar smoke: a hub with live data, scraped over `std::net` the
/// way Prometheus or `curl` would — no TACO protocol involved.
fn assert_http_sidecar_serves() {
    let obs = Obs::new_default();
    obs.metrics.counter("taco_bench_scrape_total").add(9);
    let now = obs.tracer.now_ns();
    obs.tracer.record("scrape.span", SpanCat::Request, now, 1, 0, 0);

    let sidecar =
        taco_service::HttpSidecar::start("127.0.0.1:0", std::sync::Arc::clone(&obs)).expect("bind");
    let addr = sidecar.addr();

    let metrics = http_get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
    assert!(metrics.starts_with("HTTP/1.0 200 OK"), "metrics status: {metrics}");
    assert!(metrics.contains("taco_bench_scrape_total 9"), "metrics body: {metrics}");

    let trace = http_get(addr, "GET /trace HTTP/1.0\r\n\r\n");
    assert!(trace.starts_with("HTTP/1.0 200 OK"), "trace status: {trace}");
    assert!(trace.contains("\"traceEvents\":["), "trace body: {trace}");

    let missing = http_get(addr, "GET /nope HTTP/1.0\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.0 404"), "unknown path: {missing}");
    let bad = http_get(addr, "BOGUS\r\n\r\n");
    assert!(bad.starts_with("HTTP/1.0 400"), "malformed request: {bad}");

    sidecar.shutdown();
    println!("http sidecar: /metrics and /trace served, 404/400 on junk");
}

fn main() {
    header("obs overhead — instrumented vs bare recalc + zero-alloc record contract");
    let mut out = JsonObj::new();
    out.num("scale", taco_bench::scale());
    out.num("overhead_factor", OVERHEAD_FACTOR);
    out.num("overhead_slack_ms", OVERHEAD_SLACK_MS);
    let reps = 3u32;
    let modes = [
        ("serial", RecalcMode::Serial),
        ("cell_parallel", RecalcMode::CellParallel { threads: 4 }),
    ];
    let mut presets_json = Vec::new();

    for p in presets() {
        let w = gen_persist_workload(&p);
        let mut pj = JsonObj::new();
        pj.str("name", p.name);
        pj.num("rows", f64::from(p.rows));
        println!("\n[{}] rows={} sheets={}", p.name, p.rows, p.sheets);

        for (label, mode) in modes {
            let (bare_ms, bare_eval, bare_snap) = best_of(reps, &w, None, mode);

            let hub = Obs::new_default();
            let (obs_ms, obs_eval, obs_snap) = best_of(reps, &w, Some(&hub), mode);

            assert_eq!(obs_eval, bare_eval, "[{} {label}] evaluated-cell count diverged", p.name);
            assert_eq!(obs_snap, bare_snap, "[{} {label}] instrumented values diverged", p.name);
            let recalcs = hub.snapshot().counter("taco_recalcs_total").unwrap_or(0);
            assert!(recalcs >= 2, "[{} {label}] instrumented run recorded nothing", p.name);

            let bound = bare_ms * OVERHEAD_FACTOR + OVERHEAD_SLACK_MS;
            assert!(
                obs_ms <= bound,
                "[{} {label}] instrumented cycle {obs_ms:.3}ms exceeds pinned bound \
                 {bound:.3}ms (bare {bare_ms:.3}ms)",
                p.name
            );
            let overhead_pct = if bare_ms > 0.0 { (obs_ms / bare_ms - 1.0) * 100.0 } else { 0.0 };
            println!(
                "  {label:<14} bare {:>10}  obs {:>10}  overhead {overhead_pct:+.1}%",
                fmt_ms(bare_ms),
                fmt_ms(obs_ms)
            );
            pj.num(&format!("{label}_bare_ms"), bare_ms);
            pj.num(&format!("{label}_obs_ms"), obs_ms);
            pj.num(&format!("{label}_overhead_pct"), overhead_pct);
        }
        presets_json.push(pj);
    }

    let batch = assert_record_path_allocation_free();
    println!("\nrecord hot path: {batch} samples, 0 heap allocations (counted)");
    out.num("zero_alloc_batch", batch as f64);
    assert_http_sidecar_serves();
    out.arr("presets", presets_json);

    if let Ok(path) = std::env::var("TACO_BENCH_JSON") {
        std::fs::write(&path, out.finish()).expect("write TACO_BENCH_JSON");
        println!("\nwrote baseline JSON to {path}");
    }
}

// ---- a tiny JSON writer (keys are plain ASCII identifiers) --------------

struct JsonObj {
    fields: Vec<String>,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj { fields: Vec::new() }
    }

    fn num(&mut self, key: &str, v: f64) {
        self.fields.push(format!("\"{key}\":{v:.3}"));
    }

    fn str(&mut self, key: &str, v: &str) {
        self.fields.push(format!("\"{key}\":\"{v}\""));
    }

    fn arr(&mut self, key: &str, items: Vec<JsonObj>) {
        let body: Vec<String> = items.into_iter().map(JsonObj::finish).collect();
        self.fields.push(format!("\"{key}\":[{}]", body.join(",")));
    }

    fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}
