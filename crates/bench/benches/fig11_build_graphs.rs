//! Fig. 11: CDFs of the time to build formula graphs — TACO vs NoComp.
//! TACO pays a compression overhead at build time (the paper argues this
//! is acceptable: building happens once, off the interactive path).

use taco_bench::{build_graph, cdf_line, corpora, header, ms};
use taco_core::Config;

fn main() {
    header("Fig. 11 — time to build formula graphs (CDF summaries)");
    for corpus in corpora() {
        let mut taco = Vec::new();
        let mut nocomp = Vec::new();
        for sheet in &corpus.sheets {
            let (_, t) = build_graph(Config::taco_full(), sheet);
            let (_, n) = build_graph(Config::nocomp(), sheet);
            taco.push(ms(t));
            nocomp.push(ms(n));
        }
        println!("\n[{}]", corpus.params.name);
        cdf_line("  TACO", &taco);
        cdf_line("  NoComp", &nocomp);
        let ratio = taco.iter().sum::<f64>() / nocomp.iter().sum::<f64>().max(1e-9);
        println!("  total build overhead TACO/NoComp: {ratio:.2}x");
    }
}
