//! Table III: number of edges reduced by TACO per spreadsheet —
//! max / 75th percentile / median / mean (higher is better).

use taco_bench::{build_graph, corpora, header, percentile};
use taco_core::Config;

fn main() {
    header("Table III — edges reduced per sheet");
    println!(
        "{:<10} {:<12} {:>12} {:>12} {:>12} {:>12}",
        "corpus", "system", "max", "p75", "median", "mean"
    );
    for corpus in corpora() {
        for (label, config) in
            [("TACO-InRow", Config::taco_in_row()), ("TACO-Full", Config::taco_full())]
        {
            let reduced: Vec<f64> = corpus
                .sheets
                .iter()
                .map(|sheet| {
                    let (g, _) = build_graph(config.clone(), sheet);
                    g.stats().edges_reduced() as f64
                })
                .collect();
            let mean = reduced.iter().sum::<f64>() / reduced.len() as f64;
            println!(
                "{:<10} {:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
                corpus.params.name,
                label,
                percentile(&reduced, 1.0),
                percentile(&reduced, 0.75),
                percentile(&reduced, 0.5),
                mean
            );
        }
    }
}
