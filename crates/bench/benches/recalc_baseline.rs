//! Machine-readable perf baseline for the recalculation paths: full
//! serial recalc vs cell-level parallel recalc vs demand-driven viewport
//! recalc, over the persistence presets (including the single-giant-sheet
//! preset, where sheet-level parallelism degenerates and the intra-sheet
//! leveler carries the whole load).
//!
//! Contract asserts (these fail the bench, and CI runs it in quick mode):
//!
//! - cell-parallel recalculation is **bit-identical** to serial (every
//!   cell value compared) and evaluates the same number of cells;
//! - demand-driven recalculation evaluates **no more** cells than the
//!   full pass (strictly fewer on the giant sheet), and the viewport's
//!   values match the full pass bit for bit;
//! - a follow-up full pass after demand mode converges to zero dirty.
//!
//! With `TACO_BENCH_JSON=path` the run also writes the collected numbers
//! as JSON — commit the artifact to track the perf trajectory over PRs.

use std::time::Instant;
use taco_bench::{fmt_ms, header, ms};
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_workload::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};

fn presets() -> Vec<PersistParams> {
    let scale = taco_bench::scale();
    let scaled = |p: PersistParams| {
        let rows = ((f64::from(p.rows) * scale) as u32).max(16);
        PersistParams { rows, ..p }
    };
    vec![scaled(persist_enron_like()), scaled(persist_github_like()), scaled(persist_giant_sheet())]
}

fn build(w: &PersistWorkload) -> Workbook {
    let mut wb = Workbook::with_taco();
    wb.apply_batch(&w.build).expect("build script applies");
    wb
}

/// Every non-empty cell's value, across all sheets, in a fixed order.
fn snapshot(wb: &Workbook) -> Vec<(usize, Cell, Value)> {
    let mut out = Vec::new();
    for s in 0..wb.sheet_count() {
        let mut cells: Vec<(Cell, Value)> =
            wb.sheet(SheetId(s)).cells().map(|(c, k)| (c, k.value().clone())).collect();
        cells.sort_by_key(|(c, _)| *c);
        out.extend(cells.into_iter().map(|(c, v)| (s, c, v)));
    }
    out
}

fn main() {
    header("recalc baseline — full vs cell-parallel vs demand-driven (JSON-able)");
    let mut out = JsonObj::new();
    out.num("scale", taco_bench::scale());
    let threads = 4usize;
    out.num("threads", threads as f64);
    let mut presets_json = Vec::new();

    for p in presets() {
        let w = gen_persist_workload(&p);
        let mut pj = JsonObj::new();
        pj.str("name", p.name);
        pj.num("rows", f64::from(p.rows));
        pj.num("sheets", p.sheets as f64);

        // ---- full serial recalc (the reference) --------------------------
        let mut serial = build(&w);
        let total_dirty = serial.dirty_count();
        pj.num("dirty_cells", total_dirty as f64);
        let t0 = Instant::now();
        let full_evaluated = serial.recalculate(RecalcMode::Serial);
        let full_ms = ms(t0.elapsed());
        let reference = snapshot(&serial);
        pj.num("full_ms", full_ms);
        pj.num("full_evaluated", full_evaluated as f64);

        // ---- cell-parallel recalc: must be bit-identical -----------------
        let mut par = build(&w);
        let t0 = Instant::now();
        let par_evaluated = par.recalculate(RecalcMode::CellParallel { threads });
        let par_ms = ms(t0.elapsed());
        assert_eq!(
            par_evaluated, full_evaluated,
            "[{}] cell-parallel evaluated-cell count diverged",
            p.name
        );
        assert_eq!(snapshot(&par), reference, "[{}] cell-parallel values diverged", p.name);
        let levels: usize =
            (0..par.sheet_count()).map(|s| par.sheet(SheetId(s)).levels_built()).max().unwrap_or(0);
        pj.num("parallel_ms", par_ms);
        pj.num("parallel_evaluated", par_evaluated as f64);
        pj.num("levels_built", levels as f64);

        // ---- demand-driven viewport recalc -------------------------------
        let viewport = Range::from_coords(1, 1, 6, 16.min(p.rows));
        let mut demand = build(&w);
        let t0 = Instant::now();
        let demand_evaluated =
            demand.recalc_demand(SheetId(0), viewport, RecalcMode::Serial).expect("sheet 0 exists");
        let demand_ms = ms(t0.elapsed());
        assert!(
            demand_evaluated <= full_evaluated,
            "[{}] demand evaluated {} > full {}",
            p.name,
            demand_evaluated,
            full_evaluated
        );
        if p.sheets == 1 {
            assert!(
                demand_evaluated < full_evaluated,
                "[{}] single-sheet viewport closure must be a strict subset",
                p.name
            );
        }
        for cell in viewport.cells() {
            assert_eq!(
                demand.value(SheetId(0), cell),
                serial.value(SheetId(0), cell),
                "[{}] demand viewport cell {:?} diverged",
                p.name,
                cell
            );
        }
        let follow = demand.recalculate(RecalcMode::Serial);
        assert_eq!(demand_evaluated + follow, total_dirty, "[{}] demand+follow-up", p.name);
        assert_eq!(demand.dirty_count(), 0, "[{}] demand mode must converge", p.name);
        pj.num("demand_ms", demand_ms);
        pj.num("demand_evaluated", demand_evaluated as f64);

        println!(
            "\n[{}] {} dirty cells: full {} ({} cells) · cell-parallel {} ({} levels) · \
             demand {} ({} cells)",
            p.name,
            total_dirty,
            fmt_ms(full_ms),
            full_evaluated,
            fmt_ms(par_ms),
            levels,
            fmt_ms(demand_ms),
            demand_evaluated,
        );
        presets_json.push(pj);
    }

    out.arr("presets", presets_json);
    if let Ok(path) = std::env::var("TACO_BENCH_JSON") {
        std::fs::write(&path, out.finish()).expect("write TACO_BENCH_JSON");
        println!("\nwrote recalc baseline JSON to {path}");
    }
}

// ---- a tiny JSON writer (keys are plain ASCII identifiers) --------------

struct JsonObj {
    fields: Vec<String>,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj { fields: Vec::new() }
    }

    fn num(&mut self, key: &str, v: f64) {
        self.fields.push(format!("\"{key}\":{v:.3}"));
    }

    fn str(&mut self, key: &str, v: &str) {
        self.fields.push(format!("\"{key}\":\"{v}\""));
    }

    fn arr(&mut self, key: &str, items: Vec<JsonObj>) {
        let body: Vec<String> = items.into_iter().map(JsonObj::finish).collect();
        self.fields.push(format!("\"{key}\":[{}]", body.join(",")));
    }

    fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}
