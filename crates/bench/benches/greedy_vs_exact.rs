//! Beyond the paper: quality of the greedy compressor against the exact
//! CEM optimum (§IV-A proves CEM NP-hard; exact search is only feasible
//! on tiny instances). Prints greedy/exact edge counts and the exact
//! solver's cost growth — the Bell-number blow-up the paper hit at 96
//! edges.

use std::time::Instant;
use taco_bench::header;
use taco_core::{cem, Config, Dependency, FormulaGraph};
use taco_grid::{Cell, Range};
use taco_workload::generator::{gen_sheet, SheetParams};

fn main() {
    header("Greedy vs exact CEM on tiny instances");
    println!("{:<8} {:>8} {:>8} {:>12}", "deps", "greedy", "exact", "exact time");
    let cfg = Config::taco_full();
    for n in [6usize, 9, 12, 15, 18] {
        // Slice a generated sheet to n dependencies (structured + noise).
        let params = SheetParams { target_deps: 64, max_run: 5, ..Default::default() };
        let sheet = gen_sheet("cem", n as u64, &params);
        let deps: Vec<Dependency> = sheet.deps.into_iter().take(n).collect();
        let greedy = FormulaGraph::build(cfg.clone(), deps.iter().copied()).num_edges();
        let t0 = Instant::now();
        let exact = cem::exact_min_edges(&deps, &cfg, 50_000_000);
        let dt = t0.elapsed();
        match exact {
            Some(e) => println!("{n:<8} {greedy:>8} {e:>8} {dt:>12.2?}"),
            None => println!("{n:<8} {greedy:>8} {:>8} {dt:>12.2?}", "DNF"),
        }
    }

    // The paper's anecdote: exhaustive partitioning explodes (the RPC
    // reduction shape). A k×k block of derived cells is compressible both
    // row-wise and column-wise, so the search faces the full choice
    // explosion; the optimum is k (one run per column or per row).
    header("Exact-search blow-up on the RPC grid (paper: 96 edges > 30 min)");
    for k in [3u32, 4, 5, 6, 7, 8] {
        // Every cell of a k×k block references the same fixed range: any
        // contiguous row- or column-segment is a valid FF group, exactly
        // the paper's FF reduction from rectilinear picture compression.
        let mut deps = Vec::new();
        for col in 10..10 + k {
            for row in 1..=k {
                deps.push(Dependency::new(Range::parse_a1("A1:B2").unwrap(), Cell::new(col, row)));
            }
        }
        let greedy = FormulaGraph::build(cfg.clone(), deps.iter().copied()).num_edges();
        let t0 = Instant::now();
        let exact = cem::exact_min_edges(&deps, &cfg, 20_000_000);
        println!(
            "k={k} (n={:<3}) greedy={greedy:<3} exact={:<12} time={:.2?}",
            deps.len(),
            exact.map(|e| e.to_string()).unwrap_or_else(|| "DNF(budget)".into()),
            t0.elapsed()
        );
    }
}
