//! Fig. 15: graph modification latency on the top-10 sheets (clear a 1K
//! column at the max-dependents cell) — Antifreeze pays a full lookup-table
//! rebuild on its next query; CellGraph deletes cell-level edges.

use taco_baselines::{Antifreeze, CellGraph};
use taco_bench::{build_backend, build_graph, corpora, fmt_ms, header, ms, time, top_n_by};
use taco_core::{Config, DependencyBackend};
use taco_grid::{Cell, Range, MAX_ROW};
use taco_workload::stats::measure_on;

fn main() {
    header("Fig. 15 — modify latency on top-10 sheets (clear 1K column)");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "sheet", "TACO", "NoComp", "CellGraph", "Antifreeze"
    );
    for corpus in corpora() {
        let ranked = top_n_by(&corpus.sheets, 10, |s| ms(build_graph(Config::taco_full(), s).1));
        for (i, sheet) in ranked.iter().enumerate() {
            let (mut taco, _) = build_graph(Config::taco_full(), sheet);
            let (mut nocomp, _) = build_graph(Config::nocomp(), sheet);
            let stats = measure_on(sheet, &taco);
            let start = sheet.hot_cells[stats.max_dependents_cell];
            let clear = Range::new(start, Cell::new(start.col, (start.row + 999).min(MAX_ROW)));

            let (_, t) = time(|| taco.clear_cells(clear));
            let (_, n) = time(|| nocomp.clear_cells(clear));

            let mut cg = CellGraph::new();
            cg.edge_limit = 5_000_000;
            build_backend(&mut cg, &sheet.deps);
            let cg_txt = if cg.did_not_finish {
                "DNF(X)".to_string()
            } else {
                let (_, d) = time(|| cg.clear_cells(clear));
                fmt_ms(ms(d))
            };

            let mut af = Antifreeze::new();
            af.build_budget = 3_000_000;
            build_backend(&mut af, &sheet.deps);
            af.rebuild_table();
            let af_txt = if af.did_not_finish {
                "DNF(X)".to_string()
            } else {
                // Modification cost for Antifreeze = graph update + the
                // from-scratch table rebuild its design requires.
                let (_, d) = time(|| {
                    af.clear_cells(clear);
                    af.rebuild_table();
                });
                if af.did_not_finish {
                    "DNF(X)".to_string()
                } else {
                    fmt_ms(ms(d))
                }
            };

            println!(
                "{:<12} {:>12} {:>12} {:>14} {:>14}",
                format!("{}max{}", corpus.params.name, i + 1),
                fmt_ms(ms(t)),
                fmt_ms(ms(n)),
                cg_txt,
                af_txt
            );
        }
    }
}
