//! Service throughput: ops/sec and latency percentiles for the
//! `taco_service` layer — in-process vs TCP, write batching on vs off,
//! one vs several client threads — over the mixed workload preset
//! (zipf-skewed targets, ~70% reads).
//!
//! Two invariants are asserted in-bench so the numbers can never drift
//! away from a correct implementation:
//!
//! 1. every configuration ends in the same final cell state as the
//!    serial reference script on a bare workbook;
//! 2. with coalescing on, the writer runs **at most** as many
//!    recalculations as with it off (batching is the point: N queued
//!    edits, one dirty-propagation, one recalc).
//!
//! With `TACO_BENCH_JSON=path` the run also writes the collected numbers
//! as JSON — commit the artifact to track the perf trajectory over PRs.

use std::sync::Arc;
use std::time::Instant;
use taco_bench::{cdf_line, header, ms, percentile};
use taco_engine::{RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_service::{
    Client, InProcClient, Registry, Server, ServerOptions, ServiceOptions, TcpClient, Transport,
};
use taco_workload::service::{gen_service_script, mixed, ClientOp, ServiceScript};

fn setup_workbook(script: &ServiceScript) -> Workbook {
    let mut wb = Workbook::with_taco();
    for rec in &script.setup {
        wb.apply_edit(rec).expect("setup applies");
    }
    wb.recalculate(RecalcMode::Serial);
    wb
}

fn serial_reference(script: &ServiceScript) -> Vec<(Cell, Value)> {
    let mut wb = setup_workbook(script);
    for rec in &script.serial_writes() {
        wb.apply_edit(rec).expect("serial write applies");
    }
    wb.recalculate(RecalcMode::Serial);
    let mut cells: Vec<(Cell, Value)> =
        wb.sheet(SheetId(0)).cells().map(|(c, k)| (c, k.value().clone())).collect();
    cells.sort_unstable_by_key(|(c, _)| (c.row, c.col));
    cells
}

fn run_op<T: Transport>(client: &mut Client<T>, sheet: &str, op: &ClientOp) {
    let r: Result<(), taco_service::ServiceError> = match op {
        ClientOp::Get { cell } => client.get(sheet, *cell).map(drop),
        ClientOp::GetRange { range } => client.get_range(sheet, *range).map(drop),
        ClientOp::Dependents { range } => client.dependents(sheet, *range).map(drop),
        ClientOp::Precedents { range } => client.precedents(sheet, *range).map(drop),
        ClientOp::DirtyCount => client.dirty_count().map(drop),
        ClientOp::SetValue { cell, value } => {
            client.set_value(sheet, *cell, Value::Number(*value)).map(drop)
        }
        ClientOp::SetFormula { cell, src } => client.set_formula(sheet, *cell, src).map(drop),
        ClientOp::ClearRange { range } => client.clear_range(sheet, *range).map(drop),
        ClientOp::Recalc => client.recalc().map(drop),
    };
    r.expect("bench op applies");
}

/// Drives the script's client streams on `threads` OS threads (streams
/// are dealt round-robin), returning per-op latencies in ms.
fn drive<T: Transport, F>(script: &ServiceScript, threads: usize, connect: F) -> Vec<f64>
where
    F: Fn() -> Client<T> + Sync,
{
    let lanes: Vec<Vec<&Vec<ClientOp>>> = {
        let mut lanes: Vec<Vec<&Vec<ClientOp>>> = vec![Vec::new(); threads];
        for (i, ops) in script.clients.iter().enumerate() {
            lanes[i % threads].push(ops);
        }
        lanes
    };
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = lanes
            .iter()
            .map(|lane| {
                let connect = &connect;
                s.spawn(move |_| {
                    let mut samples = Vec::new();
                    let mut client = connect();
                    client.open("book", None, None).expect("open");
                    for ops in lane {
                        for op in ops.iter() {
                            let t = Instant::now();
                            run_op(&mut client, &script.sheet, op);
                            samples.push(ms(t.elapsed()));
                        }
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("bench client")).collect()
    })
    .expect("bench scope")
}

struct Outcome {
    label: String,
    ops_per_sec: f64,
    recalcs: u64,
    coalesced: u64,
    p50_ms: f64,
    p99_ms: f64,
}

fn check_final_state(registry: &Arc<Registry>, want: &[(Cell, Value)], label: &str) {
    let mut client = InProcClient::in_process(Arc::clone(registry));
    client.open("book", None, None).expect("verify open");
    client.recalc().expect("quiesce");
    let snap = registry.snapshot("book").expect("snapshot");
    let got = snap.cells_in(0, Range::from_coords(1, 1, 64, 4096));
    assert_eq!(got, want, "{label}: final state must match the serial reference");
}

fn main() {
    header("Service throughput — mixed preset (70% reads, zipf rows)");
    let script = gen_service_script(&mixed());
    let total_ops: usize = script.clients.iter().map(Vec::len).sum();
    let want = serial_reference(&script);
    println!(
        "{} clients × {} ops ({} total), sheet {}×64",
        script.clients.len(),
        script.clients[0].len(),
        total_ops,
        64
    );

    let mut outcomes: Vec<Outcome> = Vec::new();
    for coalesce in [true, false] {
        for threads in [1usize, 4] {
            // In-process.
            let registry =
                Arc::new(Registry::new(ServiceOptions { coalesce, ..ServiceOptions::default() }));
            registry.add_workbook("book", setup_workbook(&script), None).unwrap();
            let t = Instant::now();
            let samples =
                drive(&script, threads, || InProcClient::in_process(Arc::clone(&registry)));
            let wall = t.elapsed();
            check_final_state(&registry, &want, "in-proc");
            let stats = {
                let mut c = InProcClient::in_process(Arc::clone(&registry));
                c.open("book", None, None).unwrap();
                c.stats().unwrap()
            };
            let label =
                format!("inproc batch={} T={threads}", if coalesce { "on " } else { "off" });
            cdf_line(&label, &samples);
            outcomes.push(Outcome {
                label,
                ops_per_sec: total_ops as f64 / wall.as_secs_f64(),
                recalcs: stats.recalcs,
                coalesced: stats.coalesced,
                p50_ms: percentile(&samples, 0.50),
                p99_ms: percentile(&samples, 0.99),
            });
            registry.shutdown();

            // TCP.
            let registry =
                Arc::new(Registry::new(ServiceOptions { coalesce, ..ServiceOptions::default() }));
            registry.add_workbook("book", setup_workbook(&script), None).unwrap();
            let server =
                Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default())
                    .unwrap();
            let addr = server.local_addr();
            let t = Instant::now();
            let samples =
                drive(&script, threads, || TcpClient::connect(addr).expect("bench connect"));
            let wall = t.elapsed();
            check_final_state(&registry, &want, "tcp");
            let stats = {
                let mut c = InProcClient::in_process(Arc::clone(&registry));
                c.open("book", None, None).unwrap();
                c.stats().unwrap()
            };
            let label =
                format!("tcp    batch={} T={threads}", if coalesce { "on " } else { "off" });
            cdf_line(&label, &samples);
            outcomes.push(Outcome {
                label,
                ops_per_sec: total_ops as f64 / wall.as_secs_f64(),
                recalcs: stats.recalcs,
                coalesced: stats.coalesced,
                p50_ms: percentile(&samples, 0.50),
                p99_ms: percentile(&samples, 0.99),
            });
            server.shutdown();
            registry.shutdown();
        }
    }

    header("Throughput and writer effort");
    println!("{:<24} {:>12} {:>10} {:>10}", "config", "ops/sec", "recalcs", "coalesced");
    for o in &outcomes {
        println!("{:<24} {:>12.0} {:>10} {:>10}", o.label, o.ops_per_sec, o.recalcs, o.coalesced);
    }

    // The batching invariant: for each (transport, threads) pair, the
    // coalescing writer never recalculates more often than the
    // per-edit writer (outcomes are pushed batched-first).
    let half = outcomes.len() / 2;
    for (on, off) in outcomes[..half].iter().zip(&outcomes[half..]) {
        assert!(
            on.recalcs <= off.recalcs,
            "batching must not add recalcs: {} ran {} vs {} ran {}",
            on.label,
            on.recalcs,
            off.label,
            off.recalcs
        );
    }
    // With several client threads, coalescing must actually coalesce
    // somewhere (the queue fills while the writer works); summed across
    // the T=4 batched runs so one unlucky scheduling cannot flake it.
    let multi_thread_coalesced: u64 =
        outcomes[..half].iter().filter(|o| o.label.contains("T=4")).map(|o| o.coalesced).sum();
    println!("\ncoalesced edits across T=4 batched runs: {multi_thread_coalesced}");
    assert!(
        multi_thread_coalesced > 0,
        "multi-threaded batched runs must coalesce at least one batch"
    );

    if let Ok(path) = std::env::var("TACO_BENCH_JSON") {
        let mut out = JsonObj::new();
        out.num("scale", taco_bench::scale());
        out.num("clients", script.clients.len() as f64);
        out.num("total_ops", total_ops as f64);
        out.num("coalesced_t4_total", multi_thread_coalesced as f64);
        let mut configs = Vec::new();
        for o in &outcomes {
            let mut cj = JsonObj::new();
            cj.str("config", o.label.trim());
            cj.num("ops_per_sec", o.ops_per_sec);
            cj.num("p50_ms", o.p50_ms);
            cj.num("p99_ms", o.p99_ms);
            cj.num("recalcs", o.recalcs as f64);
            cj.num("coalesced", o.coalesced as f64);
            configs.push(cj);
        }
        out.arr("configs", configs);
        std::fs::write(&path, out.finish()).expect("write TACO_BENCH_JSON");
        println!("\nwrote baseline JSON to {path}");
    }
    println!("done");
}

// ---- a tiny JSON writer (keys are plain ASCII identifiers) --------------

struct JsonObj {
    fields: Vec<String>,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj { fields: Vec::new() }
    }

    fn num(&mut self, key: &str, v: f64) {
        self.fields.push(format!("\"{key}\":{v:.3}"));
    }

    fn str(&mut self, key: &str, v: &str) {
        self.fields.push(format!("\"{key}\":\"{v}\""));
    }

    fn arr(&mut self, key: &str, items: Vec<JsonObj>) {
        let body: Vec<String> = items.into_iter().map(JsonObj::finish).collect();
        self.fields.push(format!("\"{key}\":[{}]", body.join(",")));
    }

    fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}
