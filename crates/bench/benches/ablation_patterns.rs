//! Ablation benches beyond the paper (DESIGN.md call-outs): disable each
//! pattern / heuristic in turn and measure the effect on compression and
//! query latency.

use taco_bench::{build_graph, corpora, header, ms, time};
use taco_core::{Config, PatternType};
use taco_grid::Range;
use taco_workload::stats::measure_on;

fn main() {
    header("Ablation — pattern set and heuristics");
    println!("{:<26} {:>12} {:>12} {:>14}", "config", "edges", "build(ms)", "find-dep p-max");
    let corpus = corpora().remove(0);
    let mut configs: Vec<(String, Config)> = vec![
        ("full".into(), Config::taco_full()),
        ("full+gap-one".into(), Config::taco_with_gap_one()),
        ("nocomp".into(), Config::nocomp()),
        ("in-row".into(), Config::taco_in_row()),
    ];
    for p in
        [PatternType::RR, PatternType::RF, PatternType::FR, PatternType::FF, PatternType::RRChain]
    {
        configs.push((format!("full - {p:?}"), Config::taco_without(p)));
    }
    let mut no_col = Config::taco_full();
    no_col.column_priority = false;
    configs.push(("no column priority".into(), no_col));
    let mut no_cue = Config::taco_full();
    no_cue.use_cues = false;
    configs.push(("no $-cues".into(), no_cue));

    for (label, config) in configs {
        let mut edges = 0u64;
        let mut build_ms = 0.0;
        let mut find_ms = 0.0f64;
        for sheet in &corpus.sheets {
            let (g, bt) = build_graph(config.clone(), sheet);
            edges += g.num_edges() as u64;
            build_ms += ms(bt);
            let st = measure_on(sheet, &g);
            let probe = Range::cell(sheet.hot_cells[st.max_dependents_cell]);
            let (_, ft) = time(|| g.find_dependents(probe));
            find_ms = find_ms.max(ms(ft));
        }
        println!("{label:<26} {edges:>12} {build_ms:>12.1} {find_ms:>14.3}");
    }
}
