//! Fig. 10: CDFs of the time to find dependents — TACO vs NoComp, for the
//! Maximum-Dependents cell and the Longest-Path cell of every sheet.

use taco_bench::{build_graph, cdf_line, corpora, header, ms, time};
use taco_core::Config;
use taco_grid::Range;
use taco_workload::stats::measure_on;

fn main() {
    header("Fig. 10 — time to find dependents (CDF summaries)");
    for corpus in corpora() {
        let mut taco_max = Vec::new();
        let mut taco_long = Vec::new();
        let mut nocomp_max = Vec::new();
        let mut nocomp_long = Vec::new();
        let mut speedup_max: f64 = 1.0;
        for sheet in &corpus.sheets {
            let (taco, _) = build_graph(Config::taco_full(), sheet);
            let (nocomp, _) = build_graph(Config::nocomp(), sheet);
            let stats = measure_on(sheet, &taco);
            let max_cell = sheet.hot_cells[stats.max_dependents_cell];
            let long_cell = sheet.longest_path_cell;

            let (td, t1) = time(|| taco.find_dependents(Range::cell(max_cell)));
            let (nd, n1) = time(|| nocomp.find_dependents(Range::cell(max_cell)));
            assert_eq!(
                td.iter().map(Range::area).sum::<u64>(),
                nd.iter().map(Range::area).sum::<u64>(),
                "lossless check failed on {}",
                sheet.name
            );
            let (_, t2) = time(|| taco.find_dependents(Range::cell(long_cell)));
            let (_, n2) = time(|| nocomp.find_dependents(Range::cell(long_cell)));
            taco_max.push(ms(t1));
            nocomp_max.push(ms(n1));
            taco_long.push(ms(t2));
            nocomp_long.push(ms(n2));
            if ms(t1) > 0.0 {
                speedup_max = speedup_max.max(ms(n1) / ms(t1).max(1e-6));
            }
        }
        println!("\n[{}] Maximum-Dependents case", corpus.params.name);
        cdf_line("  TACO", &taco_max);
        cdf_line("  NoComp", &nocomp_max);
        println!("[{}] Longest-Path case", corpus.params.name);
        cdf_line("  TACO", &taco_long);
        cdf_line("  NoComp", &nocomp_long);
        println!("  max speedup TACO/NoComp (max-dependents): {speedup_max:.0}x");
    }
}
