//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table and figure of §VI has a bench target under `benches/`; they
//! all pull their corpora and timing/percentile utilities from here.
//! Corpus size scales with the `TACO_SCALE` environment variable
//! (default 0.12 — a couple of minutes for the full `cargo bench`; the
//! paper-shaped run used for EXPERIMENTS.md sets it higher).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};
use taco_core::{Config, Dependency, FormulaGraph};
use taco_grid::Range;
use taco_workload::{enron_like, github_like, CorpusParams, SyntheticSheet};

/// Benchmark scale factor from `TACO_SCALE` (default 0.12).
pub fn scale() -> f64 {
    std::env::var("TACO_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.12)
}

/// A generated corpus plus its parameters.
pub struct Corpus {
    /// Preset parameters (name, sizes).
    pub params: CorpusParams,
    /// The generated sheets.
    pub sheets: Vec<SyntheticSheet>,
}

/// Generates both corpora at the current scale.
pub fn corpora() -> Vec<Corpus> {
    let s = scale();
    [enron_like(s), github_like(s)]
        .into_iter()
        .map(|params| {
            let sheets = params.generate();
            Corpus { params, sheets }
        })
        .collect()
}

/// Times a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Builds a graph from a sheet under `config`, returning the build time.
pub fn build_graph(config: Config, sheet: &SyntheticSheet) -> (FormulaGraph, Duration) {
    time(|| FormulaGraph::build(config, sheet.deps.iter().copied()))
}

/// Builds a dependency list into any backend, returning the build time.
pub fn build_backend<B: taco_core::DependencyBackend>(
    backend: &mut B,
    deps: &[Dependency],
) -> Duration {
    let (_, d) = time(|| {
        for dep in deps {
            backend.add_dependency(dep);
        }
    });
    d
}

/// Total number of cells covered by a disjoint range list.
pub fn cell_count(ranges: &[Range]) -> u64 {
    ranges.iter().map(Range::area).sum()
}

/// Returns the `q`-quantile (0.0–1.0) of an unsorted sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

/// Duration → milliseconds as f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Formats a millisecond value compactly.
pub fn fmt_ms(v: f64) -> String {
    if v.is_nan() {
        "DNF".to_string()
    } else if v >= 100.0 {
        format!("{v:.0} ms")
    } else if v >= 1.0 {
        format!("{v:.1} ms")
    } else {
        format!("{:.0} µs", v * 1e3)
    }
}

/// Prints a bench section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a CDF-style summary line for a latency sample (the textual
/// equivalent of the paper's CDF plots).
pub fn cdf_line(label: &str, samples_ms: &[f64]) {
    println!(
        "{label:<22} n={:<4} p50={:<10} p75={:<10} p90={:<10} p99={:<10} max={}",
        samples_ms.len(),
        fmt_ms(percentile(samples_ms, 0.50)),
        fmt_ms(percentile(samples_ms, 0.75)),
        fmt_ms(percentile(samples_ms, 0.90)),
        fmt_ms(percentile(samples_ms, 0.99)),
        fmt_ms(percentile(samples_ms, 1.0)),
    );
}

/// The top-`n` sheets of a corpus ranked by a score, descending
/// (the paper's `max1..max10` selections).
pub fn top_n_by(
    sheets: &[SyntheticSheet],
    n: usize,
    mut score: impl FnMut(&SyntheticSheet) -> f64,
) -> Vec<&SyntheticSheet> {
    let mut scored: Vec<(&SyntheticSheet, f64)> = sheets.iter().map(|s| (s, score(s))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    scored.into_iter().take(n).map(|(s, _)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        // round(49.5) = 50 → the 51st element.
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(0.5), "500 µs");
        assert_eq!(fmt_ms(5.25), "5.2 ms");
        assert_eq!(fmt_ms(250.0), "250 ms");
        assert_eq!(fmt_ms(f64::NAN), "DNF");
    }

    #[test]
    fn top_n_ranks_descending() {
        let p = taco_workload::enron_like(0.05);
        let sheets = CorpusParams { sheets: 4, ..p }.generate();
        let top = top_n_by(&sheets, 2, |s| s.deps.len() as f64);
        assert_eq!(top.len(), 2);
        assert!(top[0].deps.len() >= top[1].deps.len());
    }

    use taco_workload::CorpusParams;
}
