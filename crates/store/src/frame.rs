//! Streaming frame codec: length-prefixed, CRC-checked payloads over any
//! `std::io` stream.
//!
//! ```text
//! frame := payload_len uvarint · crc32(payload) u32 LE · payload
//! ```
//!
//! This is the WAL record shape ([`crate::wal`]) lifted out of the
//! append-only file and onto a bidirectional byte stream, so a wire
//! protocol gets the same corruption guarantees the on-disk formats have:
//! a declared length is bounded *before* any allocation, a checksum
//! mismatch is a typed [`StoreError::ChecksumMismatch`], and a stream that
//! ends mid-frame is a typed [`StoreError::Truncated`] — never a panic,
//! never an unbounded read.
//!
//! Unlike the WAL (which parses a fully-read file and must distinguish
//! torn tails from mid-log corruption), a frame is read incrementally from
//! a live peer: the reader blocks on `read_exact`, so a half-written frame
//! only surfaces when the peer disconnects (`Truncated`).

use crate::codec::{crc32, read_uvarint, write_uvarint};
use crate::StoreError;
use std::io::{Read, Write};

/// Default per-frame payload bound (1 MiB): large enough for any request
/// or a big `GetRange` response, small enough that a hostile declared
/// length cannot balloon allocation.
pub const DEFAULT_MAX_FRAME: u64 = 1 << 20;

/// Writes one frame. A single `write_all` per field keeps a torn write
/// prefix-detectable on the reader's side.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), StoreError> {
    let mut frame = Vec::with_capacity(payload.len() + 9);
    write_uvarint(&mut frame, payload.len() as u64)?;
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    Ok(())
}

/// Reads one frame, enforcing `max_len` on the declared payload length
/// *before* allocating, and verifying the checksum after the read.
pub fn read_frame<R: Read>(r: &mut R, max_len: u64) -> Result<Vec<u8>, StoreError> {
    let len = read_uvarint(r)?;
    if len > max_len {
        return Err(StoreError::Malformed("frame length exceeds limit"));
    }
    let mut crc = [0u8; 4];
    r.read_exact(&mut crc)?;
    let crc = u32::from_le_bytes(crc);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(StoreError::ChecksumMismatch { what: "frame payload" });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn round_trip() {
        for payload in [&b""[..], b"x", &[0u8; 300][..]] {
            let bytes = frame_bytes(payload);
            let mut r = &bytes[..];
            assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), payload);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn consecutive_frames_stream() {
        let mut bytes = frame_bytes(b"first");
        bytes.extend(frame_bytes(b"second"));
        let mut r = &bytes[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"first");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"second");
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = frame_bytes(b"some payload");
        for cut in 0..bytes.len() {
            let mut r = &bytes[..cut];
            assert!(
                matches!(read_frame(&mut r, DEFAULT_MAX_FRAME), Err(StoreError::Truncated { .. })),
                "cut at {cut} must be a typed truncation"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_typed() {
        let bytes = frame_bytes(b"payload under test");
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                let mut r = &bad[..];
                // Any outcome but a panic or a wrong payload is fine: a
                // length flip can truncate or overrun, a payload/crc flip
                // must fail the checksum.
                match read_frame(&mut r, DEFAULT_MAX_FRAME) {
                    Ok(p) => assert_eq!(p, b"payload under test", "silent corruption at {i}:{bit}"),
                    Err(
                        StoreError::Truncated { .. }
                        | StoreError::Malformed(_)
                        | StoreError::ChecksumMismatch { .. },
                    ) => {}
                    Err(e) => panic!("unexpected error kind at {i}:{bit}: {e}"),
                }
            }
        }
    }

    #[test]
    fn oversized_declared_length_is_bounded_before_allocation() {
        // A tiny input declaring a 2^40-byte payload must fail on the
        // bound, not attempt the allocation.
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 1u64 << 40).unwrap();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(StoreError::Malformed("frame length exceeds limit"))
        ));
    }
}
