//! The sectioned container format.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header    magic "TACO" · version u16 LE · flags u16 LE     │
//! ├────────────────────────────────────────────────────────────┤
//! │ sheet section 0   (formula interning · cells · dirty set   │
//! │                    · compressed graph, gap/γ/ζ bit-coded)  │
//! │ sheet section 1 …                                          │
//! ├────────────────────────────────────────────────────────────┤
//! │ cross-sheet edge section                                   │
//! ├────────────────────────────────────────────────────────────┤
//! │ footer    per-section (name, offset, length, CRC-32)       │
//! ├────────────────────────────────────────────────────────────┤
//! │ trailer   footer length u32 LE · footer CRC-32 u32 LE ·    │
//! │           tail magic "OCAT"                                │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! The footer lives at the *end* so the writer streams sections without
//! back-patching; a reader seeks to the trailer, validates the footer,
//! and then decodes only the sections it needs ([`StoreReader`] decodes
//! per sheet on demand — the lazy-loading hook). Every section and the
//! footer carry CRC-32 checksums; any damage surfaces as a typed
//! [`StoreError`] at open or section-decode time.
//!
//! Edges are stored delta-encoded in the sorted order
//! [`taco_core::GraphSnapshot`] now guarantees: dependent-range head gaps
//! come out small (γ-coded), precedent corners are stored relative to the
//! dependent head (ζ₃-coded — precedents cluster near their formulae but
//! have a heavier tail), so a compressed edge typically costs a handful
//! of bytes against ~200 for its serde-JSON encoding.

use crate::codec::{
    crc32, read_string, read_uvarint, write_string, write_uvarint, BitReader, BitWriter,
};
use crate::image::{
    cell_from, checked_coord, read_cell, read_value_payload, small_i64, value_tag, write_cell,
    write_value_payload, CellRecord, CrossEdgeImage, SheetImage, WorkbookImage,
};
use crate::StoreError;
use std::io::Write;
use std::path::Path;
use taco_core::{ChainDir, Config, Edge, GraphSnapshot, PatternMeta, PatternType};
use taco_grid::{Axis, Cell, Offset, Range};

/// Leading file magic.
pub const MAGIC: [u8; 4] = *b"TACO";
/// Trailing file magic (cheap truncation tripwire).
pub const TAIL_MAGIC: [u8; 4] = *b"OCAT";
/// Current format version. Readers reject anything newer. Version 2
/// added the replay epoch to the footer; version-1 files read back with
/// epoch `0`.
pub const FORMAT_VERSION: u16 = 2;
/// Upper bound on any single decoded string (names, formula sources,
/// text values) so corrupt lengths cannot drive huge allocations.
pub(crate) const MAX_STRING: u64 = 1 << 24;
/// Rejects a declared element count that cannot possibly fit in the
/// remaining input — each element consumes at least `min_units` of the
/// `remaining` units (bytes, or bits for the edge stream) — so
/// `Vec::with_capacity` is never asked for more memory than the input
/// itself justifies. CRC-32 is not a MAC: a crafted re-checksummed file
/// reaches these counts, and the no-panic/no-OOM contract must hold.
fn bounded_count(
    count: u64,
    remaining: usize,
    min_units: usize,
    what: &'static str,
) -> Result<usize, StoreError> {
    if count > (remaining / min_units.max(1)) as u64 {
        return Err(StoreError::Malformed(what));
    }
    Ok(count as usize)
}

const HEADER_LEN: usize = 8;
const TRAILER_LEN: usize = 12;

/// ζ parameter for precedent-corner deltas (heavier-tailed than the
/// dependent gaps, which use γ).
const PREC_ZETA_K: u32 = 3;

// ---- writing ------------------------------------------------------------

/// Encodes a whole workbook image into container bytes.
pub fn encode_workbook(image: &WorkbookImage) -> Result<Vec<u8>, StoreError> {
    encode_workbook_versioned(image, FORMAT_VERSION)
}

/// Encodes at an explicit format version — the compat-test hook for
/// producing version-1 (epoch-less) images with today's encoder.
#[doc(hidden)]
pub fn encode_workbook_versioned(
    image: &WorkbookImage,
    version: u16,
) -> Result<Vec<u8>, StoreError> {
    if version == 0 || version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags

    // Sections, streamed back-to-back; the footer records their spans.
    let mut footer_entries: Vec<(String, u64, u64, u32)> = Vec::new();
    for sheet in &image.sheets {
        let payload = encode_sheet(sheet)?;
        footer_entries.push((
            sheet.name.clone(),
            out.len() as u64,
            payload.len() as u64,
            crc32(&payload),
        ));
        out.extend_from_slice(&payload);
    }
    let cross_payload = encode_cross(&image.cross)?;
    let cross_span = (out.len() as u64, cross_payload.len() as u64, crc32(&cross_payload));
    out.extend_from_slice(&cross_payload);

    // Footer. Version 2 leads with the replay epoch: every WAL record
    // with an older stamp is already folded into this snapshot.
    let mut footer = Vec::new();
    if version >= 2 {
        write_uvarint(&mut footer, image.epoch)?;
    }
    write_uvarint(&mut footer, footer_entries.len() as u64)?;
    for (name, off, len, crc) in &footer_entries {
        write_string(&mut footer, name)?;
        write_uvarint(&mut footer, *off)?;
        write_uvarint(&mut footer, *len)?;
        footer.extend_from_slice(&crc.to_le_bytes());
    }
    write_uvarint(&mut footer, cross_span.0)?;
    write_uvarint(&mut footer, cross_span.1)?;
    footer.extend_from_slice(&cross_span.2.to_le_bytes());

    // The footer CRC also covers the 8 header bytes, so a flipped
    // version/flags bit cannot slip past the checksums.
    let mut crc_input = out[..HEADER_LEN].to_vec();
    crc_input.extend_from_slice(&footer);
    let footer_crc = crc32(&crc_input);
    out.extend_from_slice(&footer);
    out.extend_from_slice(&(footer.len() as u32).to_le_bytes());
    out.extend_from_slice(&footer_crc.to_le_bytes());
    out.extend_from_slice(&TAIL_MAGIC);
    Ok(out)
}

/// Encodes and writes a workbook image to `path` atomically: the bytes
/// go to a `<path>.tmp` sibling, are fsynced, and rename over `path` —
/// so a crash mid-write can never destroy an existing snapshot. The
/// parent directory is then fsynced, so the rename itself survives
/// power loss (a lost rename would silently resurrect the old
/// snapshot).
pub fn write_workbook_file(path: &Path, image: &WorkbookImage) -> Result<(), StoreError> {
    write_workbook_file_with(crate::vfs::std_vfs().as_ref(), path, image)
}

/// [`write_workbook_file`] over an explicit [`Vfs`].
///
/// [`Vfs`]: crate::vfs::Vfs
pub fn write_workbook_file_with(
    vfs: &dyn crate::vfs::Vfs,
    path: &Path,
    image: &WorkbookImage,
) -> Result<(), StoreError> {
    let bytes = encode_workbook(image)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync()?;
    }
    if let Err(e) = vfs.rename(&tmp, path) {
        let _ = vfs.remove(&tmp);
        return Err(e);
    }
    vfs.sync_parent_dir(path)?;
    Ok(())
}

fn encode_sheet(sheet: &SheetImage) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();

    // 1. Interned formula sources: first occurrence wins, cells refer to
    //    table indices. Autofilled neighbours usually differ (shifted
    //    references), but lookup columns and repeated rollups dedup well.
    let mut intern: Vec<&str> = Vec::new();
    let mut intern_ids: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (_, rec) in &sheet.cells {
        if let CellRecord::Formula { src, .. } = rec {
            if !intern_ids.contains_key(src.as_str()) {
                intern_ids.insert(src, intern.len() as u64);
                intern.push(src);
            }
        }
    }
    write_uvarint(&mut out, intern.len() as u64)?;
    for src in &intern {
        write_string(&mut out, src)?;
    }

    // 2. Cells, delta-coded in (col, row) order. Sort *references* —
    // images usually arrive pre-sorted, and re-establishing the order
    // must not deep-clone every formula string on the autosave path.
    let mut cells: Vec<&(Cell, CellRecord)> = sheet.cells.iter().collect();
    cells.sort_by_key(|(c, _)| *c);
    write_uvarint(&mut out, cells.len() as u64)?;
    let mut prev = Cell::new(1, 1);
    let mut first = true;
    for (cell, rec) in cells {
        write_cell_gap(&mut out, *cell, &mut prev, &mut first)?;
        let (tag, value) = match rec {
            CellRecord::Pure(v) => (value_tag(v), v),
            CellRecord::Formula { src, value } => {
                out.push(0x10 | value_tag(value));
                let id = intern_ids[src.as_str()];
                write_uvarint(&mut out, id)?;
                write_value_payload(&mut out, value)?;
                continue;
            }
        };
        out.push(tag);
        write_value_payload(&mut out, value)?;
    }

    // 3. Dirty set, same delta scheme.
    let mut dirty = sheet.dirty.clone();
    dirty.sort_unstable();
    write_uvarint(&mut out, dirty.len() as u64)?;
    let mut prev = Cell::new(1, 1);
    let mut first = true;
    for cell in &dirty {
        write_cell_gap(&mut out, *cell, &mut prev, &mut first)?;
    }

    // 4. The compressed graph.
    let graph = encode_graph(&sheet.graph);
    write_uvarint(&mut out, graph.len() as u64)?;
    out.extend_from_slice(&graph);
    Ok(out)
}

/// Gap-codes one cell against the previous one in (col, row) order:
/// column delta (≥ 0), then an absolute row on a column change or a row
/// delta (> 0) within a column.
fn write_cell_gap(
    out: &mut Vec<u8>,
    cell: Cell,
    prev: &mut Cell,
    first: &mut bool,
) -> Result<(), StoreError> {
    if *first {
        *first = false;
        write_uvarint(out, u64::from(cell.col))?;
        write_uvarint(out, 0)?; // marker: absolute row follows
        write_uvarint(out, u64::from(cell.row))?;
    } else {
        let dcol = u64::from(cell.col - prev.col);
        write_uvarint(out, dcol)?;
        if dcol == 0 {
            write_uvarint(out, u64::from(cell.row - prev.row))?;
        } else {
            write_uvarint(out, 0)?;
            write_uvarint(out, u64::from(cell.row))?;
        }
    }
    *prev = cell;
    Ok(())
}

fn read_cell_gap(r: &mut &[u8], prev: &mut Cell, first: &mut bool) -> Result<Cell, StoreError> {
    let cell = if *first {
        *first = false;
        let col = small_i64(read_uvarint(r)?)?;
        if read_uvarint(r)? != 0 {
            return Err(StoreError::Malformed("first cell must carry an absolute row"));
        }
        cell_from(col, small_i64(read_uvarint(r)?)?)?
    } else {
        let dcol = small_i64(read_uvarint(r)?)?;
        let col = i64::from(prev.col) + dcol;
        if dcol == 0 {
            let drow = small_i64(read_uvarint(r)?)?;
            if drow == 0 {
                return Err(StoreError::Malformed("duplicate cell in sorted run"));
            }
            cell_from(col, i64::from(prev.row) + drow)?
        } else {
            if read_uvarint(r)? != 0 {
                return Err(StoreError::Malformed("column change must reset the row"));
            }
            cell_from(col, small_i64(read_uvarint(r)?)?)?
        }
    };
    *prev = cell;
    Ok(cell)
}

fn encode_cross(cross: &[CrossEdgeImage]) -> Result<Vec<u8>, StoreError> {
    // Sorted for byte-identical output from equal workbooks.
    let mut edges = cross.to_vec();
    edges.sort_by_key(|e| (e.src, e.dst, e.dep, e.prec.head(), e.prec.tail()));
    let mut out = Vec::new();
    write_uvarint(&mut out, edges.len() as u64)?;
    for e in &edges {
        write_uvarint(&mut out, u64::from(e.src))?;
        write_uvarint(&mut out, u64::from(e.dst))?;
        write_cell(&mut out, e.dep)?;
        crate::image::write_range(&mut out, e.prec)?;
    }
    Ok(out)
}

fn decode_cross(mut bytes: &[u8]) -> Result<Vec<CrossEdgeImage>, StoreError> {
    let r = &mut bytes;
    let count = read_uvarint(r)?;
    // Each cross edge is at least 8 varint bytes.
    let count = bounded_count(count, r.len(), 8, "cross-edge count exceeds input")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let src = read_uvarint(r)?;
        let dst = read_uvarint(r)?;
        if src > u64::from(u32::MAX) || dst > u64::from(u32::MAX) {
            return Err(StoreError::Malformed("cross-edge sheet index out of range"));
        }
        let dep = read_cell(r)?;
        let prec = crate::image::read_range(r)?;
        out.push(CrossEdgeImage { src: src as u32, prec, dst: dst as u32, dep });
    }
    Ok(out)
}

// ---- graph encoding -----------------------------------------------------

fn pattern_to_u8(p: PatternType) -> u8 {
    match p {
        PatternType::Single => 0,
        PatternType::RR => 1,
        PatternType::RF => 2,
        PatternType::FR => 3,
        PatternType::FF => 4,
        PatternType::RRChain => 5,
        PatternType::RRGapOne => 6,
    }
}

fn pattern_from_u8(b: u8) -> Result<PatternType, StoreError> {
    Ok(match b {
        0 => PatternType::Single,
        1 => PatternType::RR,
        2 => PatternType::RF,
        3 => PatternType::FR,
        4 => PatternType::FF,
        5 => PatternType::RRChain,
        6 => PatternType::RRGapOne,
        _ => return Err(StoreError::Malformed("unknown pattern tag")),
    })
}

/// Encodes a graph snapshot into the compact binary form (no framing —
/// callers add length and checksum). Also the unit the `persistence`
/// bench measures bytes-per-edge on.
pub fn encode_graph(snap: &GraphSnapshot) -> Vec<u8> {
    // The byte-level prelude: config, counters, edge count.
    let mut out = Vec::new();
    let infallible: Result<(), StoreError> = (|| {
        write_uvarint(&mut out, snap.config.patterns.len() as u64)?;
        for &p in &snap.config.patterns {
            out.push(pattern_to_u8(p));
        }
        let flags = u8::from(snap.config.in_row_only)
            | (u8::from(snap.config.column_priority) << 1)
            | (u8::from(snap.config.use_cues) << 2);
        out.push(flags);
        write_uvarint(&mut out, snap.dependencies_inserted)?;
        write_uvarint(&mut out, snap.edges.len() as u64)?;

        // The bit-coded edge stream.
        let mut w = BitWriter::new(&mut out);
        let mut prev_head = Cell::new(1, 1);
        for e in &snap.edges {
            let dh = e.dep.head();
            w.write_gamma_signed(i64::from(dh.col) - i64::from(prev_head.col))?;
            w.write_gamma_signed(i64::from(dh.row) - i64::from(prev_head.row))?;
            w.write_gamma0(u64::from(e.dep.width() - 1))?;
            w.write_gamma0(u64::from(e.dep.height() - 1))?;
            let ph = e.prec.head();
            write_zeta_signed(&mut w, i64::from(ph.col) - i64::from(dh.col))?;
            write_zeta_signed(&mut w, i64::from(ph.row) - i64::from(dh.row))?;
            w.write_zeta(u64::from(e.prec.width() - 1), PREC_ZETA_K)?;
            w.write_zeta(u64::from(e.prec.height() - 1), PREC_ZETA_K)?;
            w.write_bit(e.axis == Axis::Row)?;
            w.write_gamma(u64::from(e.count))?;
            write_meta(&mut w, &e.meta, dh)?;
            prev_head = dh;
        }
        w.finish()?;
        Ok(())
    })();
    debug_assert!(infallible.is_ok(), "Vec sinks cannot fail");
    out
}

/// Decodes a graph snapshot written by [`encode_graph`].
pub fn decode_graph(mut bytes: &[u8]) -> Result<GraphSnapshot, StoreError> {
    let r = &mut bytes;
    let n_patterns = read_uvarint(r)?;
    if n_patterns > 16 {
        return Err(StoreError::Malformed("config pattern list too long"));
    }
    let mut patterns = Vec::with_capacity(n_patterns as usize);
    for _ in 0..n_patterns {
        let mut b = [0u8; 1];
        std::io::Read::read_exact(r, &mut b)?;
        patterns.push(pattern_from_u8(b[0])?);
    }
    let mut flags = [0u8; 1];
    std::io::Read::read_exact(r, &mut flags)?;
    if flags[0] & !0b111 != 0 {
        return Err(StoreError::Malformed("unknown config flag bits"));
    }
    let config = Config {
        patterns,
        in_row_only: flags[0] & 1 != 0,
        column_priority: flags[0] & 2 != 0,
        use_cues: flags[0] & 4 != 0,
    };
    let dependencies_inserted = read_uvarint(r)?;
    let edge_count = read_uvarint(r)?;
    // Each edge spends well over one bit of the stream.
    let edge_count =
        bounded_count(edge_count, r.len().saturating_mul(8), 1, "edge count exceeds input")?;

    let mut br = BitReader::new(*r);
    let mut edges = Vec::with_capacity(edge_count);
    let mut prev_head = Cell::new(1, 1);
    for _ in 0..edge_count {
        let dh_col = checked_coord(i64::from(prev_head.col), br.read_gamma_signed()?)?;
        let dh_row = checked_coord(i64::from(prev_head.row), br.read_gamma_signed()?)?;
        let dh = cell_from(dh_col, dh_row)?;
        let dep_tail = cell_from(
            dh_col + small_i64(br.read_gamma0()?)?,
            dh_row + small_i64(br.read_gamma0()?)?,
        )?;
        let ph_col = checked_coord(dh_col, read_zeta_signed(&mut br)?)?;
        let ph_row = checked_coord(dh_row, read_zeta_signed(&mut br)?)?;
        let ph = cell_from(ph_col, ph_row)?;
        let prec_tail = cell_from(
            ph_col + small_i64(br.read_zeta(PREC_ZETA_K)?)?,
            ph_row + small_i64(br.read_zeta(PREC_ZETA_K)?)?,
        )?;
        let axis = if br.read_bit()? { Axis::Row } else { Axis::Col };
        let count = br.read_gamma()?;
        if count > u64::from(u32::MAX) {
            return Err(StoreError::Malformed("edge count field out of range"));
        }
        let meta = read_meta(&mut br, dh)?;
        edges.push(Edge {
            prec: Range::new(ph, prec_tail),
            dep: Range::new(dh, dep_tail),
            axis,
            meta,
            count: count as u32,
        });
        prev_head = dh;
    }
    Ok(GraphSnapshot { config, edges, dependencies_inserted })
}

fn write_zeta_signed<W: Write>(w: &mut BitWriter<W>, v: i64) -> Result<(), StoreError> {
    w.write_zeta(crate::codec::zigzag(v), PREC_ZETA_K)
}

fn read_zeta_signed<R: std::io::Read>(r: &mut BitReader<R>) -> Result<i64, StoreError> {
    Ok(crate::codec::unzigzag(r.read_zeta(PREC_ZETA_K)?))
}

/// Meta tags occupy 3 bits.
fn meta_tag(meta: &PatternMeta) -> u64 {
    match meta {
        PatternMeta::Single => 0,
        PatternMeta::RR { .. } => 1,
        PatternMeta::RF { .. } => 2,
        PatternMeta::FR { .. } => 3,
        PatternMeta::FF { .. } => 4,
        PatternMeta::RRChain { .. } => 5,
        PatternMeta::RRGapOne { .. } => 6,
    }
}

fn write_meta<W: Write>(
    w: &mut BitWriter<W>,
    meta: &PatternMeta,
    dep_head: Cell,
) -> Result<(), StoreError> {
    w.write_bits(meta_tag(meta), 3)?;
    fn offset<W: Write>(w: &mut BitWriter<W>, o: Offset) -> Result<(), StoreError> {
        w.write_gamma_signed(o.dc)?;
        w.write_gamma_signed(o.dr)
    }
    match meta {
        PatternMeta::Single => Ok(()),
        PatternMeta::RR { h_rel, t_rel } | PatternMeta::RRGapOne { h_rel, t_rel } => {
            offset(w, *h_rel)?;
            offset(w, *t_rel)
        }
        PatternMeta::RF { h_rel, t_fix } => {
            offset(w, *h_rel)?;
            write_meta_cell(w, *t_fix, dep_head)
        }
        PatternMeta::FR { h_fix, t_rel } => {
            write_meta_cell(w, *h_fix, dep_head)?;
            offset(w, *t_rel)
        }
        PatternMeta::FF { h_fix, t_fix } => {
            write_meta_cell(w, *h_fix, dep_head)?;
            write_meta_cell(w, *t_fix, dep_head)
        }
        PatternMeta::RRChain { dir } => w.write_bit(matches!(dir, ChainDir::Below)),
    }
}

/// Fixed meta cells are stored relative to the dependent head (they sit
/// nearby) — note they live in *canonical* coordinates, which is fine:
/// the delta is just a compact representation, not a geometric claim.
fn write_meta_cell<W: Write>(
    w: &mut BitWriter<W>,
    c: Cell,
    dep_head: Cell,
) -> Result<(), StoreError> {
    w.write_gamma_signed(i64::from(c.col) - i64::from(dep_head.col))?;
    w.write_gamma_signed(i64::from(c.row) - i64::from(dep_head.row))
}

/// Inverse of [`write_meta_cell`].
fn read_meta_cell<R: std::io::Read>(
    r: &mut BitReader<R>,
    dep_head: Cell,
) -> Result<Cell, StoreError> {
    let col = checked_coord(i64::from(dep_head.col), r.read_gamma_signed()?)?;
    let row = checked_coord(i64::from(dep_head.row), r.read_gamma_signed()?)?;
    cell_from(col, row)
}

fn read_meta<R: std::io::Read>(
    r: &mut BitReader<R>,
    dep_head: Cell,
) -> Result<PatternMeta, StoreError> {
    let tag = r.read_bits(3)?;
    fn offset<R: std::io::Read>(r: &mut BitReader<R>) -> Result<Offset, StoreError> {
        Ok(Offset::new(r.read_gamma_signed()?, r.read_gamma_signed()?))
    }
    Ok(match tag {
        0 => PatternMeta::Single,
        1 => {
            let h_rel = offset(r)?;
            let t_rel = offset(r)?;
            PatternMeta::RR { h_rel, t_rel }
        }
        2 => {
            let h_rel = offset(r)?;
            let t_fix = read_meta_cell(r, dep_head)?;
            PatternMeta::RF { h_rel, t_fix }
        }
        3 => {
            let h_fix = read_meta_cell(r, dep_head)?;
            let t_rel = offset(r)?;
            PatternMeta::FR { h_fix, t_rel }
        }
        4 => {
            let h_fix = read_meta_cell(r, dep_head)?;
            let t_fix = read_meta_cell(r, dep_head)?;
            PatternMeta::FF { h_fix, t_fix }
        }
        5 => PatternMeta::RRChain {
            dir: if r.read_bit()? { ChainDir::Below } else { ChainDir::Above },
        },
        6 => {
            let h_rel = offset(r)?;
            let t_rel = offset(r)?;
            PatternMeta::RRGapOne { h_rel, t_rel }
        }
        _ => return Err(StoreError::Malformed("unknown meta tag")),
    })
}

// ---- reading ------------------------------------------------------------

/// Footer entry for one section.
#[derive(Debug, Clone)]
struct Span {
    offset: u64,
    len: u64,
    crc: u32,
}

/// A validated container, decoding sections lazily.
///
/// `open`/`from_bytes` validate the header, trailer, and footer (magic,
/// version, footer checksum, section bounds); per-sheet payloads are only
/// CRC-checked and decoded when asked for — reopening one sheet of a
/// many-sheet workbook does not touch the other sections.
pub struct StoreReader {
    bytes: Vec<u8>,
    names: Vec<String>,
    sheets: Vec<Span>,
    cross: Span,
    epoch: u64,
}

impl StoreReader {
    /// Opens and validates a container file.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Opens and validates a container file through an explicit vfs.
    pub fn open_with(vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<Self, StoreError> {
        Self::from_bytes(vfs.read(path)?)
    }

    /// Validates container bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(StoreError::Truncated { what: "container header/trailer" });
        }
        if bytes[0..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        if bytes[bytes.len() - 4..] != TAIL_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let t = bytes.len() - TRAILER_LEN;
        let footer_len = u32::from_le_bytes(bytes[t..t + 4].try_into().expect("4 bytes")) as usize;
        let footer_crc = u32::from_le_bytes(bytes[t + 4..t + 8].try_into().expect("4 bytes"));
        let footer_start = t
            .checked_sub(footer_len)
            .filter(|&s| s >= HEADER_LEN)
            .ok_or(StoreError::Truncated { what: "footer" })?;
        let footer = &bytes[footer_start..t];
        let mut crc_input = bytes[..HEADER_LEN].to_vec();
        crc_input.extend_from_slice(footer);
        if crc32(&crc_input) != footer_crc {
            return Err(StoreError::ChecksumMismatch { what: "footer" });
        }

        // Parse the footer. Version 2 leads with the replay epoch.
        let r = &mut &footer[..];
        let epoch = if version >= 2 { read_uvarint(r)? } else { 0 };
        let sheet_count = read_uvarint(r)?;
        // Each footer entry is at least 7 bytes (name len + span + crc).
        let sheet_count = bounded_count(sheet_count, r.len(), 7, "sheet count exceeds footer")?;
        let mut names = Vec::with_capacity(sheet_count);
        let mut sheets = Vec::with_capacity(sheet_count);
        let read_span = |r: &mut &[u8]| -> Result<Span, StoreError> {
            let offset = read_uvarint(r)?;
            let len = read_uvarint(r)?;
            if offset < HEADER_LEN as u64
                || offset.checked_add(len).is_none_or(|end| end > footer_start as u64)
            {
                return Err(StoreError::Malformed("section span out of bounds"));
            }
            let mut crc = [0u8; 4];
            std::io::Read::read_exact(r, &mut crc)?;
            Ok(Span { offset, len, crc: u32::from_le_bytes(crc) })
        };
        for _ in 0..sheet_count {
            names.push(read_string(r, MAX_STRING)?);
            sheets.push(read_span(r)?);
        }
        let cross = read_span(r)?;
        if !r.is_empty() {
            return Err(StoreError::Malformed("trailing bytes in footer"));
        }
        Ok(StoreReader { bytes, names, sheets, cross, epoch })
    }

    /// The snapshot's replay epoch (0 for a version-1 file): WAL records
    /// stamped with an older epoch are already folded into it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of sheet sections.
    pub fn sheet_count(&self) -> usize {
        self.sheets.len()
    }

    /// Name of sheet `i` (available without decoding the section).
    pub fn sheet_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// CRC-checks and decodes sheet section `i`.
    pub fn read_sheet(&self, i: usize) -> Result<SheetImage, StoreError> {
        let span = self.sheets.get(i).ok_or(StoreError::Malformed("sheet index out of range"))?;
        let payload = self.section(span, "sheet section")?;
        decode_sheet(payload, self.names[i].clone())
    }

    /// CRC-checks and decodes the cross-sheet edge table.
    pub fn read_cross(&self) -> Result<Vec<CrossEdgeImage>, StoreError> {
        let payload = self.section(&self.cross, "cross-edge section")?;
        let cross = decode_cross(payload)?;
        let n = self.sheets.len() as u32;
        if cross.iter().any(|e| e.src >= n || e.dst >= n) {
            return Err(StoreError::Malformed("cross edge names a missing sheet"));
        }
        Ok(cross)
    }

    /// Decodes every section into a full image.
    pub fn read_all(&self) -> Result<WorkbookImage, StoreError> {
        let sheets =
            (0..self.sheet_count()).map(|i| self.read_sheet(i)).collect::<Result<_, _>>()?;
        Ok(WorkbookImage { sheets, cross: self.read_cross()?, epoch: self.epoch })
    }

    fn section(&self, span: &Span, what: &'static str) -> Result<&[u8], StoreError> {
        let payload = &self.bytes[span.offset as usize..(span.offset + span.len) as usize];
        if crc32(payload) != span.crc {
            return Err(StoreError::ChecksumMismatch { what });
        }
        Ok(payload)
    }
}

fn decode_sheet(mut bytes: &[u8], name: String) -> Result<SheetImage, StoreError> {
    let r = &mut bytes;

    // 1. Interned formula sources.
    let n_intern = read_uvarint(r)?;
    let n_intern = bounded_count(n_intern, r.len(), 1, "intern table count exceeds input")?;
    let mut intern = Vec::with_capacity(n_intern);
    for _ in 0..n_intern {
        intern.push(read_string(r, MAX_STRING)?);
    }

    // 2. Cells.
    let n_cells = read_uvarint(r)?;
    // Each cell is at least 3 bytes: gap coding plus the tag byte.
    let n_cells = bounded_count(n_cells, r.len(), 3, "cell count exceeds input")?;
    let mut cells = Vec::with_capacity(n_cells);
    let mut prev = Cell::new(1, 1);
    let mut first = true;
    for _ in 0..n_cells {
        let cell = read_cell_gap(r, &mut prev, &mut first)?;
        let mut tag = [0u8; 1];
        std::io::Read::read_exact(r, &mut tag)?;
        let rec = if tag[0] & 0x10 != 0 {
            let id = read_uvarint(r)?;
            let src = intern
                .get(id as usize)
                .ok_or(StoreError::Malformed("formula intern id out of range"))?
                .clone();
            CellRecord::Formula { src, value: read_value_payload(r, tag[0] & 0x0F)? }
        } else {
            CellRecord::Pure(read_value_payload(r, tag[0])?)
        };
        cells.push((cell, rec));
    }

    // 3. Dirty set.
    let n_dirty = read_uvarint(r)?;
    let n_dirty = bounded_count(n_dirty, r.len(), 2, "dirty count exceeds input")?;
    let mut dirty = Vec::with_capacity(n_dirty);
    let mut prev = Cell::new(1, 1);
    let mut first = true;
    for _ in 0..n_dirty {
        dirty.push(read_cell_gap(r, &mut prev, &mut first)?);
    }

    // 4. Graph.
    let graph_len = read_uvarint(r)?;
    if graph_len > r.len() as u64 {
        return Err(StoreError::Truncated { what: "graph subsection" });
    }
    let (graph_bytes, rest) = r.split_at(graph_len as usize);
    if !rest.is_empty() {
        return Err(StoreError::Malformed("trailing bytes in sheet section"));
    }
    let graph = decode_graph(graph_bytes)?;
    Ok(SheetImage { name, cells, dirty, graph })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::{Dependency, FormulaGraph};
    use taco_formula::Value;

    fn sample_graph() -> GraphSnapshot {
        let deps = [
            ("A1:B3", "C1"),
            ("A2:B4", "C2"),
            ("A3:B5", "C3"),
            ("G1:G9", "H1"),
            ("G1:G9", "H2"),
            ("J1", "K2"),
            ("K2", "K3"),
            ("K3", "K4"),
        ];
        FormulaGraph::build(
            Config::taco_full(),
            deps.iter().map(|(p, d)| {
                Dependency::new(Range::parse_a1(p).unwrap(), Cell::parse_a1(d).unwrap())
            }),
        )
        .snapshot()
    }

    fn sample_image() -> WorkbookImage {
        let sheet = SheetImage {
            name: "My Sheet".to_string(),
            cells: vec![
                (Cell::new(1, 1), CellRecord::Pure(Value::Number(1.5))),
                (Cell::new(1, 2), CellRecord::Pure(Value::Text("label".into()))),
                (
                    Cell::new(3, 1),
                    CellRecord::Formula { src: "SUM(A1:B3)".into(), value: Value::Number(1.5) },
                ),
                (
                    Cell::new(3, 2),
                    CellRecord::Formula { src: "SUM(A2:B4)".into(), value: Value::Empty },
                ),
            ],
            dirty: vec![Cell::new(3, 2)],
            graph: sample_graph(),
        };
        let other = SheetImage {
            name: "Empty".to_string(),
            cells: Vec::new(),
            dirty: Vec::new(),
            graph: FormulaGraph::taco().snapshot(),
        };
        WorkbookImage {
            sheets: vec![sheet, other],
            cross: vec![CrossEdgeImage {
                src: 0,
                prec: Range::parse_a1("C1:C3").unwrap(),
                dst: 1,
                dep: Cell::new(1, 1),
            }],
            epoch: 7,
        }
    }

    #[test]
    fn graph_round_trips_and_beats_json() {
        let snap = sample_graph();
        let bytes = encode_graph(&snap);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(back, snap);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(
            json.len() >= 3 * bytes.len(),
            "binary {} bytes vs json {} bytes",
            bytes.len(),
            json.len()
        );
    }

    #[test]
    fn workbook_round_trips() {
        let image = sample_image();
        let bytes = encode_workbook(&image).unwrap();
        let reader = StoreReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.sheet_count(), 2);
        assert_eq!(reader.sheet_name(0), "My Sheet");
        assert_eq!(reader.epoch(), 7);
        let back = reader.read_all().unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn version_1_files_read_back_with_epoch_zero() {
        // An epoch-less image written by the v1 encoder must still open,
        // reporting epoch 0 — the compat contract for pre-epoch files.
        let mut image = sample_image();
        image.epoch = 0;
        let bytes = encode_workbook_versioned(&image, 1).unwrap();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);
        let reader = StoreReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.read_all().unwrap(), image);
        // And a version beyond the current one is refused at encode time.
        assert!(matches!(
            encode_workbook_versioned(&image, FORMAT_VERSION + 1),
            Err(StoreError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn encoding_is_deterministic() {
        let image = sample_image();
        assert_eq!(encode_workbook(&image).unwrap(), encode_workbook(&image).unwrap());
        // Cross-edge order is canonicalized away.
        let mut shuffled = image.clone();
        shuffled.cross.reverse();
        assert_eq!(encode_workbook(&image).unwrap(), encode_workbook(&shuffled).unwrap());
    }

    #[test]
    fn lazy_sheet_loads_skip_other_sections() {
        let image = sample_image();
        let mut bytes = encode_workbook(&image).unwrap();
        // Damage sheet 0's payload; sheet 1 and the cross table must still
        // load (per-sheet checksums, not a whole-file gate).
        let reader = StoreReader::from_bytes(bytes.clone()).unwrap();
        let span_off = {
            // Corrupt a byte inside section 0 (starts right after header).
            HEADER_LEN + 2
        };
        bytes[span_off] ^= 0x40;
        let damaged = StoreReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            damaged.read_sheet(0),
            Err(StoreError::ChecksumMismatch { what: "sheet section" })
        ));
        assert_eq!(damaged.read_sheet(1).unwrap(), reader.read_sheet(1).unwrap());
        assert_eq!(damaged.read_cross().unwrap(), image.cross);
    }

    #[test]
    fn restored_graph_answers_queries() {
        let snap = sample_graph();
        let g = FormulaGraph::restore(decode_graph(&encode_graph(&snap)).unwrap());
        let probe = Range::parse_a1("A2").unwrap();
        let orig = FormulaGraph::restore(snap);
        assert_eq!(g.find_dependents(probe), orig.find_dependents(probe));
        assert_eq!(g.stats(), orig.stats());
    }
}
