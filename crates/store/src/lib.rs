//! `taco_store` — compact on-disk persistence for compressed formula
//! graphs, with a write-ahead log for incremental durability.
//!
//! TACO's compression pass is the expensive step of opening a workbook
//! (§VI-C measures seconds on the largest sheets); persisting the
//! *compressed* graph turns reopen time from O(recompress) into O(read).
//! The crate is layered like the WebGraph storage stack it borrows from:
//!
//! 1. [`codec`] — LEB128 varints, zigzag, and Elias-γ / ζ_k bit codes
//!    over `std::io`, plus CRC-32;
//! 2. [`container`] — a sectioned binary format for a whole workbook:
//!    header with magic/version, one section per sheet (interned formula
//!    sources, delta-coded cell values, the compressed graph's edges
//!    gap-coded in sorted order), the cross-sheet edge table, and a
//!    footer index that enables per-sheet lazy loading;
//! 3. [`wal`] — an append-only log of edit records with per-record
//!    checksums, replay-on-open, and explicit fsync points; a crash can
//!    tear the final record, which replay detects and drops.
//!
//! Everything is plain data ([`WorkbookImage`]); `taco_engine` converts
//! live workbooks to and from images and owns the autosave/compaction
//! policy. All decoders degrade to typed [`StoreError`]s on corrupt
//! input — truncations, bit flips, wrong magic/version, and mid-record
//! WAL tears never panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod container;
pub mod frame;
pub mod image;
pub mod obs;
pub mod vfs;
pub mod wal;

pub use container::{
    decode_graph, encode_graph, encode_workbook, write_workbook_file, write_workbook_file_with,
    StoreReader, FORMAT_VERSION,
};
pub use frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
pub use image::{CellRecord, CrossEdgeImage, SheetImage, WorkbookImage};
pub use obs::WalObs;
pub use vfs::{std_vfs, FaultHits, FaultPlan, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{EditRecord, ReplayMode, WalReader, WalReplay, WalWriter};

use std::fmt;

/// Errors from every storage layer. Corrupt input of any kind maps to one
/// of these — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io {
        /// The failing operation's error kind.
        kind: std::io::ErrorKind,
    },
    /// The file does not start (or end) with the container magic.
    BadMagic,
    /// The container's format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// A section, footer, or WAL record failed its CRC-32 check.
    ChecksumMismatch {
        /// Which structure failed (e.g. `"sheet section"`, `"footer"`).
        what: &'static str,
    },
    /// The file ends before a structure is complete.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// A structurally invalid encoding (bad varint, out-of-range
    /// coordinate, unknown tag…).
    Malformed(&'static str),
    /// A WAL record in the middle of the log failed its checksum.
    WalCorrupt {
        /// Zero-based index of the damaged record.
        record: u64,
    },
    /// The WAL ends mid-record (a crash tear), reported in strict mode.
    WalTorn {
        /// Zero-based index of the torn record.
        record: u64,
        /// Byte offset at which the tear begins.
        offset: u64,
    },
    /// A well-formed edit record could not be applied to the workbook
    /// being restored (unknown sheet, unparsable formula…).
    InvalidRecord(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { kind } => write!(f, "i/o error: {kind:?}"),
            StoreError::BadMagic => write!(f, "not a taco_store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v} (this build reads ≤ {FORMAT_VERSION})")
            }
            StoreError::ChecksumMismatch { what } => write!(f, "checksum mismatch in {what}"),
            StoreError::Truncated { what } => write!(f, "file truncated inside {what}"),
            StoreError::Malformed(what) => write!(f, "malformed encoding: {what}"),
            StoreError::WalCorrupt { record } => write!(f, "WAL record {record} is corrupt"),
            StoreError::WalTorn { record, offset } => {
                write!(f, "WAL torn inside record {record} at byte {offset}")
            }
            StoreError::InvalidRecord(why) => write!(f, "edit record not applicable: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { what: "input stream" }
        } else {
            StoreError::Io { kind: e.kind() }
        }
    }
}
