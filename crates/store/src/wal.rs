//! The write-ahead log: an append-only file of edit records.
//!
//! ```text
//! wal     := magic "TWAL" · version u16 LE · record*
//! record  := payload_len uvarint · crc32(payload) u32 LE · payload
//! payload := epoch uvarint · op u8 · fields        (version 2)
//!          | op u8 · fields                        (version 1)
//! ```
//!
//! Version 2 stamps every record with the **replay epoch** current when
//! it was appended: the epoch of the snapshot the record extends.
//! Replay-on-open compares each record's epoch against the snapshot's —
//! a record with an older epoch was already folded into the snapshot by
//! a compaction whose log truncation never hit the disk, and is
//! skipped. That makes replay idempotent for *every* record kind,
//! including structural edits, whose double application would shift
//! rows twice. Version-1 logs decode with epoch `0` on every record.
//!
//! Each record carries its own CRC-32 (covering the epoch stamp too),
//! so the two failure modes are distinguishable:
//!
//! - a **tear** — the file ends before a record is complete (the classic
//!   crash-mid-append shape). [`ReplayMode::TolerateTear`] drops the torn
//!   tail and reports where it began; [`ReplayMode::Strict`] returns
//!   [`StoreError::WalTorn`];
//! - **corruption** — a complete record whose checksum fails (bit rot,
//!   overwritten bytes). Always [`StoreError::WalCorrupt`]: records after
//!   it cannot be trusted even if they parse.
//!
//! [`WalWriter`] appends records and exposes explicit fsync points
//! ([`WalWriter::sync`]); the engine's autosave policy decides how often
//! to call it and when to fold the log back into a fresh snapshot
//! ([`WalWriter::reset`] truncates to an empty log after compaction).

use crate::codec::{crc32, read_string, read_uvarint, write_string, write_uvarint};
use crate::container::MAX_STRING;
use crate::image::{read_cell, read_range, read_value, write_cell, write_range, write_value};
use crate::vfs::{std_vfs, Vfs, VfsFile};
use crate::StoreError;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use taco_core::StructuralOp;
use taco_formula::Value;
use taco_grid::{Cell, Range};

/// Leading WAL magic.
pub const WAL_MAGIC: [u8; 4] = *b"TWAL";
/// Current WAL format version (2 = epoch-stamped records). Version-1
/// logs are still readable; their records carry epoch `0`.
pub const WAL_VERSION: u16 = 2;
const WAL_HEADER_LEN: u64 = 6;

/// One logged edit. Sheet indices are dense [`sheet ids`](usize) in the
/// workbook the log belongs to; `AddSheet` allocates the next index, so a
/// log replays against the snapshot it was opened with.
#[derive(Debug, Clone, PartialEq)]
pub enum EditRecord {
    /// `sheets[sheet]!cell = value`.
    SetValue {
        /// Dense sheet index.
        sheet: u32,
        /// The edited cell.
        cell: Cell,
        /// The new pure value.
        value: Value,
    },
    /// `sheets[sheet]!cell = =src`.
    SetFormula {
        /// Dense sheet index.
        sheet: u32,
        /// The formula cell.
        cell: Cell,
        /// Formula source text (leading `=` optional).
        src: String,
    },
    /// Clears every cell of `sheets[sheet]!range`.
    ClearRange {
        /// Dense sheet index.
        sheet: u32,
        /// The cleared range.
        range: Range,
    },
    /// Appends a new sheet named `name`.
    AddSheet {
        /// The sheet name.
        name: String,
    },
    /// A structural edit (row/column insert or delete) of
    /// `sheets[sheet]`, including its workbook-wide fallout: replay
    /// re-runs the same cross-sheet reference rewrites the live edit
    /// performed.
    Structural {
        /// Dense sheet index.
        sheet: u32,
        /// The geometric transform.
        op: StructuralOp,
    },
}

const OP_SET_VALUE: u8 = 0;
const OP_SET_FORMULA: u8 = 1;
const OP_CLEAR_RANGE: u8 = 2;
const OP_ADD_SHEET: u8 = 3;
const OP_STRUCTURAL: u8 = 4;

// `Structural` sub-kind bytes.
const STRUCT_INSERT_ROWS: u8 = 0;
const STRUCT_DELETE_ROWS: u8 = 1;
const STRUCT_INSERT_COLS: u8 = 2;
const STRUCT_DELETE_COLS: u8 = 3;

impl EditRecord {
    /// Encodes the record payload (op byte + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let infallible: Result<(), StoreError> = (|| {
            match self {
                EditRecord::SetValue { sheet, cell, value } => {
                    out.push(OP_SET_VALUE);
                    write_uvarint(&mut out, u64::from(*sheet))?;
                    write_cell(&mut out, *cell)?;
                    write_value(&mut out, value)?;
                }
                EditRecord::SetFormula { sheet, cell, src } => {
                    out.push(OP_SET_FORMULA);
                    write_uvarint(&mut out, u64::from(*sheet))?;
                    write_cell(&mut out, *cell)?;
                    write_string(&mut out, src)?;
                }
                EditRecord::ClearRange { sheet, range } => {
                    out.push(OP_CLEAR_RANGE);
                    write_uvarint(&mut out, u64::from(*sheet))?;
                    write_range(&mut out, *range)?;
                }
                EditRecord::AddSheet { name } => {
                    out.push(OP_ADD_SHEET);
                    write_string(&mut out, name)?;
                }
                EditRecord::Structural { sheet, op } => {
                    out.push(OP_STRUCTURAL);
                    write_uvarint(&mut out, u64::from(*sheet))?;
                    let (kind, at, n) = match *op {
                        StructuralOp::InsertRows { at, n } => (STRUCT_INSERT_ROWS, at, n),
                        StructuralOp::DeleteRows { at, n } => (STRUCT_DELETE_ROWS, at, n),
                        StructuralOp::InsertCols { at, n } => (STRUCT_INSERT_COLS, at, n),
                        StructuralOp::DeleteCols { at, n } => (STRUCT_DELETE_COLS, at, n),
                    };
                    out.push(kind);
                    write_uvarint(&mut out, u64::from(at))?;
                    write_uvarint(&mut out, u64::from(n))?;
                }
            }
            Ok(())
        })();
        debug_assert!(infallible.is_ok(), "Vec sinks cannot fail");
        out
    }

    /// Decodes a record payload.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, StoreError> {
        let r = &mut bytes;
        let mut op = [0u8; 1];
        std::io::Read::read_exact(r, &mut op)?;
        let rec = match op[0] {
            OP_SET_VALUE => {
                let sheet = read_sheet_index(r)?;
                let cell = read_cell(r)?;
                EditRecord::SetValue { sheet, cell, value: read_value(r)? }
            }
            OP_SET_FORMULA => {
                let sheet = read_sheet_index(r)?;
                let cell = read_cell(r)?;
                EditRecord::SetFormula { sheet, cell, src: read_string(r, MAX_STRING)? }
            }
            OP_CLEAR_RANGE => {
                let sheet = read_sheet_index(r)?;
                EditRecord::ClearRange { sheet, range: read_range(r)? }
            }
            OP_ADD_SHEET => EditRecord::AddSheet { name: read_string(r, MAX_STRING)? },
            OP_STRUCTURAL => {
                let sheet = read_sheet_index(r)?;
                let mut kind = [0u8; 1];
                std::io::Read::read_exact(r, &mut kind)?;
                let at = read_grid_index(r)?;
                let n = read_grid_index(r)?;
                let op = match kind[0] {
                    STRUCT_INSERT_ROWS => StructuralOp::InsertRows { at, n },
                    STRUCT_DELETE_ROWS => StructuralOp::DeleteRows { at, n },
                    STRUCT_INSERT_COLS => StructuralOp::InsertCols { at, n },
                    STRUCT_DELETE_COLS => StructuralOp::DeleteCols { at, n },
                    _ => return Err(StoreError::Malformed("unknown structural kind")),
                };
                EditRecord::Structural { sheet, op }
            }
            _ => return Err(StoreError::Malformed("unknown WAL op")),
        };
        if !r.is_empty() {
            return Err(StoreError::Malformed("trailing bytes in WAL record"));
        }
        Ok(rec)
    }
}

fn read_sheet_index(r: &mut &[u8]) -> Result<u32, StoreError> {
    let v = read_uvarint(r)?;
    u32::try_from(v).map_err(|_| StoreError::Malformed("sheet index out of range"))
}

fn read_grid_index(r: &mut &[u8]) -> Result<u32, StoreError> {
    let v = read_uvarint(r)?;
    u32::try_from(v).map_err(|_| StoreError::Malformed("grid index out of range"))
}

// ---- writing ------------------------------------------------------------

/// Appends edit records to a WAL file with explicit fsync points. All
/// I/O goes through a [`Vfs`]; [`WalWriter::create`] /
/// [`WalWriter::open_append`] use the production [`std_vfs`], the
/// `*_with` constructors take any vfs (fault injection, in-memory).
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    bytes: u64,
    records: u64,
    /// The replay epoch stamped into appended records
    /// ([`WalWriter::set_epoch`]).
    epoch: u64,
    /// Attached observability handles ([`WalWriter::set_obs`]); `None`
    /// costs one branch per append/fsync.
    obs: Option<Box<crate::obs::WalObs>>,
}

impl WalWriter {
    /// Creates (or truncates to) an empty log and fsyncs the header —
    /// plus the parent directory, so a brand-new log's entry survives
    /// power loss.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        Self::create_with(std_vfs(), path)
    }

    /// [`WalWriter::create`] over an explicit vfs.
    pub fn create_with(vfs: Arc<dyn Vfs>, path: &Path) -> Result<Self, StoreError> {
        let mut file = vfs.create(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        file.write_all(&header)?;
        file.sync()?;
        vfs.sync_parent_dir(path)?;
        Ok(WalWriter {
            vfs,
            file,
            path: path.to_path_buf(),
            bytes: WAL_HEADER_LEN,
            records: 0,
            epoch: 0,
            obs: None,
        })
    }

    /// Opens an existing log for appending (creates it when missing). The
    /// existing content is validated by replaying it; `records`/`bytes`
    /// resume from the replay's clean prefix, and a torn tail is truncated
    /// away so new appends extend the valid prefix.
    pub fn open_append(path: &Path) -> Result<(Self, WalReplay), StoreError> {
        Self::open_append_with(std_vfs(), path)
    }

    /// [`WalWriter::open_append`] over an explicit vfs.
    pub fn open_append_with(
        vfs: Arc<dyn Vfs>,
        path: &Path,
    ) -> Result<(Self, WalReplay), StoreError> {
        if !vfs.exists(path) {
            return Ok((Self::create_with(vfs, path)?, WalReplay::default()));
        }
        let replay = WalReader::parse(&vfs.read(path)?, ReplayMode::TolerateTear)?;
        if replay.clean_len < WAL_HEADER_LEN {
            // A crash truncated the file inside the header: recreate it so
            // appended records land behind a valid magic, not at offset 0.
            return Ok((Self::create_with(vfs, path)?, replay));
        }
        let mut file = vfs.open_append(path)?;
        file.set_len(replay.clean_len)?;
        let w = WalWriter {
            vfs,
            file,
            path: path.to_path_buf(),
            bytes: replay.clean_len,
            records: replay.records.len() as u64,
            epoch: replay.epochs.last().copied().unwrap_or(0),
            obs: None,
        };
        Ok((w, replay))
    }

    /// Sets the replay epoch stamped into subsequent appends — the
    /// epoch of the snapshot those records extend.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        if let Some(obs) = self.obs.as_deref() {
            obs.epoch.set(i64::try_from(epoch).unwrap_or(i64::MAX));
        }
    }

    /// The epoch currently stamped into appended records.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends one record (buffered by the OS until the next [`sync`]
    /// point; a single `write_all` keeps torn appends prefix-clean).
    /// The record is stamped with the current replay epoch.
    ///
    /// [`sync`]: WalWriter::sync
    pub fn append(&mut self, rec: &EditRecord) -> Result<(), StoreError> {
        let timing = self.obs.as_deref().map(|o| (std::time::Instant::now(), o.now_ns()));
        let mut payload = Vec::new();
        write_uvarint(&mut payload, self.epoch)?;
        payload.extend_from_slice(&rec.encode());
        let mut frame = Vec::with_capacity(payload.len() + 9);
        write_uvarint(&mut frame, payload.len() as u64)?;
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        if let (Some(obs), Some((start, start_ns))) = (self.obs.as_deref(), timing) {
            obs.on_append(start, start_ns, frame.len() as u64);
        }
        Ok(())
    }

    /// An fsync point: durably flushes everything appended so far.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let timing = self.obs.as_deref().map(|o| (std::time::Instant::now(), o.now_ns()));
        self.file.sync()?;
        if let (Some(obs), Some((start, start_ns))) = (self.obs.as_deref(), timing) {
            obs.on_fsync(start, start_ns);
        }
        Ok(())
    }

    /// Truncates the log back to an empty header — the fold point after
    /// compaction has written a fresh snapshot — and syncs the file and
    /// its parent directory so the truncation itself is durable.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.sync()?;
        self.vfs.sync_parent_dir(&self.path)?;
        self.bytes = WAL_HEADER_LEN;
        self.records = 0;
        if let Some(obs) = self.obs.as_deref() {
            obs.resets.inc();
        }
        Ok(())
    }

    /// Records appended since the last reset (or open).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Current log size in bytes (header included).
    pub fn byte_len(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Attaches observability handles: subsequent appends, fsyncs, and
    /// resets record WAL counters, latency histograms, and spans through
    /// them. Detached (the default) the cost is one branch per call.
    pub fn set_obs(&mut self, obs: crate::obs::WalObs) {
        obs.epoch.set(i64::try_from(self.epoch).unwrap_or(i64::MAX));
        self.obs = Some(Box::new(obs));
    }
}

// ---- reading ------------------------------------------------------------

/// How a replay treats a file that ends mid-record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Drop the torn tail (crash recovery: the edit never fully committed)
    /// and report it in [`WalReplay::torn`].
    TolerateTear,
    /// Fail with [`StoreError::WalTorn`] (integrity checking).
    Strict,
}

/// The result of replaying a WAL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalReplay {
    /// The clean-prefix records, in append order.
    pub records: Vec<EditRecord>,
    /// Per-record replay epochs, parallel to `records` (all `0` for a
    /// version-1 log).
    pub epochs: Vec<u64>,
    /// Where a torn tail began, if any: `(record index, byte offset)`.
    pub torn: Option<(u64, u64)>,
    /// Length in bytes of the clean prefix (header + whole records).
    pub clean_len: u64,
}

impl WalReplay {
    /// Records with their epochs, in append order.
    pub fn stamped(&self) -> impl Iterator<Item = (&EditRecord, u64)> {
        self.records.iter().zip(self.epochs.iter().copied())
    }
}

/// Decodes WAL files / byte buffers.
pub struct WalReader;

impl WalReader {
    /// Reads and replays a WAL file.
    pub fn load(path: &Path, mode: ReplayMode) -> Result<WalReplay, StoreError> {
        Self::parse(&std::fs::read(path)?, mode)
    }

    /// Reads and replays a WAL file through an explicit vfs.
    pub fn load_with(
        vfs: &dyn Vfs,
        path: &Path,
        mode: ReplayMode,
    ) -> Result<WalReplay, StoreError> {
        Self::parse(&vfs.read(path)?, mode)
    }

    /// Replays WAL bytes.
    pub fn parse(bytes: &[u8], mode: ReplayMode) -> Result<WalReplay, StoreError> {
        let empty =
            |torn| WalReplay { records: Vec::new(), epochs: Vec::new(), torn, clean_len: 0 };
        if bytes.is_empty() {
            // A crash can leave a zero-length file before the header ever
            // hits the disk: an empty log.
            return match mode {
                ReplayMode::TolerateTear => Ok(empty(Some((0, 0)))),
                ReplayMode::Strict => Err(StoreError::Truncated { what: "WAL header" }),
            };
        }
        if bytes.len() < WAL_HEADER_LEN as usize {
            return match mode {
                ReplayMode::TolerateTear
                    if bytes[..bytes.len().min(4)] == WAL_MAGIC[..bytes.len().min(4)] =>
                {
                    Ok(empty(Some((0, 0))))
                }
                ReplayMode::TolerateTear => Err(StoreError::BadMagic),
                ReplayMode::Strict => Err(StoreError::Truncated { what: "WAL header" }),
            };
        }
        if bytes[0..4] != WAL_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version > WAL_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }

        let mut records = Vec::new();
        let mut epochs = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        loop {
            if pos == bytes.len() {
                return Ok(WalReplay { records, epochs, torn: None, clean_len: pos as u64 });
            }
            let record_index = records.len() as u64;
            let tear = |records: Vec<EditRecord>, epochs: Vec<u64>| match mode {
                ReplayMode::TolerateTear => Ok(WalReplay {
                    records,
                    epochs,
                    torn: Some((record_index, pos as u64)),
                    clean_len: pos as u64,
                }),
                ReplayMode::Strict => {
                    Err(StoreError::WalTorn { record: record_index, offset: pos as u64 })
                }
            };
            // Record length varint.
            let mut r = &bytes[pos..];
            let len = match read_uvarint(&mut r) {
                Ok(len) => len,
                Err(_) => return tear(records, epochs),
            };
            let after_len = bytes.len() - r.len();
            // CRC + payload.
            let Some(end) = (after_len as u64).checked_add(4 + len) else {
                return tear(records, epochs);
            };
            if end > bytes.len() as u64 {
                return tear(records, epochs);
            }
            let crc =
                u32::from_le_bytes(bytes[after_len..after_len + 4].try_into().expect("4 bytes"));
            let mut payload = &bytes[after_len + 4..end as usize];
            if crc32(payload) != crc {
                // A complete record failing its checksum is corruption in
                // the middle of the log, never a tear.
                return Err(StoreError::WalCorrupt { record: record_index });
            }
            // Version 2 prefixes the payload with the replay epoch.
            let epoch = if version >= 2 { read_uvarint(&mut payload)? } else { 0 };
            records.push(EditRecord::decode(payload)?);
            epochs.push(epoch);
            pos = end as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<EditRecord> {
        vec![
            EditRecord::AddSheet { name: "Data".into() },
            EditRecord::SetValue { sheet: 0, cell: Cell::new(1, 1), value: Value::Number(4.5) },
            EditRecord::SetFormula { sheet: 0, cell: Cell::new(2, 1), src: "A1*2".into() },
            EditRecord::ClearRange { sheet: 0, range: Range::parse_a1("A1:B9").unwrap() },
            EditRecord::SetValue {
                sheet: 0,
                cell: Cell::new(9, 9),
                value: Value::Text("x".into()),
            },
            EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 3, n: 2 } },
            EditRecord::Structural { sheet: 1, op: StructuralOp::DeleteCols { at: 7, n: 130 } },
        ]
    }

    #[test]
    fn structural_kinds_round_trip_and_bad_kind_is_typed() {
        for op in [
            StructuralOp::InsertRows { at: 1, n: 1 },
            StructuralOp::DeleteRows { at: 200, n: 999 },
            StructuralOp::InsertCols { at: 0, n: 4 },
            StructuralOp::DeleteCols { at: u32::MAX, n: u32::MAX },
        ] {
            let rec = EditRecord::Structural { sheet: 5, op };
            assert_eq!(EditRecord::decode(&rec.encode()).unwrap(), rec);
        }
        // A structural record with an unknown sub-kind byte is malformed.
        let mut bytes =
            EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 1, n: 1 } }
                .encode();
        bytes[2] = 9;
        assert!(matches!(EditRecord::decode(&bytes), Err(StoreError::Malformed(_))));
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("taco_wal_{tag}_{}.twal", std::process::id()))
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_path("roundtrip");
        let recs = sample_records();
        {
            let mut w = WalWriter::create(&path).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.record_count(), recs.len() as u64);
        }
        let replay = WalReader::load(&path, ReplayMode::Strict).unwrap();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.torn, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_or_strict_errors() {
        let recs = sample_records();
        let mut w = WalWriter::create(&temp_path("torn")).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        let bytes = std::fs::read(w.path()).unwrap();
        std::fs::remove_file(w.path()).ok();
        // Cut in the middle of the final record.
        let cut = bytes.len() - 3;
        let torn = &bytes[..cut];
        let replay = WalReader::parse(torn, ReplayMode::TolerateTear).unwrap();
        assert_eq!(replay.records, recs[..recs.len() - 1]);
        assert!(replay.torn.is_some());
        assert!(matches!(
            WalReader::parse(torn, ReplayMode::Strict),
            Err(StoreError::WalTorn { .. })
        ));
    }

    #[test]
    fn corrupt_middle_record_is_always_an_error() {
        let recs = sample_records();
        let mut w = WalWriter::create(&temp_path("corrupt")).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        let mut bytes = std::fs::read(w.path()).unwrap();
        std::fs::remove_file(w.path()).ok();
        // Flip a payload byte in the middle of the log.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        for mode in [ReplayMode::TolerateTear, ReplayMode::Strict] {
            assert!(matches!(
                WalReader::parse(&bytes, mode),
                Err(StoreError::WalCorrupt { .. } | StoreError::WalTorn { .. })
            ));
        }
    }

    #[test]
    fn open_append_resumes_after_tear() {
        let path = temp_path("resume");
        let recs = sample_records();
        {
            let mut w = WalWriter::create(&path).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
        }
        // Simulate a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let (mut w, replay) = WalWriter::open_append(&path).unwrap();
        assert_eq!(replay.records.len(), recs.len() - 1);
        assert_eq!(w.record_count(), recs.len() as u64 - 1);
        // New appends extend the clean prefix.
        w.append(&recs[recs.len() - 1]).unwrap();
        w.sync().unwrap();
        let replay = WalReader::load(&path, ReplayMode::Strict).unwrap();
        assert_eq!(replay.records, recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_recreates_a_header_torn_log() {
        // A crash during create can leave 0..6 header bytes; appending
        // must re-establish the magic, not write records at offset 0.
        for keep in [0usize, 3, 5] {
            let path = temp_path(&format!("hdr{keep}"));
            {
                let w = WalWriter::create(&path).unwrap();
                drop(w);
            }
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..keep]).unwrap();
            let (mut w, replay) = WalWriter::open_append(&path).unwrap();
            assert!(replay.records.is_empty());
            w.append(&EditRecord::AddSheet { name: "S".into() }).unwrap();
            w.sync().unwrap();
            let replay = WalReader::load(&path, ReplayMode::Strict).unwrap();
            assert_eq!(replay.records, vec![EditRecord::AddSheet { name: "S".into() }]);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn reset_folds_the_log() {
        let path = temp_path("reset");
        let mut w = WalWriter::create(&path).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        w.reset().unwrap();
        assert_eq!(w.record_count(), 0);
        w.append(&EditRecord::AddSheet { name: "Fresh".into() }).unwrap();
        w.sync().unwrap();
        let replay = WalReader::load(&path, ReplayMode::Strict).unwrap();
        assert_eq!(replay.records, vec![EditRecord::AddSheet { name: "Fresh".into() }]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_carry_the_epoch_current_at_append_time() {
        let vfs: Arc<dyn Vfs> = Arc::new(crate::vfs::FaultVfs::pristine(1));
        let path = PathBuf::from("epochs.twal");
        let mut w = WalWriter::create_with(Arc::clone(&vfs), &path).unwrap();
        w.set_epoch(3);
        w.append(&EditRecord::AddSheet { name: "A".into() }).unwrap();
        w.set_epoch(4);
        w.append(&EditRecord::SetValue { sheet: 0, cell: Cell::new(1, 1), value: Value::Empty })
            .unwrap();
        w.sync().unwrap();
        let replay = WalReader::load_with(vfs.as_ref(), &path, ReplayMode::Strict).unwrap();
        assert_eq!(replay.epochs, vec![3, 4]);
        assert_eq!(replay.records.len(), 2);
        // Reopening resumes stamping at the last record's epoch.
        let (w2, _) = WalWriter::open_append_with(vfs, &path).unwrap();
        assert_eq!(w2.epoch(), 4);
    }

    #[test]
    fn version_1_logs_replay_with_epoch_zero() {
        // A pre-epoch log: version 1 header, payloads without the epoch
        // stamp. This is what PR 3–9 images left on disk.
        let recs = sample_records();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&1u16.to_le_bytes());
        for rec in &recs {
            let payload = rec.encode();
            write_uvarint(&mut bytes, payload.len() as u64).unwrap();
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        let replay = WalReader::parse(&bytes, ReplayMode::Strict).unwrap();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.epochs, vec![0; recs.len()]);
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        assert!(matches!(
            WalReader::parse(b"NOPE\x01\x00", ReplayMode::Strict),
            Err(StoreError::BadMagic)
        ));
        assert!(matches!(
            WalReader::parse(b"TWAL\x63\x00", ReplayMode::Strict),
            Err(StoreError::UnsupportedVersion(0x63))
        ));
    }
}
