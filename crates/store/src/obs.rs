//! WAL observability: the pre-registered handle bundle a [`WalWriter`]
//! records through once attached. Registration (name lookups, handle
//! allocation) happens here, on the cold attach path; the WAL hot paths
//! then record through plain field access — counter bumps, histogram
//! bumps, and fixed-size span pushes, all allocation-free.
//!
//! [`WalWriter`]: crate::WalWriter

use std::time::Instant;
use taco_obs::{Counter, Gauge, Histogram, Obs, SpanCat};

/// Metric and tracer handles for one write-ahead log.
pub struct WalObs {
    /// `taco_wal_records_total` — records appended.
    pub records: Counter,
    /// `taco_wal_bytes_total` — frame bytes appended (header excluded).
    pub bytes: Counter,
    /// `taco_wal_fsyncs_total` — explicit fsync points hit.
    pub fsyncs: Counter,
    /// `taco_wal_resets_total` — compaction fold points (log truncations).
    pub resets: Counter,
    /// `taco_wal_append_ns` — per-append latency.
    pub append_ns: Histogram,
    /// `taco_wal_fsync_ns` — per-fsync latency.
    pub fsync_ns: Histogram,
    /// `taco_wal_torn_recoveries_total` — reopens that truncated a torn
    /// tail (bumped by the owner that observed the replay).
    pub torn_recoveries: Counter,
    /// `taco_wal_epoch` — the replay epoch stamped into appended
    /// records (set by [`WalWriter::set_epoch`]).
    ///
    /// [`WalWriter::set_epoch`]: crate::WalWriter::set_epoch
    pub epoch: Gauge,
    tracer: taco_obs::Tracer,
}

impl WalObs {
    /// Registers the WAL metric set against `obs` (idempotent: a second
    /// bundle from the same hub shares the same underlying metrics).
    pub fn new(obs: &Obs) -> WalObs {
        let m = &obs.metrics;
        WalObs {
            records: m.counter("taco_wal_records_total"),
            bytes: m.counter("taco_wal_bytes_total"),
            fsyncs: m.counter("taco_wal_fsyncs_total"),
            resets: m.counter("taco_wal_resets_total"),
            append_ns: m.histogram("taco_wal_append_ns"),
            fsync_ns: m.histogram("taco_wal_fsync_ns"),
            torn_recoveries: m.counter("taco_wal_torn_recoveries_total"),
            epoch: m.gauge("taco_wal_epoch"),
            tracer: obs.tracer.clone(),
        }
    }

    /// Records one append of `frame_bytes` that took since `start`.
    pub(crate) fn on_append(&self, start: Instant, start_ns: u64, frame_bytes: u64) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.records.inc();
        self.bytes.add(frame_bytes);
        self.append_ns.record(dur);
        self.tracer.record("wal.append", SpanCat::WalAppend, start_ns, dur, frame_bytes, 0);
    }

    /// Records one fsync that took since `start`.
    pub(crate) fn on_fsync(&self, start: Instant, start_ns: u64) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.fsyncs.inc();
        self.fsync_ns.record(dur);
        self.tracer.record("wal.fsync", SpanCat::WalFsync, start_ns, dur, 0, 0);
    }

    /// The hub clock, for span start stamps.
    pub(crate) fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }
}
