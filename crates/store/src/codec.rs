//! The bit/byte codec layer: LEB128 varints, zigzag mapping, and
//! Elias-γ / ζ_k bit codes over `std::io` readers and writers.
//!
//! The container format stores coordinates as *gaps* between sorted
//! neighbours (the WebGraph recipe): gaps are small, so universal codes
//! that spend fewer bits on smaller numbers — γ for tiny values, ζ_k for
//! values with a heavier tail — beat fixed-width integers by a wide
//! margin. Byte-aligned LEB128 is used where random access or appending
//! matters (section framing, WAL records); the bit codes live inside
//! section payloads that are always decoded front to back.
//!
//! Every decoder returns [`StoreError`] on malformed input — truncation or
//! bit damage must surface as typed errors, never as panics or wraps.

use crate::StoreError;
use std::io::{Read, Write};

// ---- byte layer: LEB128 + zigzag ---------------------------------------

/// Writes `v` as an LEB128 varint (7 bits per byte, MSB = continuation).
pub fn write_uvarint<W: Write>(w: &mut W, mut v: u64) -> Result<(), StoreError> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads one LEB128 varint. Fails on EOF and on encodings longer than the
/// 10 bytes a `u64` can need (corrupt continuation bits would otherwise
/// read unboundedly).
pub fn read_uvarint<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        let payload = u64::from(b & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(StoreError::Malformed("varint overflows u64"));
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(StoreError::Malformed("varint longer than 10 bytes"))
}

/// Zigzag-maps a signed integer so small magnitudes get small codes:
/// `0, -1, 1, -2, … → 0, 1, 2, 3, …`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a signed value as zigzag + LEB128.
pub fn write_ivarint<W: Write>(w: &mut W, v: i64) -> Result<(), StoreError> {
    write_uvarint(w, zigzag(v))
}

/// Reads a signed value written by [`write_ivarint`].
pub fn read_ivarint<R: Read>(r: &mut R) -> Result<i64, StoreError> {
    Ok(unzigzag(read_uvarint(r)?))
}

// ---- bit layer: MSB-first bit streams with γ and ζ codes ----------------

/// An MSB-first bit writer over any `std::io::Write`.
pub struct BitWriter<W: Write> {
    sink: W,
    /// Bits accumulated MSB-first in the low end of `acc`.
    acc: u8,
    /// Number of bits currently held in `acc`.
    filled: u8,
}

impl<W: Write> BitWriter<W> {
    /// Wraps a byte sink.
    pub fn new(sink: W) -> Self {
        BitWriter { sink, acc: 0, filled: 0 }
    }

    /// Writes one bit.
    pub fn write_bit(&mut self, bit: bool) -> Result<(), StoreError> {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.filled += 1;
        if self.filled == 8 {
            self.sink.write_all(&[self.acc])?;
            self.acc = 0;
            self.filled = 0;
        }
        Ok(())
    }

    /// Writes the low `n` bits of `v`, most significant first (`n ≤ 64`).
    pub fn write_bits(&mut self, v: u64, n: u32) -> Result<(), StoreError> {
        if n > 64 {
            return Err(StoreError::Malformed("bit width exceeds 64"));
        }
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1)?;
        }
        Ok(())
    }

    /// Writes `v ≥ 1` in Elias γ: the unary length of its binary form,
    /// then the value without its leading 1-bit.
    pub fn write_gamma(&mut self, v: u64) -> Result<(), StoreError> {
        debug_assert!(v >= 1, "gamma codes start at 1");
        let bits = 64 - v.leading_zeros(); // position of the leading 1
        for _ in 1..bits {
            self.write_bit(false)?;
        }
        self.write_bit(true)?;
        self.write_bits(v & !(1 << (bits - 1)), bits - 1)
    }

    /// Writes `v ≥ 0` as γ of `v + 1` (the natural-number convenience
    /// form used throughout the container encoder).
    pub fn write_gamma0(&mut self, v: u64) -> Result<(), StoreError> {
        self.write_gamma(v.checked_add(1).ok_or(StoreError::Malformed("gamma0 overflow"))?)
    }

    /// Writes a signed value as γ of its zigzag image.
    pub fn write_gamma_signed(&mut self, v: i64) -> Result<(), StoreError> {
        self.write_gamma0(zigzag(v))
    }

    /// Writes `v ≥ 0` in a ζ_k-style code (Boldi–Vigna shortened zeta,
    /// `k ≥ 1`): unary block count `h`, then the value offset within the
    /// `[2^(hk) − 1, 2^((h+1)k) − 1)` block in `hk + k` fixed bits. γ is
    /// exactly ζ_1; larger `k` favours power-law gap distributions.
    pub fn write_zeta(&mut self, v: u64, k: u32) -> Result<(), StoreError> {
        debug_assert!((1..=16).contains(&k), "zeta parameter out of range");
        let x = v.checked_add(1).ok_or(StoreError::Malformed("zeta overflow"))?;
        let bits = 64 - x.leading_zeros(); // ⌊log2 x⌋ + 1
        let h = (bits - 1) / k;
        if h * k + k > 64 {
            // Only reachable for values near u64::MAX with large k; the
            // container never produces them, so refuse rather than extend
            // the code with an escape hatch.
            return Err(StoreError::Malformed("value too large for zeta code"));
        }
        for _ in 0..h {
            self.write_bit(false)?;
        }
        self.write_bit(true)?;
        // Offset within the block, in h·k + k − … bits; the shortened form
        // writes ⌈log2(block width)⌉ bits, which is h·k + k here since the
        // block spans [2^(hk), 2^(hk+k)) shifted by one.
        self.write_bits(x - (1u64 << (h * k)), h * k + k)
    }

    /// Flushes any partial byte, padding with zero bits, and returns the
    /// underlying sink.
    pub fn finish(mut self) -> Result<W, StoreError> {
        if self.filled > 0 {
            let byte = self.acc << (8 - self.filled);
            self.sink.write_all(&[byte])?;
        }
        Ok(self.sink)
    }
}

/// An MSB-first bit reader over any `std::io::Read`.
pub struct BitReader<R: Read> {
    source: R,
    acc: u8,
    /// Bits remaining in `acc`.
    left: u8,
}

impl<R: Read> BitReader<R> {
    /// Wraps a byte source.
    pub fn new(source: R) -> Self {
        BitReader { source, acc: 0, left: 0 }
    }

    /// Reads one bit; EOF is a typed error.
    pub fn read_bit(&mut self) -> Result<bool, StoreError> {
        if self.left == 0 {
            let mut byte = [0u8; 1];
            self.source.read_exact(&mut byte)?;
            self.acc = byte[0];
            self.left = 8;
        }
        self.left -= 1;
        Ok((self.acc >> self.left) & 1 == 1)
    }

    /// Reads `n` bits, most significant first.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, StoreError> {
        if n > 64 {
            return Err(StoreError::Malformed("bit width exceeds 64"));
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Reads one Elias-γ value (`≥ 1`).
    pub fn read_gamma(&mut self) -> Result<u64, StoreError> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros >= 64 {
                return Err(StoreError::Malformed("gamma unary run too long"));
            }
        }
        Ok((1 << zeros) | self.read_bits(zeros)?)
    }

    /// Reads a value written by [`BitWriter::write_gamma0`].
    pub fn read_gamma0(&mut self) -> Result<u64, StoreError> {
        Ok(self.read_gamma()? - 1)
    }

    /// Reads a value written by [`BitWriter::write_gamma_signed`].
    pub fn read_gamma_signed(&mut self) -> Result<i64, StoreError> {
        Ok(unzigzag(self.read_gamma0()?))
    }

    /// Reads a value written by [`BitWriter::write_zeta`] with the same `k`.
    pub fn read_zeta(&mut self, k: u32) -> Result<u64, StoreError> {
        let mut h = 0u32;
        while !self.read_bit()? {
            h += 1;
            if h * k + k > 64 {
                return Err(StoreError::Malformed("zeta unary run too long"));
            }
        }
        let offset = self.read_bits(h * k + k)?;
        let base = 1u64 << (h * k);
        let x = base.checked_add(offset).ok_or(StoreError::Malformed("zeta value overflow"))?;
        if x == 0 {
            return Err(StoreError::Malformed("zeta decoded zero"));
        }
        Ok(x - 1)
    }
}

// ---- shared string / float helpers -------------------------------------

/// Writes a length-prefixed UTF-8 string.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> Result<(), StoreError> {
    write_uvarint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string, bounding the declared length by
/// `limit` so corrupt lengths cannot trigger huge allocations.
pub fn read_string<R: Read>(r: &mut R, limit: u64) -> Result<String, StoreError> {
    let len = read_uvarint(r)?;
    if len > limit {
        return Err(StoreError::Malformed("string length exceeds section bound"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| StoreError::Malformed("string is not UTF-8"))
}

/// Writes an `f64` as its little-endian bit pattern (bit-exact, NaN-safe).
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<(), StoreError> {
    w.write_all(&v.to_bits().to_le_bytes())?;
    Ok(())
}

/// Reads an `f64` written by [`write_f64`].
pub fn read_f64<R: Read>(r: &mut R) -> Result<f64, StoreError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_bits(u64::from_le_bytes(buf)))
}

// ---- checksums ----------------------------------------------------------

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the integrity check for every section,
/// the footer, and each WAL record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uvarint_round_trips_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v).unwrap();
            assert_eq!(read_uvarint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn uvarint_rejects_overflow_and_eof() {
        // 10 continuation bytes with a too-large final payload.
        let bad = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(read_uvarint(&mut bad.as_slice()).is_err());
        let torn = [0x80u8];
        assert!(matches!(read_uvarint(&mut torn.as_slice()), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn zigzag_is_bijective_on_edges() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn gamma_known_codewords() {
        // γ(1) = "1", γ(2) = "010", γ(5) = "00101".
        let mut w = BitWriter::new(Vec::new());
        w.write_gamma(1).unwrap();
        w.write_gamma(2).unwrap();
        w.write_gamma(5).unwrap();
        let bytes = w.finish().unwrap();
        // 1 010 00101 padded → 1010_0010 1000_0000.
        assert_eq!(bytes, vec![0b1010_0010, 0b1000_0000]);
    }

    #[test]
    fn gamma_eof_is_typed_error() {
        // A lone zero byte is an unterminated unary run at EOF.
        let mut r = BitReader::new([0u8].as_slice());
        assert!(r.read_gamma().is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn varints_round_trip(seed in 0u64..u64::MAX) {
            let mut vals = Vec::new();
            let mut x = seed;
            for _ in 0..50 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                vals.push(x >> (x % 60));
            }
            let mut buf = Vec::new();
            for &v in &vals {
                write_uvarint(&mut buf, v).unwrap();
                write_ivarint(&mut buf, v as i64).unwrap();
            }
            let mut r = buf.as_slice();
            for &v in &vals {
                prop_assert_eq!(read_uvarint(&mut r).unwrap(), v);
                prop_assert_eq!(read_ivarint(&mut r).unwrap(), v as i64);
            }
        }

        #[test]
        fn bit_codes_round_trip(seed in 0u64..u64::MAX) {
            let mut vals = Vec::new();
            let mut x = seed | 1;
            for _ in 0..80 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                vals.push(x >> (32 + (x % 31)));
            }
            let mut w = BitWriter::new(Vec::new());
            for &v in &vals {
                w.write_gamma0(v).unwrap();
                w.write_gamma_signed(v as i64 - 1000).unwrap();
                w.write_zeta(v, 3).unwrap();
                w.write_bits(v & 0x3FF, 10).unwrap();
            }
            let bytes = w.finish().unwrap();
            let mut r = BitReader::new(bytes.as_slice());
            for &v in &vals {
                prop_assert_eq!(r.read_gamma0().unwrap(), v);
                prop_assert_eq!(r.read_gamma_signed().unwrap(), v as i64 - 1000);
                prop_assert_eq!(r.read_zeta(3).unwrap(), v);
                prop_assert_eq!(r.read_bits(10).unwrap(), v & 0x3FF);
            }
        }
    }

    #[test]
    fn zeta_k1_tracks_gamma_within_one_bit_per_value() {
        // ζ_1 is γ's sibling: this (unshortened) form spends exactly one
        // more bit per value. Pin that relationship so a codec regression
        // shows up as a size change.
        let vals: Vec<u64> = (0..200).map(|i| i * i).collect();
        let mut wg = BitWriter::new(Vec::new());
        let mut wz = BitWriter::new(Vec::new());
        for &v in &vals {
            wg.write_gamma0(v).unwrap();
            wz.write_zeta(v, 1).unwrap();
        }
        let bg = wg.finish().unwrap();
        let bz = wz.finish().unwrap();
        assert!(bz.len() >= bg.len());
        assert!(bz.len() <= bg.len() + vals.len().div_ceil(8) + 1);
        let mut r = BitReader::new(bz.as_slice());
        for &v in &vals {
            assert_eq!(r.read_zeta(1).unwrap(), v);
        }
    }

    #[test]
    fn strings_bound_allocation() {
        let mut buf = Vec::new();
        write_string(&mut buf, "héllo").unwrap();
        assert_eq!(read_string(&mut buf.as_slice(), 1024).unwrap(), "héllo");
        // A declared length far past the bound must fail before allocating.
        let mut bad = Vec::new();
        write_uvarint(&mut bad, u64::MAX / 2).unwrap();
        assert!(read_string(&mut bad.as_slice(), 1024).is_err());
    }

    #[test]
    fn crc32_known_value() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn f64_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v).unwrap();
            let back = read_f64(&mut buf.as_slice()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}
